#!/usr/bin/env python
"""Run the project-invariant static analyzer (``repro.analysis``) from anywhere.

Equivalent to ``PYTHONPATH=src python -m repro.analysis`` run at the
repository root: this wrapper pins the root and the import path itself, so it
works from any working directory and without an installed package — which is
what CI and pre-commit hooks want.

Usage::

    python scripts/lint_invariants.py                 # src benchmarks examples scripts
    python scripts/lint_invariants.py src/repro/core  # a subtree
    python scripts/lint_invariants.py --list-rules
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    os.chdir(REPO_ROOT)
    from repro.analysis.__main__ import main as analysis_main

    argv = sys.argv[1:]
    if "--root" not in argv:
        argv = ["--root", str(REPO_ROOT), *argv]
    return analysis_main(argv)


if __name__ == "__main__":
    sys.exit(main())
