#!/usr/bin/env python
"""Run the project-invariant static analyzer (``repro.analysis``) from anywhere.

Equivalent to ``PYTHONPATH=src python -m repro.analysis`` run at the
repository root: this wrapper pins the root and the import path itself, so it
works from any working directory and without an installed package — which is
what CI and pre-commit hooks want.

Usage::

    python scripts/lint_invariants.py                 # src benchmarks examples scripts
    python scripts/lint_invariants.py src/repro/core  # a subtree
    python scripts/lint_invariants.py --list-rules
    python scripts/lint_invariants.py --changed-only --base origin/main

``--changed-only`` reports findings only in the Python files that differ from
a git base ref (``--base``, default ``HEAD``), plus untracked files.  The
whole-program rules (import layering, lock ordering, …) still analyze the
full tree — a changed file can break an invariant whose finding lands in an
unchanged one, and vice versa — only the *reporting* is restricted, via the
analyzer's ``--restrict-report``.  With no changed Python files the script
exits 0 without analyzing anything.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _changed_python_files(base: str) -> list[str]:
    """Repo-relative ``.py`` paths that differ from ``base`` or are untracked."""
    diff = subprocess.run(
        ["git", "diff", "--name-only", base, "--", "*.py"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=True,
    )
    untracked = subprocess.run(
        ["git", "ls-files", "--others", "--exclude-standard", "--", "*.py"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=True,
    )
    seen: list[str] = []
    for line in (diff.stdout + untracked.stdout).splitlines():
        relpath = line.strip()
        if relpath and relpath not in seen and (REPO_ROOT / relpath).is_file():
            seen.append(relpath)
    return seen


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    os.chdir(REPO_ROOT)
    from repro.analysis.__main__ import main as analysis_main

    argv = sys.argv[1:]

    changed_only = "--changed-only" in argv
    base = "HEAD"
    if changed_only:
        argv = [arg for arg in argv if arg != "--changed-only"]
        if "--base" in argv:
            index = argv.index("--base")
            try:
                base = argv[index + 1]
            except IndexError:
                print("lint_invariants: --base needs a git ref", file=sys.stderr)
                return 2
            del argv[index : index + 2]
        try:
            changed = _changed_python_files(base)
        except subprocess.CalledProcessError as exc:
            message = (exc.stderr or "").strip() or f"git diff against {base!r} failed"
            print(f"lint_invariants: {message}", file=sys.stderr)
            return 2
        if not changed:
            print(f"lint_invariants: no Python files changed vs {base}; nothing to report")
            return 0
        argv = ["--restrict-report", ",".join(changed), *argv]
    elif "--base" in argv:
        print("lint_invariants: --base only makes sense with --changed-only", file=sys.stderr)
        return 2

    if "--root" not in argv:
        argv = ["--root", str(REPO_ROOT), *argv]
    return analysis_main(argv)


if __name__ == "__main__":
    sys.exit(main())
