"""Regenerate EXPERIMENTS.md: run every experiment harness and record the results.

Run from the repository root::

    python scripts/generate_experiments_report.py

The script executes the quick configurations of experiments E1–E10 (the same
code paths the benchmarks time), renders their result tables, and writes
EXPERIMENTS.md with a paper-claim vs measured-result entry per experiment.
It takes a couple of minutes on a laptop.
"""

from __future__ import annotations

import platform
import sys
import time
from pathlib import Path

from repro import GoalQueryOracle, __version__, infer_join
from repro.datasets import setgame
from repro.datasets.tpch import TPCHConfig
from repro.experiments import (
    ablation,
    crowd,
    interactions,
    scalability,
    strategy_comparison,
    tpch_experiment,
    walkthrough,
)
from repro.experiments.results import ResultTable
from repro.experiments.trajectory import load_records

REPO_ROOT = Path(__file__).resolve().parents[1]


def _ratio_metrics(results: dict, prefix: str = "") -> list[tuple[str, float]]:
    """Flattened (dotted-name, value) pairs of the ratio metrics in a record.

    Only machine-portable ratios — speedups, overhead ratios, memory
    reductions — are rendered; raw wall-clock seconds are deliberately left
    out of the report.
    """
    metrics: list[tuple[str, float]] = []
    for key, value in sorted(results.items()):
        if isinstance(value, dict):
            metrics.extend(_ratio_metrics(value, prefix=f"{prefix}{key}."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool) and any(
            tag in key for tag in ("speedup", "ratio", "reduction")
        ):
            metrics.append((f"{prefix}{key}", float(value)))
    return metrics


def perf_trajectory_body() -> str:
    """One line per recorded (commit, configuration) benchmark measurement."""
    results_dir = REPO_ROOT / "benchmarks" / "results"
    lines: list[str] = []
    for path in sorted(results_dir.glob("BENCH_*.json")):
        name = path.stem[len("BENCH_") :]
        records = load_records(name, results_dir)
        if not records:
            continue
        lines.append(f"-- {name} ({len(records)} record(s)) --")
        for record in records:
            stamp = time.strftime("%Y-%m-%d", time.localtime(record.get("timestamp", 0)))
            flavor = "quick" if record.get("config", {}).get("quick") else "full"
            metrics = _ratio_metrics(record.get("results", {}))
            rendered = "  ".join(f"{key}={value:.2f}" for key, value in metrics)
            lines.append(
                f"{record.get('commit', '?')[:10]}  {stamp}  {flavor:>5}  "
                f"{rendered or '(no ratio metrics)'}"
            )
        lines.append("")
    return "\n".join(lines).rstrip() or "(no benchmark records committed)"


def _section(experiment_id: str, title: str, paper_claim: str, expectation: str,
             body: str, bench: str) -> str:
    return (
        f"## {experiment_id} — {title}\n\n"
        f"*Paper artifact / claim.* {paper_claim}\n\n"
        f"*Expected shape.* {expectation}\n\n"
        f"*Measured (this reproduction).*\n\n```text\n{body}\n```\n\n"
        f"*Regenerate with* `pytest {bench} --benchmark-only -s`\n\n"
    )


def e6_table() -> ResultTable:
    table_12 = setgame.pair_table(deck_size=12, seed=7)
    rows = ResultTable(["goal features", "candidate pairs", "questions", "correct"])
    for features in (("color",), ("shading",), ("color", "shading"), ("number", "symbol"),
                     ("number", "symbol", "color")):
        goal = setgame.same_feature_query(*features)
        result = infer_join(table_12, GoalQueryOracle(goal), strategy="lookahead-entropy")
        rows.add_row(
            {
                "goal features": " & ".join(features),
                "candidate pairs": len(table_12),
                "questions": result.num_interactions,
                "correct": result.matches_goal(goal),
            }
        )
    full_table = setgame.pair_table(deck_size=None, max_rows=1500, seed=3)
    goal = setgame.demo_goal_query()
    result = infer_join(full_table, GoalQueryOracle(goal), strategy="lookahead-entropy")
    rows.add_row(
        {
            "goal features": "color & shading (81-card deck, sampled)",
            "candidate pairs": len(full_table),
            "questions": result.num_interactions,
            "correct": result.matches_goal(goal),
        }
    )
    return rows


def main() -> None:
    started = time.time()
    sections: list[str] = []

    # E1
    sections.append(
        _section(
            "E1",
            "Figure 1 walkthrough (Section 2 worked example)",
            "Labeling (3)+ makes (4) uninformative while Q1 and Q2 stay consistent; "
            "(8) distinguishes Q1 from Q2; labeling (12)+ grays out (3),(4),(7) and "
            "(12)− grays out (1),(5),(9); the labels {(3)+,(7)−,(8)−} identify Q2.",
            "Every fact reproduced verbatim.",
            walkthrough.run_walkthrough().to_table().to_text(),
            "benchmarks/bench_fig1_walkthrough.py",
        )
    )

    # E2
    e2 = interactions.interactive_vs_label_all(
        interactions.default_e2_workloads(tuple_counts=(6, 10, 14, 20), goal_atoms=2, seed=0)
    )
    sections.append(
        _section(
            "E2",
            "Interactive loop (Figure 2) vs labeling every tuple",
            "\"By using an interactive approach, Jim saves a lot of effort in specifying "
            "join queries\" — only a small fraction of the candidate tuples needs labels.",
            "Guided labels ≪ candidate-table size, and the saving grows with the table.",
            e2.to_text(),
            "benchmarks/bench_fig2_interactive_loop.py",
        )
    )

    # E3
    e3 = interactions.interaction_mode_effort(k=3, seed=1)
    sections.append(
        _section(
            "E3",
            "User effort under the four interaction types (Figure 3)",
            "The demo stages four interaction types: free labeling, free labeling with "
            "graying-out, top-k proposals, and the fully guided loop.",
            "Effort decreases from type 1 to type 4; graying out already helps the manual user.",
            e3.to_text(),
            "benchmarks/bench_fig3_interaction_modes.py",
        )
    )

    # E4
    e4 = interactions.strategy_benefit(seeds=(0, 1, 2))
    sections.append(
        _section(
            "E4",
            "Benefit of using a strategy (Figure 4)",
            "After a free-labeling session the demo shows \"how many interactions she would "
            "have done if she had used a strategy of proposing informative tuples\".",
            "The guided strategy needs a fraction of the unguided user's labels "
            "(positive saving on average).",
            e4.to_text(),
            "benchmarks/bench_fig4_strategy_benefit.py",
        )
    )

    # E5
    sweep = strategy_comparison.compare_strategies(
        strategy_comparison.sweep_workloads(
            tuples_per_relation=(6, 10, 14), goal_atoms=(1, 2, 3), domain_size=3, seeds=(0, 1)
        ),
        strategies=("random", "local-most-specific", "local-largest-type",
                    "lookahead-minmax", "lookahead-entropy"),
        seeds=(0,),
    )
    e5_body = "\n\n".join(
        [
            "-- mean interactions by goal complexity --",
            strategy_comparison.summarize_by_complexity(sweep).to_text(),
            "-- mean interactions by candidate-table size --",
            strategy_comparison.summarize_by_size(sweep).to_text(),
            "-- mean interactions by strategy family --",
            strategy_comparison.summarize_by_family(sweep).to_text(),
        ]
    )
    sections.append(
        _section(
            "E5",
            "Comparing strategies across instances and query complexity",
            "\"For more complex instances and join queries a lookahead strategy performs "
            "better than a local one while for simpler instances and queries a local "
            "strategy is better\" (better = fewer interactions / cheaper).",
            "Lookahead ≤ local ≤ random on the harder configurations; local strategies are "
            "competitive on the simple ones while being much cheaper per choice.",
            e5_body,
            "benchmarks/bench_strategy_comparison.py",
        )
    )

    # E6
    sections.append(
        _section(
            "E6",
            "Joining sets of pictures (Set cards, Figure 5)",
            "JIM infers joins over tagged pictures, e.g. \"select the pairs of pictures "
            "having the same color and the same shading\", with a minimal number of simple "
            "interactions.",
            "A handful of questions per feature join, flat in the size of the pair space.",
            e6_table().to_text(),
            "benchmarks/bench_fig5_setgame.py",
        )
    )

    # E7
    e7 = scalability.measure_scalability(
        scalability.scalability_workloads(tuples_per_relation=(10, 20, 30, 45), goal_atoms=2, seed=0),
        strategies=("local-most-specific", "lookahead-entropy", "random"),
    )
    sections.append(
        _section(
            "E7",
            "Scalability: time per interaction vs candidate-table size",
            "The demo must stay interactive: choosing the next informative tuple and "
            "propagating a label must be fast even on large instances (the full paper "
            "reports efficiency and scalability on benchmark and synthetic data).",
            "Per-interaction time well under a second and growing roughly linearly with the "
            "candidate-table size; local strategies cheaper than lookahead.",
            e7.to_text(),
            "benchmarks/bench_scalability.py",
        )
    )

    # E8
    config = TPCHConfig(customers=12, orders_per_customer=2, lineitems_per_order=2, seed=0)
    e8 = tpch_experiment.run_tpch_experiment(
        joins=("orders-customer", "lineitem-orders", "customer-nation", "customer-orders-lineitem"),
        strategies=("random", "local-most-specific", "lookahead-entropy"),
        config=config,
        max_rows=1200,
    )
    e8_body = "\n\n".join(
        [
            e8.to_text(),
            "-- foreign keys rediscovered from the generated data --",
            tpch_experiment.discovered_foreign_keys(config).to_text(),
        ]
    )
    sections.append(
        _section(
            "E8",
            "PK/FK join inference on the TPC-H-like database",
            "The underlying research paper evaluates join inference on TPC-H; the demo lets "
            "attendees infer such joins interactively.",
            "A handful of membership queries per PK/FK join against candidate spaces of "
            "hundreds to thousands of tuples, for every strategy.",
            e8_body,
            "benchmarks/bench_tpch.py",
        )
    )

    # E9
    e9 = crowd.compare_crowd_cost(
        crowd.crowd_workloads(tuples_per_relation=(8, 12, 16, 24), goal_atoms=1, seed=0)
    )
    sections.append(
        _section(
            "E9",
            "Crowdsourcing cost: JIM vs pairwise entity-resolution joins",
            "\"Minimizing the number of interactions entails lower financial costs\"; existing "
            "crowd joins resolve pairs of tuples, JIM infers the join predicate.",
            "JIM's question count stays near-constant while the pairwise cost grows with the "
            "number of candidate pairs (orders-of-magnitude reduction).",
            e9.to_text(),
            "benchmarks/bench_crowd_cost.py",
        )
    )

    # E10
    workloads = ablation.default_ablation_workloads(seed=0)
    e10_body = "\n\n".join(
        [
            "-- pruning ablation --",
            ablation.ablate_pruning(workloads, seeds=(0, 1, 2)).to_text(),
            "-- atom-universe scope ablation --",
            ablation.ablate_atom_scope(workloads).to_text(),
            "-- lookahead depth ablation --",
            ablation.ablate_lookahead_depth(workloads, depths=(1, 2), include_optimal=True).to_text(),
        ]
    )
    sections.append(
        _section(
            "E10",
            "Ablations of the design choices",
            "Design choices called out in DESIGN.md: pruning of uninformative tuples, the "
            "cross-relation restriction of the atom universe, and the depth of lookahead "
            "(up to the exponential optimal strategy).",
            "Pruning/guidance reduces labels vs an unguided user; the all-pairs universe is "
            "larger and never cheaper to identify; deeper lookahead approaches the optimum "
            "at rapidly growing computational cost.",
            e10_body,
            "benchmarks/bench_ablation.py",
        )
    )

    # Performance trajectory
    sections.append(
        "## Performance trajectory\n\n"
        "Ratio metrics (speedups, throughput/overhead ratios, memory reductions)\n"
        "recorded by the benchmarks into `benchmarks/results/BENCH_*.json`, one\n"
        "line per recorded (commit, configuration) pair in file order.  Absolute\n"
        "wall-clock values are machine-bound and omitted; the committed ratios are\n"
        "the baselines CI's `--compare` smoke runs guard against regressions.\n\n"
        f"```text\n{perf_trajectory_body()}\n```\n\n"
        "*Regenerate with* `python benchmarks/bench_<name>.py` (records a fresh "
        "measurement; `--compare` diffs against the latest same-config record)\n\n"
    )

    elapsed = time.time() - started
    header = (
        "# EXPERIMENTS — paper vs. this reproduction\n\n"
        "The demo paper contains no numeric result tables; its figures are the worked\n"
        "example (Figure 1), the interaction protocol (Figure 2) and three demo-scenario\n"
        "figures (3–5) whose content is qualitative (interaction counts, strategy\n"
        "comparisons, picture joins).  Each section below states the paper's claim, the\n"
        "expected qualitative shape, and the tables measured with this implementation.\n"
        "Absolute timings naturally differ from the 2014 Java GUI; the shapes are what\n"
        "is being reproduced.  See DESIGN.md for the experiment→module map.\n\n"
        f"Environment: Python {platform.python_version()} on {platform.system()} "
        f"{platform.machine()}, repro {__version__}.  "
        f"Report generated by `python scripts/generate_experiments_report.py` "
        f"in {elapsed:.0f} s.\n\n"
    )
    output = header + "".join(sections)
    (REPO_ROOT / "EXPERIMENTS.md").write_text(output, encoding="utf-8")
    print(f"wrote {REPO_ROOT / 'EXPERIMENTS.md'} ({len(output)} characters) in {elapsed:.1f}s")


if __name__ == "__main__":
    sys.exit(main())
