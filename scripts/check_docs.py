"""Execute every fenced ``python`` code block in README.md and docs/*.md.

Documentation rots when its examples stop running.  This script makes the
fenced snippets part of the test surface: it extracts every code block whose
info string starts with ``python`` (blocks tagged ``python no-run`` and
non-python languages are skipped), concatenates the blocks of each file in
order into one script — so later snippets may build on earlier ones — and
runs it in a fresh subprocess with ``src`` on ``PYTHONPATH``.

Usage::

    python scripts/check_docs.py              # check README.md + docs/*.md
    python scripts/check_docs.py --list       # show what would run
    python scripts/check_docs.py --verbose    # echo each script's output

Exit status is non-zero when any documentation file fails to execute; the
failing file, the offending block's source line, and the subprocess output
are printed.  CI runs this on every push.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
import textwrap
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

_FENCE = re.compile(r"^(```+|~~~+)\s*(?P<info>[^`]*)$")


@dataclass(frozen=True)
class CodeBlock:
    """One fenced code block: where it starts and what it contains."""

    path: Path
    start_line: int  # 1-based line of the opening fence
    info: str
    source: str

    @property
    def runnable(self) -> bool:
        words = self.info.split()
        return bool(words) and words[0] == "python" and "no-run" not in words[1:]


def extract_blocks(path: Path) -> list[CodeBlock]:
    """All fenced code blocks of a markdown file, in order."""
    blocks: list[CodeBlock] = []
    fence: str | None = None
    info = ""
    start = 0
    lines: list[str] = []
    for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        stripped = line.strip()
        if fence is None:
            match = _FENCE.match(stripped)
            if match:
                fence = match.group(1)
                info = match.group("info").strip()
                start = number
                lines = []
        elif stripped == fence or (stripped.startswith(fence) and not stripped.rstrip(fence[0])):
            blocks.append(
                CodeBlock(path=path, start_line=start, info=info, source="\n".join(lines))
            )
            fence = None
        else:
            lines.append(line)
    if fence is not None:
        raise ValueError(f"{path}: unterminated code fence opened at line {start}")
    return blocks


def documentation_files(root: Path = REPO_ROOT) -> list[Path]:
    """The markdown files whose snippets must execute."""
    files = []
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    files.extend(sorted((root / "docs").glob("*.md")))
    return files


def compose_script(blocks: Sequence[CodeBlock]) -> tuple[str, dict[int, tuple[CodeBlock, int]]]:
    """One python script running a file's runnable blocks in order.

    Returns the script text plus a map ``script line -> (block, doc line)``
    so a traceback against the composed script can be attributed to the
    fence — and the exact line inside it — that raised.
    """
    parts: list[str] = []
    owners: dict[int, tuple[CodeBlock, int]] = {}
    next_line = 1
    for block in blocks:
        header = f"# --- {block.path.name}: block at line {block.start_line} ---"
        # Fences inside markdown lists carry the list indentation.
        source_lines = textwrap.dedent(block.source).splitlines()
        for offset, chunk in enumerate([header, *source_lines, ""]):
            parts.append(chunk)
            # Block content starts one doc line below the opening fence; the
            # header and the blank separator both point at the fence itself.
            content_offset = min(max(offset, 0), len(source_lines))
            owners[next_line] = (block, block.start_line + content_offset)
            next_line += 1
    return "\n".join(parts) + "\n", owners


def locate_failure(
    stderr: str, script_path: Path, owners: dict[int, tuple[CodeBlock, int]]
) -> tuple[CodeBlock, int] | None:
    """The ``(block, doc line)`` the traceback's innermost frame points at."""
    frames = re.findall(
        rf'File "{re.escape(str(script_path))}", line (\d+)', stderr
    )
    for frame in reversed(frames):
        located = owners.get(int(frame))
        if located is not None:
            return located
    return None


def run_file(path: Path, verbose: bool, timeout: float) -> str | None:
    """Execute a file's snippets; the error report, or None on success."""
    runnable = [block for block in extract_blocks(path) if block.runnable]
    if not runnable:
        return None
    script, owners = compose_script(runnable)
    with tempfile.TemporaryDirectory(prefix="check_docs_") as tmp:
        script_path = Path(tmp) / f"{path.stem}_snippets.py"
        script_path.write_text(script, encoding="utf-8")
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        try:
            completed = subprocess.run(
                [sys.executable, str(script_path)],
                capture_output=True,
                text=True,
                cwd=REPO_ROOT,
                env=env,
                timeout=timeout,
            )
        except subprocess.TimeoutExpired:
            return f"{path}: snippets timed out after {timeout:.0f}s"
    if verbose and completed.stdout:
        print(completed.stdout, end="")
    if completed.returncode != 0:
        located = locate_failure(completed.stderr, script_path, owners)
        if located is not None:
            block, doc_line = located
            where = (
                f"{path}:{doc_line} (in the fenced block opened at line "
                f"{block.start_line})"
            )
        else:
            lines = " + ".join(f"L{block.start_line}" for block in runnable)
            where = f"{path} (blocks {lines})"
        return (
            f"{where} exited with {completed.returncode}\n"
            f"{completed.stdout}{completed.stderr}"
        )
    return None


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--list", action="store_true", help="list runnable blocks, run nothing")
    parser.add_argument("--verbose", action="store_true", help="echo each script's stdout")
    parser.add_argument(
        "--timeout", type=float, default=180.0, help="per-file execution timeout (seconds)"
    )
    parser.add_argument(
        "paths", nargs="*", type=Path, help="markdown files (default: README.md + docs/*.md)"
    )
    args = parser.parse_args(argv)

    files = [path.resolve() for path in args.paths] or documentation_files()
    if args.list:
        for path in files:
            label = path.relative_to(REPO_ROOT) if path.is_relative_to(REPO_ROOT) else path
            for block in extract_blocks(path):
                marker = "run " if block.runnable else "skip"
                info = block.info or "plain"
                print(f"[{marker}] {label}:{block.start_line} ({info})")
        return 0

    failures = []
    for path in files:
        report = run_file(path, verbose=args.verbose, timeout=args.timeout)
        label = path.relative_to(REPO_ROOT) if path.is_relative_to(REPO_ROOT) else path
        if report is None:
            count = sum(1 for block in extract_blocks(path) if block.runnable)
            print(f"ok: {label} ({count} runnable block(s))")
        else:
            print(f"FAIL: {label}")
            failures.append(report)
    if failures:
        print("\n== failures ==")
        for report in failures:
            print(report)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
