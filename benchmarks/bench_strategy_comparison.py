"""E5 — comparing strategies across instance sizes and query complexities.

Regenerates the second demo part ("Comparing different strategies"): mean
interactions per strategy as the goal-query complexity and the candidate-table
size grow, plus the family-level summary (random vs local vs lookahead).  The
timed operation is one guided inference with the entropy lookahead strategy on
a mid-size synthetic workload.
"""

from __future__ import annotations

from conftest import report

from repro import GoalQueryOracle, JoinInferenceEngine
from repro.datasets.synthetic import SyntheticConfig
from repro.datasets.workloads import synthetic_workload
from repro.experiments.strategy_comparison import (
    compare_strategies,
    summarize_by_complexity,
    summarize_by_family,
    summarize_by_size,
    sweep_workloads,
)

_SWEEP = sweep_workloads(
    tuples_per_relation=(6, 10, 14), goal_atoms=(1, 2, 3), domain_size=3, seeds=(0, 1)
)
_PANEL = ("random", "local-most-specific", "local-largest-type", "lookahead-minmax", "lookahead-entropy")
_TIMED_WORKLOAD = synthetic_workload(
    SyntheticConfig(
        num_relations=2, attributes_per_relation=3, tuples_per_relation=14, domain_size=3, seed=0
    ),
    goal_atoms=3,
)


def bench_strategy_comparison(benchmark):
    engine = JoinInferenceEngine(_TIMED_WORKLOAD.table, strategy="lookahead-entropy")

    def run():
        return engine.run(GoalQueryOracle(_TIMED_WORKLOAD.goal))

    result = benchmark(run)
    assert result.matches_goal(_TIMED_WORKLOAD.goal)

    results = compare_strategies(_SWEEP, strategies=_PANEL, seeds=(0,))
    report(
        "E5 — interactions per strategy, by goal complexity",
        summarize_by_complexity(results).to_text(),
    )
    report(
        "E5 — interactions per strategy, by candidate-table size",
        summarize_by_size(results).to_text(),
    )
    report(
        "E5 — interactions per strategy family (random / local / lookahead)",
        summarize_by_family(results).to_text(),
    )
    means = {
        str(key[0]): value for key, value in results.group_mean(["strategy"], "interactions").items()
    }
    # Expected shape: guided lookahead never worse than random on average.
    assert means["lookahead-entropy"] <= means["random"] + 1e-9
    assert all(row["correct"] for row in results)
