"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark module regenerates one of the paper's figures/experiments
(see DESIGN.md, experiment index E1–E10).  Besides timing a representative
operation with pytest-benchmark, each module prints the corresponding result
table through :func:`report`, so running::

    pytest benchmarks/ --benchmark-only -s

shows both the timings and the paper-style tables (EXPERIMENTS.md quotes them).
"""

from __future__ import annotations

import pytest


def report(title: str, body: str) -> None:
    """Print an experiment's result table under a visible banner."""
    banner = "=" * max(len(title), 8)
    print(f"\n{banner}\n{title}\n{banner}\n{body}\n")


@pytest.fixture(scope="session")
def figure1_workload_q2():
    from repro.datasets.workloads import figure1_workload

    return figure1_workload("q2")
