"""Benchmark: columnar/factorized session setup vs the seed's row-at-a-time setup.

The seed built a session's machinery row by row: ``CandidateTable.cross_product``
materialised every |R₁|·…·|Rₖ| combination as a Python tuple and
``EqualityTypeIndex`` called ``AtomUniverse.equality_mask`` once per row — an
O(rows × atoms) pure-Python double loop that dominated wall-clock and memory
before the engine asked its first question.  This benchmark keeps a faithful
copy of that construction inline (``seed_cross_product`` and
``SeedEqualityTypeIndex`` below) and measures it against the current pipeline
(factorized cross products, group-combination type histograms, lazy rows) on
the setup-scale synthetic workloads.

It also checks *observational equivalence*: the two pipelines must produce
identical per-tuple masks and distinct-type histograms on every scenario, and
identical interaction traces when an engine runs over a seed-built table vs a
factorized one.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_setup_pipeline.py           # full: asserts >=10x
    PYTHONPATH=src python benchmarks/bench_setup_pipeline.py --quick   # CI smoke

Runs append their measurements to ``benchmarks/results/BENCH_setup_pipeline.json``
(keyed by git commit + config hash; see :mod:`repro.experiments.trajectory`);
``--compare`` diffs the fresh speedup and memory-reduction ratios against the
latest recorded same-config baseline.  Exit status is non-zero when
equivalence fails, ``--compare`` finds a regression, or (in full mode) when
the construction speedup on the largest workload falls below the 10x target
or no memory reduction is measured.
"""

from __future__ import annotations

import argparse
import itertools
import random
import sys
import time
import tracemalloc
from collections.abc import Sequence
from pathlib import Path

from repro import GoalQueryOracle, JoinInferenceEngine
from repro.core.atoms import AtomScope, AtomUniverse
from repro.core.equality_types import EqualityTypeIndex
from repro.core.strategies.registry import create_strategy
from repro.datasets.flights_hotels import figure1_table
from repro.datasets.synthetic import SyntheticConfig, generate_instance
from repro.datasets.workloads import figure1_workload
from repro.experiments.scalability import scalability_workloads, setup_scale_workloads
from repro.experiments.trajectory import compare_to_trajectory, record_benchmark
from repro.relational.candidate import CandidateAttribute, CandidateTable
from repro.relational.instance import DatabaseInstance


# --------------------------------------------------------------------------- #
# The seed implementation, kept verbatim as the baseline under measurement
# --------------------------------------------------------------------------- #
def seed_cross_product(
    instance: DatabaseInstance,
    relation_names: Sequence[str] | None = None,
    name: str | None = None,
) -> CandidateTable:
    """The seed's ``CandidateTable.cross_product``: eager row materialisation."""
    names = list(relation_names) if relation_names is not None else list(instance.relation_names)
    relations = [instance.relation(rel_name) for rel_name in names]
    attributes = [
        CandidateAttribute(attr.qualified_name, attr.data_type, relation.name)
        for relation in relations
        for attr in relation.schema.attributes
    ]
    rows = [
        tuple(itertools.chain.from_iterable(combo))
        for combo in itertools.product(*(relation.rows for relation in relations))
    ]
    return CandidateTable(attributes, rows, name=name or "x".join(names))


class SeedEqualityTypeIndex:
    """The seed's ``EqualityTypeIndex``: one ``equality_mask`` call per row."""

    def __init__(self, universe: AtomUniverse) -> None:
        self.universe = universe
        self.table = universe.table
        self.masks: tuple[int, ...] = tuple(
            universe.equality_mask(row) for row in self.table.rows
        )
        grouped: dict[int, list[int]] = {}
        for tuple_id, mask in enumerate(self.masks):
            grouped.setdefault(mask, []).append(tuple_id)
        self.by_mask: dict[int, tuple[int, ...]] = {
            mask: tuple(ids) for mask, ids in grouped.items()
        }

    def type_sizes(self) -> dict[int, int]:
        return {mask: len(ids) for mask, ids in self.by_mask.items()}

    def selected_by(self, query_mask: int) -> frozenset[int]:
        selected: list[int] = []
        for mask, ids in self.by_mask.items():
            if query_mask & ~mask == 0:
                selected.extend(ids)
        return frozenset(selected)


def _seed_setup(instance: DatabaseInstance):
    table = seed_cross_product(instance)
    universe = AtomUniverse.from_table(table, scope=AtomScope.CROSS_RELATION)
    return table, universe, SeedEqualityTypeIndex(universe)


def _current_setup(instance: DatabaseInstance):
    table = CandidateTable.cross_product(instance)
    universe = AtomUniverse.from_table(table, scope=AtomScope.CROSS_RELATION)
    return table, universe, EqualityTypeIndex(universe)


# --------------------------------------------------------------------------- #
# Equivalence
# --------------------------------------------------------------------------- #
def _index_signature(index, universe) -> tuple:
    sizes = dict(index.type_sizes())
    probes = [0, universe.full_mask] + [1 << pos for pos in range(universe.size)]
    return (
        tuple(index.masks),
        sorted(sizes.items()),
        [sorted(index.selected_by(mask)) for mask in probes],
    )


def _flat_index_signature(table: CandidateTable, universe: AtomUniverse) -> tuple:
    """Row-at-a-time masks over an arbitrary (flat or factorized) table."""
    masks = tuple(universe.equality_mask(row) for row in table)
    grouped: dict[int, int] = {}
    for mask in masks:
        grouped[mask] = grouped.get(mask, 0) + 1
    probes = [0, universe.full_mask] + [1 << pos for pos in range(universe.size)]
    return (
        masks,
        sorted(grouped.items()),
        [
            sorted(tid for tid, mask in enumerate(masks) if probe & ~mask == 0)
            for probe in probes
        ],
    )


def check_construction_equivalence(quick: bool) -> list[str]:
    """Masks, histograms and selections must match the seed on every scenario."""
    mismatches: list[str] = []
    sizes = (6, 12) if quick else (10, 20, 30)

    for tuples in sizes:
        config = SyntheticConfig(
            num_relations=2, attributes_per_relation=3, tuples_per_relation=tuples, domain_size=4
        )
        instance = generate_instance(config)
        _, seed_universe, seed_index = _seed_setup(instance)
        _, universe, index = _current_setup(instance)
        if seed_universe.atoms != universe.atoms:
            mismatches.append(f"synthetic/{tuples}: atom universes differ")
            continue
        if _index_signature(index, universe) != _index_signature(seed_index, seed_universe):
            mismatches.append(f"synthetic/{tuples}: factorized index diverges")

    # Three-relation product, including a relation no atom can reach.
    config = SyntheticConfig(
        num_relations=3, attributes_per_relation=2, tuples_per_relation=5, domain_size=3
    )
    instance = generate_instance(config)
    _, seed_universe, seed_index = _seed_setup(instance)
    _, universe, index = _current_setup(instance)
    if _index_signature(index, universe) != _index_signature(seed_index, seed_universe):
        mismatches.append("synthetic/3-relations: factorized index diverges")

    # Flat table with None values (the paper's Figure 1 has null discounts).
    flat = figure1_table()
    flat_universe = AtomUniverse.from_table(flat, scope=AtomScope.ALL_PAIRS)
    flat_index = EqualityTypeIndex(flat_universe)
    if _index_signature(flat_index, flat_universe) != _flat_index_signature(flat, flat_universe):
        mismatches.append("figure1/flat: columnar index diverges")

    # Sampled cross product (flat, columnar path).
    config = SyntheticConfig(
        num_relations=2, attributes_per_relation=3, tuples_per_relation=12, domain_size=4
    )
    instance = generate_instance(config)
    sampled = CandidateTable.cross_product(instance, max_rows=50, rng=random.Random(3))
    sampled_universe = AtomUniverse.from_table(sampled, scope=AtomScope.CROSS_RELATION)
    sampled_index = EqualityTypeIndex(sampled_universe)
    if _index_signature(sampled_index, sampled_universe) != _flat_index_signature(
        sampled, sampled_universe
    ):
        mismatches.append("synthetic/sampled: columnar index diverges")

    # Single-relation product (one factor, all-pairs atoms).
    single = CandidateTable.cross_product(instance, relation_names=["R1"])
    single_universe = AtomUniverse.from_table(single, scope=AtomScope.ALL_PAIRS)
    single_index = EqualityTypeIndex(single_universe)
    if _index_signature(single_index, single_universe) != _flat_index_signature(
        single, single_universe
    ):
        mismatches.append("synthetic/single-relation: factorized index diverges")

    return mismatches


def _trace_signature(result):
    return (
        [
            (i.tuple_id, i.label.value, i.pruned, i.informative_remaining)
            for i in result.trace.interactions
        ],
        result.query.normalized().describe(),
        result.converged,
    )


def check_trace_equivalence(quick: bool) -> list[str]:
    """Full runs over seed-built and factorized tables must ask identically."""
    sizes = (6, 10) if quick else (10, 20, 30)
    strategies = ("random", "local-most-specific", "local-largest-type", "lookahead-entropy")
    scenarios = [("figure1/q2", figure1_workload("q2"), None)]
    for workload in scalability_workloads(tuples_per_relation=sizes, goal_atoms=2, seed=0):
        config = SyntheticConfig(
            num_relations=2,
            attributes_per_relation=3,
            tuples_per_relation=int(round(workload.num_candidates**0.5)),
            domain_size=4,
            seed=0,
        )
        seed_table = seed_cross_product(generate_instance(config), name=workload.table.name)
        scenarios.append((f"scalability/{workload.num_candidates}", workload, seed_table))
    mismatches = []
    for scenario_name, workload, seed_table in scenarios:
        for name in strategies:
            current = JoinInferenceEngine(workload.table, strategy=create_strategy(name, seed=7))
            current_result = current.run(GoalQueryOracle(workload.goal))
            baseline_table = seed_table if seed_table is not None else workload.table
            baseline = JoinInferenceEngine(baseline_table, strategy=create_strategy(name, seed=7))
            baseline_result = baseline.run(GoalQueryOracle(workload.goal))
            if _trace_signature(current_result) != _trace_signature(baseline_result):
                mismatches.append(f"{scenario_name} × {name}")
    return mismatches


def check_workload_generation(quick: bool) -> list[str]:
    """Goal drawing over setup-scale instances must never materialise rows."""
    sizes = (30, 60) if quick else (100, 200, 400)
    problems = []
    started = time.perf_counter()
    for workload in setup_scale_workloads(tuples_per_relation=sizes):
        if workload.table.is_materialized():
            problems.append(
                f"setup-scale/{workload.num_candidates}: goal drawing materialised the rows"
            )
        if not 0 < workload.goal.count_selected(workload.table) < workload.num_candidates:
            problems.append(f"setup-scale/{workload.num_candidates}: goal is trivial")
    if not problems:
        print(
            f"ok: {len(sizes)} setup-scale workload(s) generated factorized "
            f"(largest {sizes[-1] * sizes[-1]} candidates) in {time.perf_counter() - started:.3f}s"
        )
    return problems


# --------------------------------------------------------------------------- #
# Measurement
# --------------------------------------------------------------------------- #
def _timed(build, instance, repeats: int) -> float:
    walls = []
    for _ in range(repeats):
        started = time.perf_counter()
        build(instance)
        walls.append(time.perf_counter() - started)
    return min(walls)


def _peak_memory(build, instance) -> tuple[int, tuple]:
    tracemalloc.start()
    built = build(instance)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak, built


def measure(quick: bool, repeats: int) -> list[dict]:
    """Construction wall-clock and peak memory, seed vs columnar, per size."""
    sizes = (30, 60) if quick else (100, 200, 400)
    results = []
    for tuples in sizes:
        config = SyntheticConfig(
            num_relations=2, attributes_per_relation=3, tuples_per_relation=tuples, domain_size=4
        )
        instance = generate_instance(config)
        seed_wall = _timed(_seed_setup, instance, repeats)
        current_wall = _timed(_current_setup, instance, repeats)
        # Histograms must be byte-identical at every measured size; the
        # memory-measurement builds double as the compared indexes.
        seed_peak, (_, _, seed_index) = _peak_memory(_seed_setup, instance)
        current_peak, (_, _, index) = _peak_memory(_current_setup, instance)
        results.append(
            {
                "candidates": tuples * tuples,
                "seed_wall": seed_wall,
                "current_wall": current_wall,
                "speedup": seed_wall / current_wall if current_wall else float("inf"),
                "seed_peak_kb": seed_peak / 1024.0,
                "current_peak_kb": current_peak / 1024.0,
                "memory_reduction": seed_peak / current_peak if current_peak else float("inf"),
                "histograms_identical": dict(index.type_sizes()) == seed_index.type_sizes(),
            }
        )
    return results


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke mode: small sizes, no 10x assertion"
    )
    parser.add_argument("--repeats", type=int, default=3, help="timing repetitions (best-of)")
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="skip writing benchmarks/results/BENCH_setup_pipeline.json",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="fail on regressions vs the latest recorded same-config baseline",
    )
    args = parser.parse_args(argv)

    print("== construction equivalence: columnar/factorized vs seed row-at-a-time ==")
    mismatches = check_construction_equivalence(args.quick)
    if mismatches:
        print(f"FAIL: {len(mismatches)} diverging scenario(s):")
        for item in mismatches:
            print(f"  - {item}")
        return 1
    print("ok: identical masks, type histograms and selections on all scenarios")

    print("\n== interaction-trace equivalence: engine over seed vs factorized tables ==")
    mismatches = check_trace_equivalence(args.quick)
    if mismatches:
        print(f"FAIL: {len(mismatches)} diverging scenario(s):")
        for item in mismatches:
            print(f"  - {item}")
        return 1
    print("ok: identical interaction traces on all scenarios")

    print("\n== workload generation over setup-scale instances ==")
    problems = check_workload_generation(args.quick)
    if problems:
        print(f"FAIL: {len(problems)} problem(s):")
        for item in problems:
            print(f"  - {item}")
        return 1

    print("\n== setup cost (cross product + atom universe + equality-type index) ==")
    rows = measure(args.quick, max(1, args.repeats))
    header = (
        f"{'candidates':>10}  {'seed':>9}  {'columnar':>9}  {'speedup':>8}  "
        f"{'seed KiB':>10}  {'columnar KiB':>12}  {'mem x':>6}"
    )
    print(header)
    for row in rows:
        print(
            f"{row['candidates']:>10}  {row['seed_wall']:>8.4f}s  {row['current_wall']:>8.4f}s  "
            f"{row['speedup']:>7.1f}x  {row['seed_peak_kb']:>10.0f}  "
            f"{row['current_peak_kb']:>12.0f}  {row['memory_reduction']:>5.0f}x"
        )

    if not all(row["histograms_identical"] for row in rows):
        print("FAIL: equality-type histograms differ between the pipelines")
        return 1
    largest = rows[-1]
    if not args.quick:
        if largest["speedup"] < 10.0:
            print("FAIL: construction speedup below the 10x acceptance target")
            return 1
        if largest["memory_reduction"] < 2.0:
            print("FAIL: no measured memory reduction on the largest workload")
            return 1

    config = {"quick": args.quick, "repeats": max(1, args.repeats)}
    results = {
        "sizes": rows,
        # Top-level ratios of the largest workload, for trajectory comparison.
        "largest_speedup": largest["speedup"],
        "largest_memory_reduction": largest["memory_reduction"],
    }
    if args.compare:
        regressions, baseline = compare_to_trajectory(
            "setup_pipeline",
            Path(__file__).resolve().parent / "results",
            config,
            results,
            ["largest_speedup", "largest_memory_reduction"],
            tolerance=0.4,
        )
        if baseline is None:
            print("\ncompare: no recorded baseline for this configuration (vacuously green)")
        elif regressions:
            print(f"\ncompare: REGRESSED vs baseline at commit {baseline.get('commit', '?')[:12]}:")
            for line in regressions:
                print(f"  - {line}")
            return 1
        else:
            print(f"\ncompare: green vs baseline at commit {baseline.get('commit', '?')[:12]}")
    if not args.no_record:
        path = record_benchmark(
            "setup_pipeline",
            config=config,
            results=results,
            directory=Path(__file__).resolve().parent / "results",
        )
        print(f"recorded trajectory: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
