"""Benchmark: the sans-IO stepper adapter vs the pre-redesign inline loop.

Since the service redesign, ``JoinInferenceEngine.run`` no longer owns the
interactive loop — it steps an
:class:`~repro.service.stepper.InferenceSession` and feeds it oracle answers.
This benchmark keeps a faithful copy of the engine's former inline loop
(``_DirectEngine`` below, the pre-redesign ``run``) and checks two things on
the scalability workload:

1. **Observational equivalence** — the stepper-driven engine asks about the
   same tuples in the same order, receives the same labels, and infers the
   same query as the inline loop, for every strategy family.
2. **Overhead** — the event/command indirection costs < 5 % end-to-end
   wall-clock on the ``lookahead-entropy`` scalability run (the protocol adds
   a few attribute accesses per interaction; the work per interaction is the
   strategy's scoring sweep, which dwarfs them).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_stepper_overhead.py           # asserts < 5%
    PYTHONPATH=src python benchmarks/bench_stepper_overhead.py --quick   # CI smoke

Runs append their measurements to
``benchmarks/results/BENCH_stepper_overhead.json`` (keyed by git commit +
config hash; see :mod:`repro.experiments.trajectory`); ``--compare`` diffs
the fresh throughput ratio against the latest recorded same-config baseline.
Exit status is non-zero on a trace mismatch, a ``--compare`` regression, or
(in full mode) when the overhead exceeds the 5 % acceptance gate.
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time
from collections.abc import Sequence
from pathlib import Path

from repro import GoalQueryOracle, JoinInferenceEngine
from repro.core.engine import InferenceResult, InferenceTrace, Interaction
from repro.core.state import InferenceState
from repro.core.strategies.registry import create_strategy
from repro.datasets.workloads import figure1_workload
from repro.experiments.scalability import scalability_workloads
from repro.experiments.trajectory import compare_to_trajectory, record_benchmark

RESULTS_DIR = Path(__file__).resolve().parent / "results"


class _DirectEngine(JoinInferenceEngine):
    """The pre-redesign engine: the interactive loop inlined in ``run``."""

    def run(self, oracle, max_interactions=None, initial_state=None, require_convergence=False):
        self.strategy.reset()
        state = initial_state if initial_state is not None else self.new_state()
        trace = InferenceTrace()
        step = 0
        while state.has_informative_tuple():
            if max_interactions is not None and step >= max_interactions:
                return InferenceResult(
                    query=state.inferred_query(),
                    trace=trace,
                    state=state,
                    converged=False,
                    strategy_name=self.strategy.name,
                )
            choose_started = time.perf_counter()
            tuple_id = self.strategy.choose(state)
            choose_seconds = time.perf_counter() - choose_started
            label = oracle.label(self.table, tuple_id)
            propagate_started = time.perf_counter()
            propagation = state.add_label(tuple_id, label)
            elapsed = choose_seconds + (time.perf_counter() - propagate_started)
            step += 1
            trace.propagations.append(propagation)
            trace.interactions.append(
                Interaction(
                    step=step,
                    tuple_id=tuple_id,
                    label=label,
                    pruned=propagation.pruned_count,
                    informative_remaining=propagation.informative_after,
                    elapsed_seconds=elapsed,
                )
            )
        return InferenceResult(
            query=state.inferred_query(),
            trace=trace,
            state=state,
            converged=True,
            strategy_name=self.strategy.name,
        )


def _run(workload, strategy_name: str, direct: bool):
    engine_cls = _DirectEngine if direct else JoinInferenceEngine
    engine = engine_cls(workload.table, strategy=create_strategy(strategy_name, seed=7))
    initial = InferenceState(workload.table, universe=engine.universe)
    oracle = GoalQueryOracle(workload.goal)
    started = time.perf_counter()
    result = engine.run(oracle, initial_state=initial)
    wall = time.perf_counter() - started
    return result, wall


def _trace_signature(result):
    return (
        [
            (i.tuple_id, i.label.value, i.pruned, i.informative_remaining)
            for i in result.trace.interactions
        ],
        result.query.normalized().describe(),
        result.converged,
    )


def check_equivalence(quick: bool) -> list[str]:
    """Stepper-driven and inline loops must produce identical traces."""
    sizes = (6, 10) if quick else (10, 20)
    scenarios = [(f"figure1/{q}", figure1_workload(q)) for q in ("q1", "q2")]
    scenarios += [
        (f"scalability/{w.num_candidates}", w)
        for w in scalability_workloads(tuples_per_relation=sizes, goal_atoms=2, seed=0)
    ]
    strategies = [
        "random",
        "local-lexicographic",
        "local-most-specific",
        "local-largest-type",
        "lookahead-expected",
        "lookahead-entropy",
    ]
    mismatches = []
    for scenario_name, workload in scenarios:
        for name in strategies:
            stepper_result, _ = _run(workload, name, direct=False)
            direct_result, _ = _run(workload, name, direct=True)
            if _trace_signature(stepper_result) != _trace_signature(direct_result):
                mismatches.append(f"{scenario_name} × {name}")
    return mismatches


def measure_overhead(quick: bool, repeats: int) -> dict:
    """End-to-end lookahead-entropy runtime, inline loop vs stepper adapter."""
    # Big enough that one run takes hundreds of milliseconds — a 5% gate on
    # a tens-of-ms run would be measuring timer noise, not the adapter.
    size = 20 if quick else 100
    workload = scalability_workloads(tuples_per_relation=(size,), goal_atoms=2, seed=0)[0]

    def timed(direct: bool) -> float:
        result, wall = _run(workload, "lookahead-entropy", direct=direct)
        assert result.matches_goal(workload.goal)
        return wall

    # Warm up both paths, then measure them interleaved so a transient load
    # spike hits both sides rather than biasing one.
    timed(direct=True)
    timed(direct=False)
    direct_walls, stepper_walls = [], []
    for _ in range(repeats):
        direct_walls.append(timed(direct=True))
        stepper_walls.append(timed(direct=False))
    # Median, not min: with two separately-minimised noisy samples the gate
    # would measure which side got the single luckiest run.
    direct_wall = statistics.median(direct_walls)
    stepper_wall = statistics.median(stepper_walls)
    return {
        "candidates": workload.num_candidates,
        "direct_wall": direct_wall,
        "stepper_wall": stepper_wall,
        "overhead_pct": 100.0 * (stepper_wall - direct_wall) / direct_wall,
        # Higher-is-better form of the overhead, for trajectory comparison.
        "throughput_ratio": direct_wall / stepper_wall if stepper_wall else float("inf"),
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke mode: small sizes, no overhead assertion"
    )
    parser.add_argument("--repeats", type=int, default=11, help="timing repetitions (median-of)")
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="skip writing benchmarks/results/BENCH_stepper_overhead.json",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="fail on regressions vs the latest recorded same-config baseline",
    )
    args = parser.parse_args(argv)

    print("== trace equivalence: stepper-driven engine vs inline loop ==")
    mismatches = check_equivalence(args.quick)
    if mismatches:
        print(f"FAIL: {len(mismatches)} diverging scenario(s):")
        for item in mismatches:
            print(f"  - {item}")
        return 1
    print("ok: identical interaction traces on all scenarios")

    print("\n== stepper overhead (lookahead-entropy, scalability workload) ==")
    stats = measure_overhead(args.quick, max(1, args.repeats))
    print(f"candidate tuples:   {stats['candidates']}")
    print(f"inline-loop wall:   {stats['direct_wall']:.4f}s")
    print(f"stepper wall:       {stats['stepper_wall']:.4f}s")
    print(f"overhead:           {stats['overhead_pct']:+.2f}%")

    if not args.quick and stats["overhead_pct"] >= 5.0:
        print("FAIL: stepper adapter overhead above the 5% acceptance gate")
        return 1

    config = {"quick": args.quick, "repeats": max(1, args.repeats)}
    if args.compare:
        regressions, baseline = compare_to_trajectory(
            "stepper_overhead", RESULTS_DIR, config, stats, ["throughput_ratio"]
        )
        if baseline is None:
            print("compare: no recorded baseline for this configuration (vacuously green)")
        elif regressions:
            print(f"compare: REGRESSED vs baseline at commit {baseline.get('commit', '?')[:12]}:")
            for line in regressions:
                print(f"  - {line}")
            return 1
        else:
            print(f"compare: green vs baseline at commit {baseline.get('commit', '?')[:12]}")
    if not args.no_record:
        path = record_benchmark("stepper_overhead", config, stats, RESULTS_DIR)
        print(f"recorded trajectory: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
