"""Benchmark: the asyncio serving layer vs the synchronous `SessionService`.

The async layer (`repro.service.aio` + `repro.service.dispatch`) must be a
pure *serving* change — same inference, different concurrency model.  Two
gates:

1. **Event-trace equivalence** — driving a session through
   :class:`~repro.service.aio.AsyncSessionService` produces, per session,
   exactly the wire events the synchronous
   :class:`~repro.service.service.SessionService` produces for the same
   command sequence, across guided and top-k sessions on several workloads;
   and the session's *event stream* (``async for … in service.events(sid)``)
   carries exactly the events the commands returned.

2. **Concurrent throughput** — with answer latency simulated by crowd
   workers (the paper's serving scenario: every membership question takes a
   worker some think time), ≥ 64 sessions dispatched concurrently on one
   event loop must complete with a real wall-clock speedup over running the
   same sessions serialized one after another.  The speedup comes from
   overlapping the workers' latencies — exactly what the async layer exists
   to do; the CPU-bound inference steps still run one-per-core on the
   bounded executor.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_async_service.py           # full gates
    PYTHONPATH=src python benchmarks/bench_async_service.py --quick   # CI smoke

Runs append their measurements to
``benchmarks/results/BENCH_async_service.json`` (keyed by git commit +
config hash; see :mod:`repro.experiments.trajectory`); ``--compare`` diffs
the fresh speedup against the latest recorded same-config baseline.  Exit
status is non-zero on any trace mismatch, a non-converging session, a
``--compare`` regression, or (in full mode) a concurrent speedup below the
acceptance gate.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
from collections.abc import Sequence
from pathlib import Path

from repro import GoalQueryOracle, SessionService
from repro.datasets.workloads import figure1_workload
from repro.experiments.scalability import scalability_workloads
from repro.experiments.trajectory import compare_to_trajectory, record_benchmark
from repro.service import (
    AsyncSessionService,
    Converged,
    CrowdDispatcher,
    QuestionAsked,
    event_to_wire,
    simulated_crowd,
)

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Simulated worker think time per answer in the throughput gate (seconds).
ANSWER_LATENCY = 0.005
#: Required concurrent-over-serialized speedup (full mode).
SPEEDUP_GATE = 3.0


def _scenarios(quick: bool) -> list[tuple[str, object, dict]]:
    """(name, workload, session kwargs) triples covering the session kinds."""
    scenarios = [
        ("figure1/q1 guided", figure1_workload("q1"), {"strategy": "lookahead-entropy"}),
        ("figure1/q2 guided", figure1_workload("q2"), {"strategy": "local-lexicographic"}),
        ("figure1/q2 top-k", figure1_workload("q2"), {"mode": "top-k", "k": 3}),
    ]
    sizes = (6,) if quick else (10, 20)
    for workload in scalability_workloads(tuples_per_relation=sizes, goal_atoms=2, seed=0):
        scenarios.append(
            (
                f"scalability/{workload.num_candidates} guided",
                workload,
                {"strategy": "lookahead-entropy"},
            )
        )
        scenarios.append(
            (
                f"scalability/{workload.num_candidates} top-k",
                workload,
                {"mode": "top-k", "k": 4},
            )
        )
    return scenarios


def _drive_sync(service: SessionService, session_id: str, table, oracle) -> list[dict]:
    """Drive a session to convergence, returning every wire event in order."""
    events: list[dict] = []
    while True:
        event = service.next_question(session_id)
        events.append(event_to_wire(event))
        if isinstance(event, Converged):
            return events
        if isinstance(event, QuestionAsked):
            applied = service.answer(session_id, oracle.label(table, event.tuple_id))
            events.append(event_to_wire(applied))
        else:
            answers = [(tid, oracle.label(table, tid)) for tid in event.tuple_ids]
            events.extend(
                event_to_wire(applied)
                for applied in service.answer_many(session_id, answers)
            )


async def _drive_async(
    service: AsyncSessionService, session_id: str, table, oracle
) -> list[dict]:
    """The identical command sequence, through the async facade."""
    events: list[dict] = []
    while True:
        event = await service.next_question(session_id)
        events.append(event_to_wire(event))
        if isinstance(event, Converged):
            return events
        if isinstance(event, QuestionAsked):
            applied = await service.answer(session_id, oracle.label(table, event.tuple_id))
            events.append(event_to_wire(applied))
        else:
            answers = [(tid, oracle.label(table, tid)) for tid in event.tuple_ids]
            events.extend(
                event_to_wire(applied)
                for applied in await service.answer_many(session_id, answers)
            )


def collect_sync_traces(quick: bool) -> list[tuple[str, object, dict, list[dict]]]:
    """The sync service's reference traces, one per scenario.

    Runs *before* the event loop starts: driving the blocking
    ``SessionService`` inside the ``async def`` below would stall the loop
    (RPR011), and the reference trace does not need to interleave with the
    async run anyway.
    """
    traces: list[tuple[str, object, dict, list[dict]]] = []
    for name, workload, kwargs in _scenarios(quick):
        sync_service = SessionService()
        sid = sync_service.create(workload.table, **kwargs).session_id
        events = _drive_sync(
            sync_service, sid, workload.table, GoalQueryOracle(workload.goal)
        )
        traces.append((name, workload, kwargs, events))
    return traces


async def check_equivalence(
    sync_traces: list[tuple[str, object, dict, list[dict]]],
) -> list[str]:
    """Per-session wire traces must be identical, sync vs async vs stream."""
    mismatches = []
    async with AsyncSessionService() as async_service:
        for name, workload, kwargs, sync_events in sync_traces:
            descriptor = await async_service.create(workload.table, **kwargs)
            collected: list[dict] = []

            async def consume(session_id: str, into: list[dict]) -> None:
                async for wire in async_service.events(session_id):
                    into.append(wire)

            consumer = asyncio.create_task(consume(descriptor.session_id, collected))
            async_events = await _drive_async(
                async_service,
                descriptor.session_id,
                workload.table,
                GoalQueryOracle(workload.goal),
            )
            await async_service.close(descriptor.session_id)
            await asyncio.wait_for(consumer, timeout=30)

            if async_events != sync_events:
                mismatches.append(f"{name}: async commands diverge from sync service")
            if collected != async_events:
                mismatches.append(f"{name}: event stream diverges from command results")
    return mismatches


async def measure_throughput(num_sessions: int, goal_atoms: int = 2) -> dict:
    """Wall-clock for N crowd-dispatched sessions: serialized vs concurrent."""
    workload = scalability_workloads(
        tuples_per_relation=(10,), goal_atoms=goal_atoms, seed=0
    )[0]
    workers = simulated_crowd(
        workload.goal, num_workers=8, mean_latency=ANSWER_LATENCY, seed=3
    )

    async def run_batch(concurrent: bool) -> tuple[float, int]:
        async with AsyncSessionService(max_sessions=num_sessions) as service:
            dispatcher = CrowdDispatcher(service, workers, votes_per_question=1)
            descriptors = [
                await service.create(workload.table, mode="top-k", k=3)
                for _ in range(num_sessions)
            ]
            started = time.perf_counter()
            if concurrent:
                reports = await asyncio.gather(
                    *(dispatcher.run(d.session_id) for d in descriptors)
                )
            else:
                reports = [await dispatcher.run(d.session_id) for d in descriptors]
            wall = time.perf_counter() - started
            expected = {frozenset(atom.attributes) for atom in workload.goal}
            converged = sum(
                1
                for report in reports
                if report.converged
                and {frozenset(pair) for pair in report.atoms} == expected
            )
            for descriptor in descriptors:
                await service.close(descriptor.session_id)
            return wall, converged

    serial_wall, serial_ok = await run_batch(concurrent=False)
    concurrent_wall, concurrent_ok = await run_batch(concurrent=True)
    return {
        "sessions": num_sessions,
        "serial_wall": serial_wall,
        "concurrent_wall": concurrent_wall,
        "speedup": serial_wall / concurrent_wall,
        "serial_ok": serial_ok,
        "concurrent_ok": concurrent_ok,
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke mode: fewer sessions, no speedup gate"
    )
    parser.add_argument(
        "--sessions", type=int, default=None, help="concurrent session count (default 64, quick 8)"
    )
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="skip writing benchmarks/results/BENCH_async_service.json",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="fail on regressions vs the latest recorded same-config baseline",
    )
    args = parser.parse_args(argv)
    num_sessions = args.sessions or (8 if args.quick else 64)

    print("== event-trace equivalence: async service vs sync service vs stream ==")
    mismatches = asyncio.run(check_equivalence(collect_sync_traces(args.quick)))
    if mismatches:
        print(f"FAIL: {len(mismatches)} diverging scenario(s):")
        for item in mismatches:
            print(f"  - {item}")
        return 1
    print("ok: identical per-session wire traces on all scenarios")

    print(f"\n== throughput: {num_sessions} crowd-dispatched sessions ==")
    stats = asyncio.run(measure_throughput(num_sessions))
    print(f"sessions:          {stats['sessions']}")
    print(f"serialized wall:   {stats['serial_wall']:.3f}s ({stats['serial_ok']} converged to goal)")
    print(f"concurrent wall:   {stats['concurrent_wall']:.3f}s ({stats['concurrent_ok']} converged to goal)")
    print(f"speedup:           {stats['speedup']:.1f}x")

    if stats["serial_ok"] != num_sessions or stats["concurrent_ok"] != num_sessions:
        print("FAIL: not every session converged to the goal query")
        return 1
    if not args.quick and stats["speedup"] < SPEEDUP_GATE:
        print(f"FAIL: concurrent speedup below the {SPEEDUP_GATE}x acceptance gate")
        return 1

    config = {"quick": args.quick, "sessions": num_sessions}
    if args.compare:
        regressions, baseline = compare_to_trajectory(
            "async_service", RESULTS_DIR, config, stats, ["speedup"]
        )
        if baseline is None:
            print("compare: no recorded baseline for this configuration (vacuously green)")
        elif regressions:
            print(f"compare: REGRESSED vs baseline at commit {baseline.get('commit', '?')[:12]}:")
            for line in regressions:
                print(f"  - {line}")
            return 1
        else:
            print(f"compare: green vs baseline at commit {baseline.get('commit', '?')[:12]}")
    if not args.no_record:
        path = record_benchmark("async_service", config, stats, RESULTS_DIR)
        print(f"recorded trajectory: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
