"""E3 — user effort under the four interaction types of Figure 3.

Regenerates the comparison the demo stages for the attendee: how many labels
she gives when labeling freely, when helped by graying-out, when labeling
top-k proposals, and when fully guided.  The timed operation is one run of the
fully guided session (interaction type 4).
"""

from __future__ import annotations

from conftest import report

from repro import GoalQueryOracle
from repro.datasets.synthetic import SyntheticConfig
from repro.datasets.workloads import figure1_workload, synthetic_workload
from repro.experiments.interactions import interaction_mode_effort
from repro.sessions import GuidedSession

_WORKLOADS = [
    figure1_workload("q2"),
    synthetic_workload(
        SyntheticConfig(
            num_relations=2, attributes_per_relation=3, tuples_per_relation=10, domain_size=3, seed=0
        ),
        goal_atoms=2,
    ),
]


def bench_guided_session_mode4(benchmark, figure1_workload_q2):
    def run():
        session = GuidedSession(figure1_workload_q2.table, strategy="lookahead-entropy")
        session.run(GoalQueryOracle(figure1_workload_q2.goal))
        return session

    session = benchmark(run)
    assert session.is_converged()

    table = interaction_mode_effort(_WORKLOADS, k=3, seed=1)
    report("E3 — user effort under the four interaction types (Figure 3)", table.to_text())
    means = table.group_mean(["mode"], "labels_given")
    assert means[("4-guided",)] <= means[("1-manual",)]
