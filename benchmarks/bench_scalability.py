"""E7 — scalability: time per interaction as the candidate table grows.

Regenerates the interactivity claim: the per-interaction cost of choosing the
next informative tuple and propagating the label stays small (sub-second) as
the candidate table grows, for both local and lookahead strategies.  The timed
operation is one full inference run on the largest workload of the sweep with
the entropy lookahead strategy (the most expensive practical configuration).
"""

from __future__ import annotations

from conftest import report

from repro import GoalQueryOracle, JoinInferenceEngine
from repro.experiments.scalability import measure_scalability, scalability_workloads

_WORKLOADS = scalability_workloads(tuples_per_relation=(10, 20, 30, 45), goal_atoms=2, seed=0)


def bench_inference_on_largest_instance(benchmark):
    workload = _WORKLOADS[-1]
    engine = JoinInferenceEngine(workload.table, strategy="lookahead-entropy")

    def run():
        return engine.run(GoalQueryOracle(workload.goal))

    result = benchmark(run)
    assert result.matches_goal(workload.goal)

    table = measure_scalability(
        _WORKLOADS, strategies=("local-most-specific", "lookahead-entropy", "random")
    )
    report("E7 — wall-clock scalability per strategy", table.to_text())
    # Expected shape: every configuration stays interactive (well under a second
    # per membership query even on the 2025-candidate table).
    assert all(row["seconds_per_interaction"] < 1.0 for row in table)
    assert all(row["correct"] for row in table)
