"""Benchmark: the incremental propagation engine vs its two predecessors.

Two baselines are kept inline, faithfully, as the implementations under
measurement:

* ``_SeedState`` — the seed implementation, which recomputed everything per
  interaction: ``add_label`` rebuilt the :class:`ConsistentQuerySpace` from
  the full example set and ran ``classify_all`` over the whole table twice,
  and ``prune_counts`` re-derived the informative-type list independently for
  every candidate tuple.
* ``_DictState`` — the pre-kernel *incremental* engine: delta space updates
  and a per-type status cache, but with the cache held in Python dicts, the
  prune counts computed by a scalar loop per distinct candidate type, and the
  lookahead driver iterating every informative tuple id per step.

The current engine keeps the type state in flat arrays
(:mod:`repro.core.kernels`) and scores all candidates in one batched kernel
call per step.  The benchmark measures both gaps — seed → incremental at the
interactive scale (45² candidates, ≥5×) and dict → kernels at the
setup scale (320² ≈ 10⁵ candidates, ≥10×) — and checks *observational
equivalence*: on every scenario all engines (the current one on every
available kernel backend) must ask about the same tuples in the same order,
receive the same labels, and infer the same query.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_incremental_engine.py           # full: asserts >=5x and >=10x
    PYTHONPATH=src python benchmarks/bench_incremental_engine.py --quick   # CI smoke

Full runs append their measurements to ``benchmarks/results/BENCH_incremental_engine.json``
(keyed by git commit + config hash; see :mod:`repro.experiments.trajectory`),
building the repository's performance trajectory.  Exit status is non-zero
when trace equivalence fails, or (in full mode) when either speedup gate
falls below its target.
"""

from __future__ import annotations

import argparse
import math
import sys
import time
from collections.abc import Sequence
from pathlib import Path

from repro import GoalQueryOracle, JoinInferenceEngine
from repro.core.atoms import is_subset, popcount
from repro.core.examples import Label
from repro.core.informativeness import classify_all, classify_tuple
from repro.core.kernels import available_backends, use_backend
from repro.core.propagation import diff_statuses
from repro.core.space import ConsistentQuerySpace
from repro.core.state import InferenceState
from repro.core.strategies.base import Strategy
from repro.core.strategies.lookahead import (
    EntropyStrategy,
    ExpectedPruneStrategy,
    KStepLookaheadStrategy,
    MinMaxPruneStrategy,
)
from repro.core.strategies.registry import create_strategy
from repro.datasets.workloads import figure1_workload
from repro.exceptions import InconsistentLabelError
from repro.experiments.scalability import scalability_workloads
from repro.experiments.trajectory import compare_to_trajectory, record_benchmark


# --------------------------------------------------------------------------- #
# The seed implementation, kept verbatim as the baseline under measurement
# --------------------------------------------------------------------------- #
class _SeedState(InferenceState):
    """The seed's ``InferenceState``: rebuild-from-scratch on every label."""

    def add_label(self, tuple_id, label):
        parsed = Label.from_value(label)
        if tuple_id not in self.table.tuple_ids:
            raise InconsistentLabelError(f"unknown tuple id {tuple_id}")
        before = self.statuses()
        status_before = before[tuple_id]
        if self.strict and status_before.implied_label not in (None, parsed):
            raise InconsistentLabelError(
                f"tuple {tuple_id} is {status_before.value}; labeling it {parsed.value!r} "
                "would contradict the labels given so far"
            )
        self.examples.add(tuple_id, parsed)
        self.space = ConsistentQuerySpace(self.type_index, self.examples)
        consistent = self.space.is_consistent()
        after = self.statuses()
        return diff_statuses(before, after, tuple_id, parsed, consistent=consistent)

    def status(self, tuple_id):
        return classify_tuple(self.space, self.examples, tuple_id)

    def statuses(self):
        return classify_all(self.space, self.examples)

    def informative_ids(self):
        from repro.core.informativeness import TupleStatus

        return [
            tuple_id
            for tuple_id, status in self.statuses().items()
            if status is TupleStatus.INFORMATIVE
        ]

    def certain_ids(self):
        return [tuple_id for tuple_id, status in self.statuses().items() if status.is_certain]

    def has_informative_tuple(self):
        labeled = self.examples.labeled_ids
        for mask in self.type_index.distinct_masks:
            if self.space.certain_label_for(mask) is not None:
                continue
            if any(tid not in labeled for tid in self.type_index.tuples_with_mask(mask)):
                return True
        return False

    def informative_type_snapshot(self):
        labeled = self.examples.labeled_ids
        snapshot = []
        for mask in self.type_index.distinct_masks:
            if self.space.certain_label_for(mask) is not None:
                continue
            count = sum(1 for tid in self.type_index.tuples_with_mask(mask) if tid not in labeled)
            if count:
                snapshot.append((mask, count))
        return snapshot

    def prune_counts(self, tuple_id):
        # Seed behavior: the informative-type list is re-derived per call.
        from repro.core.atoms import is_subset

        positive_mask = self.space.positive_mask
        negative_masks = self.space.negative_masks
        candidate_type = self.type_index.mask(tuple_id)
        informative_types = self.informative_type_snapshot()
        new_positive_mask = positive_mask & candidate_type
        resolved_if_positive = 0
        resolved_if_negative = 0
        for mask, count in informative_types:
            restricted = new_positive_mask & mask
            certain_positive = is_subset(new_positive_mask, mask)
            certain_negative = any(is_subset(restricted, neg) for neg in negative_masks)
            if certain_positive or certain_negative:
                resolved_if_positive += count
            if is_subset(positive_mask & mask, candidate_type):
                resolved_if_negative += count
        return resolved_if_positive, resolved_if_negative

    def prune_counts_all(self, tuple_ids=None):
        candidates = list(tuple_ids) if tuple_ids is not None else self.informative_ids()
        return {tuple_id: self.prune_counts(tuple_id) for tuple_id in candidates}

    def copy(self):
        clone = _SeedState.__new__(_SeedState)
        clone.table = self.table
        clone.universe = self.universe
        clone.type_index = self.type_index
        clone.examples = self.examples.copy()
        clone.strict = self.strict
        clone.space = ConsistentQuerySpace(self.type_index, clone.examples)
        return clone


class _SeedScoredStrategy(Strategy):
    """The seed's scored-lookahead driver: per-candidate ``prune_counts``."""

    def __init__(self, template) -> None:
        self._template = template
        self.name = template.name

    def choose(self, state):
        candidates = self._informative_or_raise(state)
        best_id = None
        best_key = (-math.inf, 0)
        for tuple_id in candidates:
            resolved_plus, resolved_minus = state.prune_counts(tuple_id)
            key = (self._template.score(resolved_plus, resolved_minus), -tuple_id)
            if key > best_key:
                best_key = key
                best_id = tuple_id
        assert best_id is not None
        return best_id


class _SeedKStepStrategy(KStepLookaheadStrategy):
    """The seed's k-step lookahead, pinned in full.

    The current implementation is type-level (batched beam scoring, cached
    informative counts through the recursion); this subclass restores the
    original per-candidate beam and the per-depth ``informative_ids``
    re-derivation so the baseline stays the seed's code.
    """

    def _beam(self, state, candidates=None):
        if candidates is None:
            candidates = state.informative_ids()
        scored = sorted(
            candidates,
            key=lambda tid: (min(state.prune_counts(tid)), -tid),
            reverse=True,
        )
        return scored[: self.beam_width]

    def _worst_case_remaining(self, state, tuple_id, depth):
        worst = 0
        for label in (Label.POSITIVE, Label.NEGATIVE):
            outcome = state.simulate_label(tuple_id, label)
            remaining = outcome.informative_ids()
            if depth <= 1 or not remaining:
                value = len(remaining)
            else:
                value = min(
                    self._worst_case_remaining(outcome, next_id, depth - 1)
                    for next_id in self._beam(outcome, remaining)
                )
            worst = max(worst, value)
        return worst

    def choose(self, state):
        candidates = self._informative_or_raise(state)
        beam = self._beam(state, candidates)
        return min(
            beam,
            key=lambda tid: (self._worst_case_remaining(state, tid, self.depth), tid),
        )


class _SeedLargestTypeStrategy(Strategy):
    """The seed's largest-type choice: per-candidate frequency counting."""

    name = "local-largest-type"

    def choose(self, state):
        candidates = self._informative_or_raise(state)
        positive_mask = state.space.positive_mask
        type_index = state.type_index
        frequency = {}
        for tuple_id in candidates:
            restricted = type_index.mask(tuple_id) & positive_mask
            frequency[restricted] = frequency.get(restricted, 0) + 1
        return max(
            candidates,
            key=lambda tid: (frequency[type_index.mask(tid) & positive_mask], -tid),
        )


class _SeedLexicographicStrategy(Strategy):
    """The seed's lexicographic choice: min over materialised candidate ids."""

    name = "local-lexicographic"

    def choose(self, state):
        return min(self._informative_or_raise(state))


class _SeedMostSpecificStrategy(Strategy):
    """The seed's most-specific choice: per-candidate popcount key."""

    name = "local-most-specific"

    def choose(self, state):
        candidates = self._informative_or_raise(state)
        positive_mask = state.space.positive_mask
        type_index = state.type_index
        return max(
            candidates,
            key=lambda tid: (popcount(type_index.mask(tid) & positive_mask), -tid),
        )


class _SeedMostGeneralStrategy(Strategy):
    """The seed's most-general choice: per-candidate popcount key."""

    name = "local-most-general"

    def choose(self, state):
        candidates = self._informative_or_raise(state)
        positive_mask = state.space.positive_mask
        type_index = state.type_index
        return min(
            candidates,
            key=lambda tid: (popcount(type_index.mask(tid) & positive_mask), tid),
        )


_SEED_TEMPLATES = {
    ExpectedPruneStrategy.name: lambda: _SeedScoredStrategy(ExpectedPruneStrategy()),
    MinMaxPruneStrategy.name: lambda: _SeedScoredStrategy(MinMaxPruneStrategy()),
    EntropyStrategy.name: lambda: _SeedScoredStrategy(EntropyStrategy()),
    KStepLookaheadStrategy.name: _SeedKStepStrategy,
    _SeedLargestTypeStrategy.name: _SeedLargestTypeStrategy,
    _SeedLexicographicStrategy.name: _SeedLexicographicStrategy,
    _SeedMostSpecificStrategy.name: _SeedMostSpecificStrategy,
    _SeedMostGeneralStrategy.name: _SeedMostGeneralStrategy,
}


def _seed_strategy(name: str, seed: int = 0) -> Strategy:
    factory = _SEED_TEMPLATES.get(name)
    if factory is not None:
        return factory()
    # Strategies without choice machinery of their own (random) share their
    # code with the seed; running them over a _SeedState reproduces the seed
    # behavior exactly.
    return create_strategy(name, seed=seed)


# --------------------------------------------------------------------------- #
# The pre-kernel incremental engine: dict status cache, scalar prune counts
# --------------------------------------------------------------------------- #
class _DictTypeStatusCache:
    """The pre-kernel ``TypeStatusCache``: plain dicts, O(#types) copies."""

    def __init__(self, space, examples):
        type_index = space.type_index
        self._certain = {
            mask: space.certain_label_for(mask) for mask in type_index.distinct_masks
        }
        self._unlabeled = dict(type_index.type_sizes())
        for tuple_id in examples.labeled_ids:
            self._unlabeled[type_index.mask(tuple_id)] -= 1

    def certain_label_for(self, type_mask):
        return self._certain[type_mask]

    def unlabeled_count(self, type_mask):
        return self._unlabeled[type_mask]

    def informative_types(self):
        for mask, certain in self._certain.items():
            if certain is None and self._unlabeled[mask]:
                yield mask, self._unlabeled[mask]

    def informative_count(self):
        return sum(count for _, count in self.informative_types())

    def has_informative(self):
        return any(True for _ in self.informative_types())

    def apply_label(self, space, tuple_id, newly_labeled, consistent=True):
        if newly_labeled:
            self._unlabeled[space.type_index.mask(tuple_id)] -= 1
        flipped_positive, flipped_negative = [], []
        if consistent:
            stale = [mask for mask, certain in self._certain.items() if certain is None]
        else:
            stale = list(self._certain)
        for mask in stale:
            was = self._certain[mask]
            now = space.certain_label_for(mask)
            if was is not now:
                self._certain[mask] = now
                if was is None and now is True:
                    flipped_positive.append(mask)
                elif was is None and now is False:
                    flipped_negative.append(mask)
        return flipped_positive, flipped_negative

    def copy(self):
        clone = _DictTypeStatusCache.__new__(_DictTypeStatusCache)
        clone._certain = dict(self._certain)
        clone._unlabeled = dict(self._unlabeled)
        return clone


class _DictState(InferenceState):
    """The pre-kernel incremental state: delta updates over the dict cache.

    ``add_label``/``status``/``copy`` are inherited — they already ran against
    the cache interface before the kernels landed, and the dict cache keeps
    that interface.  Only the construction and the scalar prune-count path
    are pinned here.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._cache = _DictTypeStatusCache(self.space, self.examples)

    def prune_counts(self, tuple_id):
        snapshot = self.informative_type_snapshot()
        restricted = self.type_index.mask(tuple_id) & self.space.positive_mask
        return self._prune_counts_for_restricted_type(restricted, snapshot)

    def prune_counts_all(self, tuple_ids=None):
        candidates = list(tuple_ids) if tuple_ids is not None else self.informative_ids()
        snapshot = self.informative_type_snapshot()
        positive_mask = self.space.positive_mask
        by_restricted_type = {}
        counts = {}
        for tuple_id in candidates:
            restricted = self.type_index.mask(tuple_id) & positive_mask
            if restricted not in by_restricted_type:
                by_restricted_type[restricted] = self._prune_counts_for_restricted_type(
                    restricted, snapshot
                )
            counts[tuple_id] = by_restricted_type[restricted]
        return counts

    def _prune_counts_for_restricted_type(self, restricted_candidate, snapshot):
        positive_mask = self.space.positive_mask
        negative_masks = self.space.negative_masks
        new_positive_mask = positive_mask & restricted_candidate
        resolved_if_positive = 0
        resolved_if_negative = 0
        for mask, count in snapshot:
            restricted = new_positive_mask & mask
            certain_positive = is_subset(new_positive_mask, mask)
            certain_negative = any(is_subset(restricted, neg) for neg in negative_masks)
            if certain_positive or certain_negative:
                resolved_if_positive += count
            if is_subset(positive_mask & mask, restricted_candidate):
                resolved_if_negative += count
        return resolved_if_positive, resolved_if_negative


class _DictScoredStrategy(Strategy):
    """The pre-kernel lookahead driver: every informative tuple id, scored."""

    def __init__(self, template) -> None:
        self._template = template
        self.name = template.name

    def choose(self, state):
        candidates = self._informative_or_raise(state)
        counts = state.prune_counts_all(candidates)
        best_id = None
        best_key = (-math.inf, 0)
        for tuple_id in candidates:
            resolved_plus, resolved_minus = counts[tuple_id]
            key = (self._template.score(resolved_plus, resolved_minus), -tuple_id)
            if key > best_key:
                best_key = key
                best_id = tuple_id
        assert best_id is not None
        return best_id


class _DictKStepStrategy(KStepLookaheadStrategy):
    """The pre-kernel k-step lookahead: per-candidate beam over shared counts."""

    def _beam(self, state, candidates=None):
        if candidates is None:
            candidates = state.informative_ids()
        counts = state.prune_counts_all(candidates)
        scored = sorted(
            candidates,
            key=lambda tid: (min(counts[tid]), -tid),
            reverse=True,
        )
        return scored[: self.beam_width]

    def _worst_case_remaining(self, state, tuple_id, depth):
        worst = 0
        for label in (Label.POSITIVE, Label.NEGATIVE):
            outcome = state.simulate_label(tuple_id, label)
            remaining = outcome.informative_ids()
            if depth <= 1 or not remaining:
                value = len(remaining)
            else:
                value = min(
                    self._worst_case_remaining(outcome, next_id, depth - 1)
                    for next_id in self._beam(outcome, remaining)
                )
            worst = max(worst, value)
        return worst

    def choose(self, state):
        candidates = self._informative_or_raise(state)
        beam = self._beam(state, candidates)
        return min(
            beam,
            key=lambda tid: (self._worst_case_remaining(state, tid, self.depth), tid),
        )


_DICT_TEMPLATES = {
    ExpectedPruneStrategy.name: lambda: _DictScoredStrategy(ExpectedPruneStrategy()),
    MinMaxPruneStrategy.name: lambda: _DictScoredStrategy(MinMaxPruneStrategy()),
    EntropyStrategy.name: lambda: _DictScoredStrategy(EntropyStrategy()),
    KStepLookaheadStrategy.name: _DictKStepStrategy,
}


# --------------------------------------------------------------------------- #
# Harness
# --------------------------------------------------------------------------- #
def _run(workload, strategy: Strategy, state_cls: type = InferenceState):
    engine = JoinInferenceEngine(workload.table, strategy=strategy)
    initial = state_cls(workload.table, universe=engine.universe)
    oracle = GoalQueryOracle(workload.goal)
    started = time.perf_counter()
    result = engine.run(oracle, initial_state=initial)
    wall = time.perf_counter() - started
    return result, wall


def _trace_signature(result):
    return (
        [(i.tuple_id, i.label.value, i.pruned, i.informative_remaining) for i in result.trace.interactions],
        result.query.normalized().describe(),
        result.converged,
    )


def check_equivalence(quick: bool) -> list[str]:
    """All engines must produce identical traces on every scenario.

    The current engine runs once per available kernel backend (numpy fast
    path and pure-Python fallback); each run must match the seed engine, and
    for the strategies the dict engine implements, the dict engine too.
    """
    sizes = (6, 10) if quick else (10, 20, 30)
    scenarios = [(f"figure1/{q}", figure1_workload(q)) for q in ("q1", "q2")]
    scenarios += [
        (f"scalability/{w.num_candidates}", w)
        for w in scalability_workloads(tuples_per_relation=sizes, goal_atoms=2, seed=0)
    ]
    strategies = [
        "random",
        "local-lexicographic",
        "local-most-specific",
        "local-most-general",
        "local-largest-type",
        "lookahead-expected",
        "lookahead-minmax",
        "lookahead-entropy",
    ]
    if not quick:
        strategies.append("lookahead-kstep")
    backends = available_backends()
    mismatches = []
    for scenario_name, workload in scenarios:
        for name in strategies:
            if name == "lookahead-kstep" and workload.num_candidates > 150:
                continue  # the seed k-step is too slow beyond toy sizes
            legacy, _ = _run(workload, _seed_strategy(name, seed=7), _SeedState)
            reference = _trace_signature(legacy)
            for backend in backends:
                with use_backend(backend):
                    incremental, _ = _run(workload, create_strategy(name, seed=7))
                if _trace_signature(incremental) != reference:
                    mismatches.append(f"{scenario_name} × {name} [{backend}]")
            if name in _DICT_TEMPLATES:
                dict_result, _ = _run(workload, _DICT_TEMPLATES[name](), _DictState)
                if _trace_signature(dict_result) != reference:
                    mismatches.append(f"{scenario_name} × {name} [dict]")
    return mismatches


def measure_speedup(quick: bool, repeats: int) -> dict:
    """End-to-end lookahead-entropy runtime, seed vs incremental."""
    size = 20 if quick else 45
    workload = scalability_workloads(tuples_per_relation=(size,), goal_atoms=2, seed=0)[0]

    def best_of(seed_state: bool) -> tuple[float, float]:
        walls, engine_seconds = [], []
        for _ in range(repeats):
            strategy = (
                _seed_strategy("lookahead-entropy")
                if seed_state
                else create_strategy("lookahead-entropy")
            )
            result, wall = _run(
                workload, strategy, _SeedState if seed_state else InferenceState
            )
            assert result.matches_goal(workload.goal)
            walls.append(wall)
            engine_seconds.append(result.trace.total_seconds)
        return min(walls), min(engine_seconds)

    seed_wall, seed_engine = best_of(seed_state=True)
    incr_wall, incr_engine = best_of(seed_state=False)
    return {
        "candidates": workload.num_candidates,
        "seed_wall": seed_wall,
        "incremental_wall": incr_wall,
        "wall_speedup": seed_wall / incr_wall if incr_wall else float("inf"),
        "seed_engine": seed_engine,
        "incremental_engine": incr_engine,
        "engine_speedup": seed_engine / incr_engine if incr_engine else float("inf"),
    }


def measure_kernel_speedup(quick: bool, repeats: int) -> dict:
    """Lookahead-entropy at the 10⁵-candidate scale: dict engine vs kernels.

    The dict engine runs under the pure-Python backend (it predates the
    kernels, so nothing in its hot loop may touch numpy); the kernel engine
    runs on the default backend.  Both must produce byte-identical traces —
    the speedup only counts if the answers are the same.
    """
    size = 60 if quick else 320
    workload = scalability_workloads(
        tuples_per_relation=(size,), goal_atoms=2, seed=0, max_candidate_rows=None
    )[0]

    def best_of(dict_state: bool):
        walls, engine_seconds, signature = [], [], None
        for _ in range(repeats):
            if dict_state:
                with use_backend("python"):
                    result, wall = _run(
                        workload, _DictScoredStrategy(EntropyStrategy()), _DictState
                    )
            else:
                result, wall = _run(workload, create_strategy("lookahead-entropy"))
            assert result.matches_goal(workload.goal)
            signature = _trace_signature(result)
            walls.append(wall)
            engine_seconds.append(result.trace.total_seconds)
        return min(walls), min(engine_seconds), signature

    dict_wall, dict_engine, dict_signature = best_of(dict_state=True)
    kernel_wall, kernel_engine, kernel_signature = best_of(dict_state=False)
    assert dict_signature == kernel_signature, (
        "dict and kernel engines diverged on the kernel-speedup workload"
    )
    return {
        "candidates": workload.num_candidates,
        "dict_wall": dict_wall,
        "kernel_wall": kernel_wall,
        "wall_speedup": dict_wall / kernel_wall if kernel_wall else float("inf"),
        "dict_engine": dict_engine,
        "kernel_engine": kernel_engine,
        "engine_speedup": dict_engine / kernel_engine if kernel_engine else float("inf"),
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke mode: small sizes, no speedup assertions"
    )
    parser.add_argument("--repeats", type=int, default=3, help="timing repetitions (best-of)")
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="skip writing benchmarks/results/BENCH_incremental_engine.json",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="fail on regressions vs the latest recorded same-config baseline",
    )
    args = parser.parse_args(argv)
    repeats = max(1, args.repeats)

    print("== trace equivalence: incremental engine vs seed implementation ==")
    print(f"kernel backends under test: {', '.join(available_backends())}")
    mismatches = check_equivalence(args.quick)
    if mismatches:
        print(f"FAIL: {len(mismatches)} diverging scenario(s):")
        for item in mismatches:
            print(f"  - {item}")
        return 1
    print("ok: identical interaction traces on all scenarios")

    print("\n== end-to-end speedup (lookahead-entropy, seed vs incremental) ==")
    stats = measure_speedup(args.quick, repeats)
    print(f"candidate tuples:        {stats['candidates']}")
    print(f"seed wall time:          {stats['seed_wall']:.4f}s")
    print(f"incremental wall time:   {stats['incremental_wall']:.4f}s")
    print(f"wall-clock speedup:      {stats['wall_speedup']:.1f}x")
    print(f"seed engine time:        {stats['seed_engine']:.4f}s")
    print(f"incremental engine time: {stats['incremental_engine']:.4f}s")
    print(f"engine-time speedup:     {stats['engine_speedup']:.1f}x")

    print("\n== kernel speedup (lookahead-entropy, dict engine vs kernels) ==")
    kernel_stats = measure_kernel_speedup(args.quick, repeats)
    print(f"candidate tuples:        {kernel_stats['candidates']}")
    print(f"dict-engine wall time:   {kernel_stats['dict_wall']:.4f}s")
    print(f"kernel wall time:        {kernel_stats['kernel_wall']:.4f}s")
    print(f"wall-clock speedup:      {kernel_stats['wall_speedup']:.1f}x")
    print(f"dict engine time:        {kernel_stats['dict_engine']:.4f}s")
    print(f"kernel engine time:      {kernel_stats['kernel_engine']:.4f}s")
    print(f"engine-time speedup:     {kernel_stats['engine_speedup']:.1f}x")

    failed = False
    if not args.quick and stats["wall_speedup"] < 5.0:
        print("FAIL: seed→incremental wall-clock speedup below the 5x acceptance target")
        failed = True
    if not args.quick and kernel_stats["wall_speedup"] < 10.0:
        print("FAIL: dict→kernel wall-clock speedup below the 10x acceptance target")
        failed = True
    if failed:
        return 1

    config = {
        "quick": args.quick,
        "repeats": repeats,
        "backends": available_backends(),
    }
    results = {"seed_gate": stats, "kernel_gate": kernel_stats}
    if args.compare:
        regressions, baseline = compare_to_trajectory(
            "incremental_engine",
            Path(__file__).resolve().parent / "results",
            config,
            results,
            ["seed_gate.wall_speedup", "kernel_gate.wall_speedup"],
            tolerance=0.4,
        )
        if baseline is None:
            print("\ncompare: no recorded baseline for this configuration (vacuously green)")
        elif regressions:
            print(f"\ncompare: REGRESSED vs baseline at commit {baseline.get('commit', '?')[:12]}:")
            for line in regressions:
                print(f"  - {line}")
            return 1
        else:
            print(f"\ncompare: green vs baseline at commit {baseline.get('commit', '?')[:12]}")
    if not args.no_record:
        path = record_benchmark(
            "incremental_engine",
            config=config,
            results=results,
            directory=Path(__file__).resolve().parent / "results",
        )
        print(f"recorded trajectory: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
