"""Benchmark: the incremental propagation engine vs the seed's rebuild loop.

The seed implementation recomputed everything per interaction: ``add_label``
rebuilt the :class:`ConsistentQuerySpace` from the full example set and ran
``classify_all`` over the whole table twice, and ``prune_counts`` re-derived
the informative-type list independently for every candidate tuple.  This
benchmark keeps a faithful copy of that implementation (``_SeedState`` and
the seed-style strategy drivers below) and measures it against the current
incremental engine (delta space updates, :class:`TypeStatusCache`,
``prune_counts_all``) on the scalability workload.

It also checks *observational equivalence*: on every benchmark scenario both
engines must ask about the same tuples in the same order, receive the same
labels, and infer the same query.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_incremental_engine.py           # full: asserts >=5x
    PYTHONPATH=src python benchmarks/bench_incremental_engine.py --quick   # CI smoke

Exit status is non-zero when trace equivalence fails, or (in full mode) when
the ``lookahead-entropy`` end-to-end speedup falls below the 5x target.
"""

from __future__ import annotations

import argparse
import math
import sys
import time
from typing import Optional, Sequence

from repro import GoalQueryOracle, JoinInferenceEngine
from repro.core.examples import Label
from repro.core.informativeness import classify_all, classify_tuple
from repro.core.propagation import diff_statuses
from repro.core.space import ConsistentQuerySpace
from repro.core.state import InferenceState
from repro.core.strategies.base import Strategy
from repro.core.strategies.lookahead import (
    EntropyStrategy,
    ExpectedPruneStrategy,
    KStepLookaheadStrategy,
    MinMaxPruneStrategy,
)
from repro.core.strategies.registry import create_strategy
from repro.datasets.workloads import figure1_workload
from repro.exceptions import InconsistentLabelError
from repro.experiments.scalability import scalability_workloads


# --------------------------------------------------------------------------- #
# The seed implementation, kept verbatim as the baseline under measurement
# --------------------------------------------------------------------------- #
class _SeedState(InferenceState):
    """The seed's ``InferenceState``: rebuild-from-scratch on every label."""

    def add_label(self, tuple_id, label):
        parsed = Label.from_value(label)
        if tuple_id not in self.table.tuple_ids:
            raise InconsistentLabelError(f"unknown tuple id {tuple_id}")
        before = self.statuses()
        status_before = before[tuple_id]
        if self.strict and status_before.implied_label not in (None, parsed):
            raise InconsistentLabelError(
                f"tuple {tuple_id} is {status_before.value}; labeling it {parsed.value!r} "
                "would contradict the labels given so far"
            )
        self.examples.add(tuple_id, parsed)
        self.space = ConsistentQuerySpace(self.type_index, self.examples)
        consistent = self.space.is_consistent()
        after = self.statuses()
        return diff_statuses(before, after, tuple_id, parsed, consistent=consistent)

    def status(self, tuple_id):
        return classify_tuple(self.space, self.examples, tuple_id)

    def statuses(self):
        return classify_all(self.space, self.examples)

    def informative_ids(self):
        from repro.core.informativeness import TupleStatus

        return [
            tuple_id
            for tuple_id, status in self.statuses().items()
            if status is TupleStatus.INFORMATIVE
        ]

    def certain_ids(self):
        return [tuple_id for tuple_id, status in self.statuses().items() if status.is_certain]

    def has_informative_tuple(self):
        labeled = self.examples.labeled_ids
        for mask in self.type_index.distinct_masks:
            if self.space.certain_label_for(mask) is not None:
                continue
            if any(tid not in labeled for tid in self.type_index.tuples_with_mask(mask)):
                return True
        return False

    def informative_type_snapshot(self):
        labeled = self.examples.labeled_ids
        snapshot = []
        for mask in self.type_index.distinct_masks:
            if self.space.certain_label_for(mask) is not None:
                continue
            count = sum(1 for tid in self.type_index.tuples_with_mask(mask) if tid not in labeled)
            if count:
                snapshot.append((mask, count))
        return snapshot

    def prune_counts(self, tuple_id):
        # Seed behavior: the informative-type list is re-derived per call.
        from repro.core.atoms import is_subset

        positive_mask = self.space.positive_mask
        negative_masks = self.space.negative_masks
        candidate_type = self.type_index.mask(tuple_id)
        informative_types = self.informative_type_snapshot()
        new_positive_mask = positive_mask & candidate_type
        resolved_if_positive = 0
        resolved_if_negative = 0
        for mask, count in informative_types:
            restricted = new_positive_mask & mask
            certain_positive = is_subset(new_positive_mask, mask)
            certain_negative = any(is_subset(restricted, neg) for neg in negative_masks)
            if certain_positive or certain_negative:
                resolved_if_positive += count
            if is_subset(positive_mask & mask, candidate_type):
                resolved_if_negative += count
        return resolved_if_positive, resolved_if_negative

    def prune_counts_all(self, tuple_ids=None):
        candidates = list(tuple_ids) if tuple_ids is not None else self.informative_ids()
        return {tuple_id: self.prune_counts(tuple_id) for tuple_id in candidates}

    def copy(self):
        clone = _SeedState.__new__(_SeedState)
        clone.table = self.table
        clone.universe = self.universe
        clone.type_index = self.type_index
        clone.examples = self.examples.copy()
        clone.strict = self.strict
        clone.space = ConsistentQuerySpace(self.type_index, clone.examples)
        return clone


class _SeedScoredStrategy(Strategy):
    """The seed's scored-lookahead driver: per-candidate ``prune_counts``."""

    def __init__(self, template) -> None:
        self._template = template
        self.name = template.name

    def choose(self, state):
        candidates = self._informative_or_raise(state)
        best_id = None
        best_key = (-math.inf, 0)
        for tuple_id in candidates:
            resolved_plus, resolved_minus = state.prune_counts(tuple_id)
            key = (self._template.score(resolved_plus, resolved_minus), -tuple_id)
            if key > best_key:
                best_key = key
                best_id = tuple_id
        assert best_id is not None
        return best_id


class _SeedKStepStrategy(KStepLookaheadStrategy):
    """The seed's k-step beam: re-scores each beam candidate independently."""

    def _beam(self, state, candidates):
        scored = sorted(
            candidates,
            key=lambda tid: (min(state.prune_counts(tid)), -tid),
            reverse=True,
        )
        return scored[: self.beam_width]


class _SeedLargestTypeStrategy(Strategy):
    """The seed's largest-type choice: per-candidate frequency counting."""

    name = "local-largest-type"

    def choose(self, state):
        candidates = self._informative_or_raise(state)
        positive_mask = state.space.positive_mask
        type_index = state.type_index
        frequency = {}
        for tuple_id in candidates:
            restricted = type_index.mask(tuple_id) & positive_mask
            frequency[restricted] = frequency.get(restricted, 0) + 1
        return max(
            candidates,
            key=lambda tid: (frequency[type_index.mask(tid) & positive_mask], -tid),
        )


_SEED_TEMPLATES = {
    ExpectedPruneStrategy.name: lambda: _SeedScoredStrategy(ExpectedPruneStrategy()),
    MinMaxPruneStrategy.name: lambda: _SeedScoredStrategy(MinMaxPruneStrategy()),
    EntropyStrategy.name: lambda: _SeedScoredStrategy(EntropyStrategy()),
    KStepLookaheadStrategy.name: _SeedKStepStrategy,
    _SeedLargestTypeStrategy.name: _SeedLargestTypeStrategy,
}


def _seed_strategy(name: str, seed: int = 0) -> Strategy:
    factory = _SEED_TEMPLATES.get(name)
    if factory is not None:
        return factory()
    # Strategies without prune-count machinery share their code with the seed;
    # running them over a _SeedState reproduces the seed behavior exactly.
    return create_strategy(name, seed=seed)


# --------------------------------------------------------------------------- #
# Harness
# --------------------------------------------------------------------------- #
def _run(workload, strategy: Strategy, seed_state: bool):
    engine = JoinInferenceEngine(workload.table, strategy=strategy)
    initial = (
        _SeedState(workload.table, universe=engine.universe)
        if seed_state
        else InferenceState(workload.table, universe=engine.universe)
    )
    oracle = GoalQueryOracle(workload.goal)
    started = time.perf_counter()
    result = engine.run(oracle, initial_state=initial)
    wall = time.perf_counter() - started
    return result, wall


def _trace_signature(result):
    return (
        [(i.tuple_id, i.label.value, i.pruned, i.informative_remaining) for i in result.trace.interactions],
        result.query.normalized().describe(),
        result.converged,
    )


def check_equivalence(quick: bool) -> list[str]:
    """Both engines must produce identical traces on every scenario."""
    sizes = (6, 10) if quick else (10, 20, 30)
    scenarios = [(f"figure1/{q}", figure1_workload(q)) for q in ("q1", "q2")]
    scenarios += [
        (f"scalability/{w.num_candidates}", w)
        for w in scalability_workloads(tuples_per_relation=sizes, goal_atoms=2, seed=0)
    ]
    strategies = [
        "random",
        "local-lexicographic",
        "local-most-specific",
        "local-most-general",
        "local-largest-type",
        "lookahead-expected",
        "lookahead-minmax",
        "lookahead-entropy",
    ]
    if not quick:
        strategies.append("lookahead-kstep")
    mismatches = []
    for scenario_name, workload in scenarios:
        for name in strategies:
            if name == "lookahead-kstep" and workload.num_candidates > 150:
                continue  # the seed k-step is too slow beyond toy sizes
            incremental, _ = _run(workload, create_strategy(name, seed=7), seed_state=False)
            legacy, _ = _run(workload, _seed_strategy(name, seed=7), seed_state=True)
            if _trace_signature(incremental) != _trace_signature(legacy):
                mismatches.append(f"{scenario_name} × {name}")
    return mismatches


def measure_speedup(quick: bool, repeats: int) -> dict:
    """End-to-end lookahead-entropy runtime, seed vs incremental."""
    size = 20 if quick else 45
    workload = scalability_workloads(tuples_per_relation=(size,), goal_atoms=2, seed=0)[0]

    def best_of(seed_state: bool) -> tuple[float, float]:
        walls, engine_seconds = [], []
        for _ in range(repeats):
            strategy = (
                _seed_strategy("lookahead-entropy")
                if seed_state
                else create_strategy("lookahead-entropy")
            )
            result, wall = _run(workload, strategy, seed_state=seed_state)
            assert result.matches_goal(workload.goal)
            walls.append(wall)
            engine_seconds.append(result.trace.total_seconds)
        return min(walls), min(engine_seconds)

    seed_wall, seed_engine = best_of(seed_state=True)
    incr_wall, incr_engine = best_of(seed_state=False)
    return {
        "candidates": workload.num_candidates,
        "seed_wall": seed_wall,
        "incremental_wall": incr_wall,
        "wall_speedup": seed_wall / incr_wall if incr_wall else float("inf"),
        "seed_engine": seed_engine,
        "incremental_engine": incr_engine,
        "engine_speedup": seed_engine / incr_engine if incr_engine else float("inf"),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke mode: small sizes, no 5x assertion"
    )
    parser.add_argument("--repeats", type=int, default=3, help="timing repetitions (best-of)")
    args = parser.parse_args(argv)

    print("== trace equivalence: incremental engine vs seed implementation ==")
    mismatches = check_equivalence(args.quick)
    if mismatches:
        print(f"FAIL: {len(mismatches)} diverging scenario(s):")
        for item in mismatches:
            print(f"  - {item}")
        return 1
    print("ok: identical interaction traces on all scenarios")

    print("\n== end-to-end speedup (lookahead-entropy, scalability workload) ==")
    stats = measure_speedup(args.quick, max(1, args.repeats))
    print(f"candidate tuples:        {stats['candidates']}")
    print(f"seed wall time:          {stats['seed_wall']:.4f}s")
    print(f"incremental wall time:   {stats['incremental_wall']:.4f}s")
    print(f"wall-clock speedup:      {stats['wall_speedup']:.1f}x")
    print(f"seed engine time:        {stats['seed_engine']:.4f}s")
    print(f"incremental engine time: {stats['incremental_engine']:.4f}s")
    print(f"engine-time speedup:     {stats['engine_speedup']:.1f}x")

    if not args.quick and stats["wall_speedup"] < 5.0:
        print("FAIL: wall-clock speedup below the 5x acceptance target")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
