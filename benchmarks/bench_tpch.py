"""E8 — PK/FK join inference on the TPC-H-like database.

Regenerates the benchmark-database experiments the demo refers to: inferring
the classic TPC-H foreign-key joins interactively, per strategy, plus the
foreign keys rediscovered directly from the data by the integrity substrate.
The timed operation is one guided inference of the orders⋈customer join.
"""

from __future__ import annotations

from conftest import report

from repro import GoalQueryOracle, infer_join
from repro.datasets.tpch import TPCHConfig, fk_join_goal, tpch_candidate_table
from repro.experiments.tpch_experiment import discovered_foreign_keys, run_tpch_experiment

_CONFIG = TPCHConfig(customers=12, orders_per_customer=2, lineitems_per_order=2, seed=0)
_ORDERS_CUSTOMER_TABLE = tpch_candidate_table("orders-customer", config=_CONFIG, max_rows=None)


def bench_tpch_orders_customer(benchmark):
    goal = fk_join_goal("orders-customer")

    def run():
        return infer_join(_ORDERS_CUSTOMER_TABLE, GoalQueryOracle(goal), strategy="lookahead-entropy")

    result = benchmark(run)
    assert result.matches_goal(goal)

    table = run_tpch_experiment(
        joins=("orders-customer", "lineitem-orders", "customer-nation", "customer-orders-lineitem"),
        strategies=("random", "local-most-specific", "lookahead-entropy"),
        config=_CONFIG,
        max_rows=1200,
    )
    report("E8 — interactions to infer TPC-H PK/FK joins, per strategy", table.to_text())
    assert all(row["converged"] for row in table)
    assert all(row["correct"] for row in table)
    # Expected shape: a handful of questions against hundreds/thousands of candidates.
    assert all(row["interactions"] < row["candidates"] for row in table)

    fks = discovered_foreign_keys(_CONFIG)
    report("E8 — foreign keys rediscovered from the generated data", fks.to_text())
    pairs = {(row["dependent"], row["referenced"]) for row in fks}
    assert ("orders.o_custkey", "customer.c_custkey") in pairs
