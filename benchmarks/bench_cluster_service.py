"""Benchmark: the multi-process cluster vs the single-process serving stack.

`repro.service.cluster.ClusterSessionService` must be a pure *sharding*
change — same inference, same wire protocol, more cores.  Two gates:

1. **Wire-trace equivalence** — driving a session through the cluster
   produces, per session, exactly the wire events the single-process
   :class:`~repro.service.service.SessionService` produces for the same
   command sequence, across guided / top-k / manual sessions on several
   workloads; a session saved mid-run on one tier resumes on the other with
   an identical remainder; and the asyncio bridge
   (``AsyncSessionService(cluster)``) streams exactly the events the
   commands returned.

2. **Concurrent throughput** — 64 concurrent *CPU-bound* lookahead-entropy
   sessions (no simulated answer latency: the work is strategy scoring)
   through the cluster-backed async service must beat the single-process
   async service by ≥ 2× wall-clock.  Threads cannot give this speedup —
   the GIL serialises the scoring — so the gate fails unless the sharding
   actually runs on multiple cores.  On a single-core machine the speedup
   is reported but not gated (there is nothing to shard onto).

3. **Chaos equivalence** (``--chaos``) — N concurrent mixed-kind sessions
   through a supervised process cluster while a killer thread SIGKILLs a
   seeded-random worker once a seeded-random fraction (20–80 %) of the
   expected labels have been applied.  The supervisor must respawn the
   worker and replay its sessions so that *every* session's wire trace is
   byte-identical to an undisturbed single-process run — the fault gate of
   the fault-tolerant cluster work.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_cluster_service.py           # full gates
    PYTHONPATH=src python benchmarks/bench_cluster_service.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_cluster_service.py --chaos   # fault gate

Runs append their measurements to
``benchmarks/results/BENCH_cluster_service.json`` (keyed by git commit +
config hash; see :mod:`repro.experiments.trajectory`); ``--compare`` diffs
the fresh speedup against the latest recorded same-config baseline.  Exit
status is non-zero on any trace mismatch, a non-converging session, a
``--compare`` regression, or (full mode, ≥ 2 cores) a concurrent speedup
below the acceptance gate.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import random
import sys
import threading
import time
from collections.abc import Sequence
from pathlib import Path

from repro import ClusterSessionService, GoalQueryOracle, SessionService
from repro.datasets.workloads import figure1_workload
from repro.experiments.scalability import scalability_workloads
from repro.experiments.trajectory import compare_to_trajectory, record_benchmark
from repro.service import (
    AsyncSessionService,
    Converged,
    QuestionAsked,
    event_to_wire,
)

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Required cluster-over-single-process speedup (full mode, ≥ 2 cores).
SPEEDUP_GATE = 2.0
#: Workload size of the throughput gate (26 tuples/relation ≈ 676 candidates:
#: a few ms of strategy scoring per question, far above the pipe overhead).
THROUGHPUT_SIZE = 26

#: Session kinds the chaos gate cycles over — every facade mode is in the
#: blast radius, not just the guided strategies.
CHAOS_KINDS = (
    {"strategy": "lookahead-entropy"},
    {"mode": "top-k", "k": 4},
    {"strategy": "local-lexicographic"},
    {"mode": "manual-with-pruning"},
)


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _scenarios(quick: bool) -> list[tuple[str, object, dict]]:
    """(name, workload, session kwargs) triples covering the session kinds."""
    scenarios = [
        ("figure1/q1 guided", figure1_workload("q1"), {"strategy": "lookahead-entropy"}),
        ("figure1/q2 guided", figure1_workload("q2"), {"strategy": "local-lexicographic"}),
        ("figure1/q2 top-k", figure1_workload("q2"), {"mode": "top-k", "k": 3}),
        (
            "figure1/q2 manual",
            figure1_workload("q2"),
            {"mode": "manual-with-pruning"},
        ),
    ]
    sizes = (6,) if quick else (10, 20)
    for workload in scalability_workloads(tuples_per_relation=sizes, goal_atoms=2, seed=0):
        scenarios.append(
            (
                f"scalability/{workload.num_candidates} guided",
                workload,
                {"strategy": "lookahead-entropy"},
            )
        )
        scenarios.append(
            (
                f"scalability/{workload.num_candidates} top-k",
                workload,
                {"mode": "top-k", "k": 4},
            )
        )
    return scenarios


def _drive(service, session_id: str, table, oracle) -> list[dict]:
    """Drive a session to convergence, returning every wire event in order.

    Works against any facade speaking the `SessionService` API — the
    single-process service and the cluster take the identical command
    sequence.
    """
    events: list[dict] = []
    while True:
        event = service.next_question(session_id)
        events.append(event_to_wire(event))
        if isinstance(event, Converged):
            return events
        if isinstance(event, QuestionAsked):
            applied = service.answer(session_id, oracle.label(table, event.tuple_id))
            events.append(event_to_wire(applied))
        else:
            answers = [(tid, oracle.label(table, tid)) for tid in event.tuple_ids]
            events.extend(
                event_to_wire(applied)
                for applied in service.answer_many(session_id, answers)
            )


def _drive_split(service, session_id: str, table, oracle, split: int) -> list[dict]:
    """Like :func:`_drive`, but stop after ``split`` label events."""
    events: list[dict] = []
    labels = 0
    while labels < split:
        event = service.next_question(session_id)
        events.append(event_to_wire(event))
        if isinstance(event, Converged):
            return events
        if isinstance(event, QuestionAsked):
            applied = service.answer(session_id, oracle.label(table, event.tuple_id))
            events.append(event_to_wire(applied))
            labels += 1
        else:
            answers = [(tid, oracle.label(table, tid)) for tid in event.tuple_ids]
            for applied in service.answer_many(session_id, answers):
                events.append(event_to_wire(applied))
                labels += 1
    return events


def check_equivalence(cluster: ClusterSessionService, quick: bool) -> list[str]:
    """Per-session wire traces must be identical, single-process vs cluster."""
    mismatches = []
    for name, workload, kwargs in _scenarios(quick):
        oracle = GoalQueryOracle(workload.goal)

        sync_service = SessionService()
        sid = sync_service.create(workload.table, **kwargs).session_id
        sync_events = _drive(sync_service, sid, workload.table, oracle)

        fingerprint = cluster.register_table(workload.table)
        descriptor = cluster.create(fingerprint, **kwargs)
        cluster_events = _drive(cluster, descriptor.session_id, workload.table, oracle)
        cluster.close(descriptor.session_id)

        if cluster_events != sync_events:
            mismatches.append(f"{name}: cluster commands diverge from sync service")

        # Cross-tier resume: save mid-run on the cluster, finish on a fresh
        # single-process service (and vice versa); the stitched trace must
        # equal the uninterrupted one.
        descriptor = cluster.create(fingerprint, **kwargs)
        head = _drive_split(cluster, descriptor.session_id, workload.table, oracle, 2)
        document = cluster.save(descriptor.session_id)
        cluster.close(descriptor.session_id)
        fresh = SessionService()
        resumed = fresh.resume(document, table=workload.table)
        tail = _drive(fresh, resumed.session_id, workload.table, oracle)
        if head[-1]["type"] == "converged":
            stitched = head
        else:
            stitched = head + tail
        if stitched != sync_events:
            mismatches.append(f"{name}: cluster->sync resume diverges")

        sync_service = SessionService()
        sid = sync_service.create(workload.table, **kwargs).session_id
        head = _drive_split(sync_service, sid, workload.table, oracle, 2)
        document = sync_service.save(sid)
        resumed = cluster.resume(document, table=workload.table)
        tail = _drive(cluster, resumed.session_id, workload.table, oracle)
        cluster.close(resumed.session_id)
        if head[-1]["type"] == "converged":
            stitched = head
        else:
            stitched = head + tail
        if stitched != sync_events:
            mismatches.append(f"{name}: sync->cluster resume diverges")
    return mismatches


async def check_async_bridge(cluster: ClusterSessionService) -> list[str]:
    """`AsyncSessionService(cluster)` must stream exactly what commands return."""
    mismatches = []
    workload = figure1_workload("q2")
    oracle = GoalQueryOracle(workload.goal)
    async with AsyncSessionService(cluster, max_workers=2) as service:
        descriptor = await service.create(workload.table, strategy="lookahead-entropy")
        collected: list[dict] = []

        async def consume() -> None:
            async for wire in service.events(descriptor.session_id):
                collected.append(wire)

        consumer = asyncio.create_task(consume())
        commanded: list[dict] = []
        while True:
            event = await service.next_question(descriptor.session_id)
            commanded.append(event_to_wire(event))
            if isinstance(event, Converged):
                break
            applied = await service.answer(
                descriptor.session_id, oracle.label(workload.table, event.tuple_id)
            )
            commanded.append(event_to_wire(applied))
        await service.close(descriptor.session_id)
        await asyncio.wait_for(consumer, timeout=30)
    if collected != commanded:
        mismatches.append("asyncio bridge: event stream diverges from command results")
    return mismatches


async def _run_concurrent(backing, num_sessions: int, workers: int, workload) -> tuple[float, int]:
    """Wall-clock for N concurrent CPU-bound guided sessions on one backing."""
    oracle = GoalQueryOracle(workload.goal)
    expected = {frozenset(atom.attributes) for atom in workload.goal}

    async def drive(service: AsyncSessionService, session_id: str) -> bool:
        while True:
            event = await service.next_question(session_id)
            if isinstance(event, Converged):
                return {frozenset(pair) for pair in event.atoms} == expected
            await service.answer(
                session_id, oracle.label(workload.table, event.tuple_id)
            )

    async with AsyncSessionService(
        backing, max_sessions=num_sessions, max_workers=workers
    ) as service:
        descriptors = [
            await service.create(workload.table, strategy="lookahead-entropy")
            for _ in range(num_sessions)
        ]
        started = time.perf_counter()
        outcomes = await asyncio.gather(
            *(drive(service, d.session_id) for d in descriptors)
        )
        wall = time.perf_counter() - started
        for descriptor in descriptors:
            await service.close(descriptor.session_id)
    return wall, sum(outcomes)


def measure_throughput(num_sessions: int, workers: int, size: int) -> dict:
    """Wall-clock for N CPU-bound sessions: single-process vs cluster-backed."""
    workload = scalability_workloads(
        tuples_per_relation=(size,), goal_atoms=2, seed=0
    )[0]
    single_wall, single_ok = asyncio.run(
        _run_concurrent(SessionService(), num_sessions, workers, workload)
    )
    with ClusterSessionService(num_workers=workers) as cluster:
        cluster.register_table(workload.table)
        cluster_wall, cluster_ok = asyncio.run(
            _run_concurrent(cluster, num_sessions, workers, workload)
        )
    return {
        "sessions": num_sessions,
        "workers": workers,
        "candidates": workload.num_candidates,
        "single_wall": single_wall,
        "cluster_wall": cluster_wall,
        "speedup": single_wall / cluster_wall,
        "single_ok": single_ok,
        "cluster_ok": cluster_ok,
    }


def run_chaos(num_sessions: int, workers: int, seed: int) -> dict:
    """SIGKILL a worker mid-run; every session's trace must stay identical.

    Drives ``num_sessions`` concurrent sessions (kinds cycled from
    :data:`CHAOS_KINDS`) through a supervised process cluster from plain
    threads.  A killer thread watches the shared applied-label counter and
    SIGKILLs a seeded-random worker once a seeded-random fraction (20–80 %)
    of the expected total labels is in — real mid-run machine loss, not a
    quiesced kill.  Per-session wire traces are then compared against
    undisturbed single-process baselines.
    """
    workload = figure1_workload("q1")
    oracle = GoalQueryOracle(workload.goal)
    rng = random.Random(seed)

    baselines = []
    for kwargs in CHAOS_KINDS:
        service = SessionService()
        sid = service.create(workload.table, **kwargs).session_id
        baselines.append(_drive(service, sid, workload.table, oracle))
    labels_per_kind = [
        sum(1 for event in baseline if event["type"] == "label_applied")
        for baseline in baselines
    ]
    expected_labels = sum(
        labels_per_kind[i % len(CHAOS_KINDS)] for i in range(num_sessions)
    )
    threshold = rng.randint(
        max(1, int(0.2 * expected_labels)), max(1, int(0.8 * expected_labels))
    )
    victim = rng.randrange(workers)

    progress = [0]
    progress_lock = threading.Lock()
    traces: list[list[dict] | None] = [None] * num_sessions
    errors: list[str] = []
    kills = [0]
    stop_killer = threading.Event()

    with ClusterSessionService(num_workers=workers, heartbeat_interval=0.5) as cluster:
        fingerprint = cluster.register_table(workload.table)
        sids = [
            cluster.create(fingerprint, **CHAOS_KINDS[i % len(CHAOS_KINDS)]).session_id
            for i in range(num_sessions)
        ]

        def drive(slot: int, session_id: str) -> None:
            events: list[dict] = []
            try:
                while True:
                    event = cluster.next_question(session_id)
                    events.append(event_to_wire(event))
                    if isinstance(event, Converged):
                        break
                    if isinstance(event, QuestionAsked):
                        batch = [
                            cluster.answer(
                                session_id, oracle.label(workload.table, event.tuple_id)
                            )
                        ]
                    else:
                        answers = [
                            (tid, oracle.label(workload.table, tid))
                            for tid in event.tuple_ids
                        ]
                        batch = cluster.answer_many(session_id, answers)
                    events.extend(event_to_wire(applied) for applied in batch)
                    with progress_lock:
                        progress[0] += len(batch)
            except Exception as exc:  # noqa: BLE001 - reported as a gate failure
                errors.append(f"session {session_id}: {exc!r}")
            traces[slot] = events

        def killer() -> None:
            while not stop_killer.is_set():
                with progress_lock:
                    done = progress[0]
                if done >= threshold:
                    cluster.kill_worker(victim)
                    kills[0] += 1
                    return
                time.sleep(0.001)

        threads = [
            threading.Thread(target=drive, args=(slot, sid))
            for slot, sid in enumerate(sids)
        ]
        killer_thread = threading.Thread(target=killer)
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        killer_thread.start()
        for thread in threads:
            thread.join()
        stop_killer.set()
        killer_thread.join()
        wall = time.perf_counter() - started
        respawns = sum(state["generation"] for state in cluster.worker_states())

    mismatches = list(errors)
    for slot, trace in enumerate(traces):
        if trace != baselines[slot % len(CHAOS_KINDS)]:
            kind = CHAOS_KINDS[slot % len(CHAOS_KINDS)]
            mismatches.append(f"session {slot} ({kind}): trace diverges from baseline")

    return {
        "sessions": num_sessions,
        "workers": workers,
        "seed": seed,
        "victim": victim,
        "threshold": threshold,
        "expected_labels": expected_labels,
        "wall": wall,
        "throughput": num_sessions / wall,
        "kills": kills[0],
        "respawns": respawns,
        "mismatches": mismatches,
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke mode: fewer sessions, no speedup gate"
    )
    parser.add_argument(
        "--sessions", type=int, default=None, help="concurrent session count (default 64, quick 8)"
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="cluster worker processes (default: up to 4 cores)"
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="fault gate: SIGKILL a worker mid-run, require byte-identical traces",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="chaos schedule seed (kill point + victim)"
    )
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="skip writing benchmarks/results/BENCH_cluster_service.json",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="fail on regressions vs the latest recorded same-config baseline",
    )
    args = parser.parse_args(argv)
    num_sessions = args.sessions or (8 if args.quick else 64)
    cores = _cores()
    workers = args.workers or max(2, min(4, cores))

    if args.chaos:
        print(
            f"== chaos: {num_sessions} mixed-kind sessions, {workers} workers, "
            f"SIGKILL schedule seed {args.seed} =="
        )
        stats = run_chaos(num_sessions, workers, args.seed)
        print(
            f"kill:       worker {stats['victim']} at label "
            f"{stats['threshold']}/{stats['expected_labels']} "
            f"({stats['kills']} kill(s) fired)"
        )
        print(f"respawns:   {stats['respawns']} worker generation(s) replaced")
        print(f"wall:       {stats['wall']:.3f}s ({stats['throughput']:.1f} sessions/s)")
        mismatches = stats.pop("mismatches")
        if mismatches:
            print(f"FAIL: {len(mismatches)} session(s) diverged or errored:")
            for item in mismatches[:10]:
                print(f"  - {item}")
            return 1
        if stats["kills"] < 1:
            print("FAIL: the run finished before the scheduled kill fired")
            return 1
        if stats["respawns"] < 1:
            print("FAIL: no worker was respawned after the kill")
            return 1
        print("ok: every trace byte-identical to its undisturbed single-process run")
        config = {
            "chaos": True,
            "sessions": num_sessions,
            "workers": workers,
            "seed": args.seed,
        }
        if args.compare:
            regressions, baseline = compare_to_trajectory(
                "cluster_service", RESULTS_DIR, config, stats, ["throughput"], tolerance=0.5
            )
            if baseline is None:
                print("compare: no recorded baseline for this configuration (vacuously green)")
            elif regressions:
                print(f"compare: REGRESSED vs baseline at commit {baseline.get('commit', '?')[:12]}:")
                for line in regressions:
                    print(f"  - {line}")
                return 1
            else:
                print(f"compare: green vs baseline at commit {baseline.get('commit', '?')[:12]}")
        if not args.no_record:
            path = record_benchmark("cluster_service", config, stats, RESULTS_DIR)
            print(f"recorded trajectory: {path}")
        return 0

    print("== wire-trace equivalence: cluster vs single-process service ==")
    with ClusterSessionService(num_workers=2) as cluster:
        mismatches = check_equivalence(cluster, args.quick)
        mismatches += asyncio.run(check_async_bridge(cluster))
    if mismatches:
        print(f"FAIL: {len(mismatches)} diverging scenario(s):")
        for item in mismatches:
            print(f"  - {item}")
        return 1
    print("ok: identical per-session wire traces on all scenarios (incl. cross-tier resume)")

    size = 10 if args.quick else THROUGHPUT_SIZE
    print(
        f"\n== throughput: {num_sessions} CPU-bound lookahead-entropy sessions, "
        f"{workers} workers, {cores} core(s) =="
    )
    stats = measure_throughput(num_sessions, workers, size)
    print(f"sessions:            {stats['sessions']} ({stats['candidates']} candidates each)")
    print(f"single-process wall: {stats['single_wall']:.3f}s ({stats['single_ok']} converged to goal)")
    print(f"cluster wall:        {stats['cluster_wall']:.3f}s ({stats['cluster_ok']} converged to goal)")
    print(f"speedup:             {stats['speedup']:.2f}x")

    if stats["single_ok"] != num_sessions or stats["cluster_ok"] != num_sessions:
        print("FAIL: not every session converged to the goal query")
        return 1
    if not args.quick:
        if cores < 2:
            print("note: single core available — the speedup gate needs >= 2 cores and is skipped")
        elif stats["speedup"] < SPEEDUP_GATE:
            print(f"FAIL: cluster speedup below the {SPEEDUP_GATE}x acceptance gate")
            return 1

    config = {"quick": args.quick, "sessions": num_sessions, "workers": workers, "size": size}
    if args.compare:
        # The cluster speedup scales with the machine's cores, so the
        # tolerance is wide: this is a drift net, not a precision gate.
        regressions, baseline = compare_to_trajectory(
            "cluster_service", RESULTS_DIR, config, stats, ["speedup"], tolerance=0.5
        )
        if baseline is None:
            print("compare: no recorded baseline for this configuration (vacuously green)")
        elif regressions:
            print(f"compare: REGRESSED vs baseline at commit {baseline.get('commit', '?')[:12]}:")
            for line in regressions:
                print(f"  - {line}")
            return 1
        else:
            print(f"compare: green vs baseline at commit {baseline.get('commit', '?')[:12]}")
    if not args.no_record:
        path = record_benchmark("cluster_service", config, stats, RESULTS_DIR)
        print(f"recorded trajectory: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
