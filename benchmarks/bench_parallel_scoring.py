"""Benchmark: sharded type table + worker-pool fan-out vs the serial kernels.

One inference session, 10⁶ candidate tuples, every core: with a parallel
mode active (``REPRO_PARALLEL=thread|process`` or
:class:`repro.core.parallel.parallel_scope`) the session shards its type
table (:class:`repro.core.kernels.ShardedTypeTable`), fans the lookahead
prune-count kernel across the pool shard by shard, and distributes the
factorized setup work — the group-combination histogram, the propagation-
side id materialisation and the smallest-id tie-break scans — across the
same pool.  The serial path stays the default and is byte-for-byte the
pre-parallel engine.

The benchmark checks both halves of that claim:

* *Trace equivalence* — on every scenario, every strategy and every kernel
  backend, the serial engine and the parallel engine (thread and process
  modes, several shard counts including one larger than the number of
  distinct types) must ask about the same tuples in the same order and
  infer the same query.
* *Speedup* — lookahead-entropy over a 10⁶-candidate factorized workload,
  serial vs process-parallel on the same backend.  The ≥3× gate is
  enforced only on machines with at least 4 cores (below that the numbers
  are reported, not asserted — a 1-core container cannot demonstrate a
  parallel speedup).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_parallel_scoring.py           # full: 10^6 candidates
    PYTHONPATH=src python benchmarks/bench_parallel_scoring.py --quick   # CI smoke

Full runs append their measurements to
``benchmarks/results/BENCH_parallel_scoring.json`` (keyed by git commit +
config hash; see :mod:`repro.experiments.trajectory`).  ``--compare`` diffs
the fresh speedups against the latest recorded baseline with the same
configuration and fails on regressions beyond tolerance.  Exit status is
non-zero when trace equivalence fails, the (enforced) speedup gate misses,
or ``--compare`` finds a regression.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence
from pathlib import Path

from repro import GoalQueryOracle, JoinInferenceEngine
from repro.core import parallel
from repro.core.kernels import available_backends, use_backend
from repro.core.state import InferenceState
from repro.core.strategies.registry import create_strategy
from repro.datasets.workloads import figure1_workload
from repro.experiments.scalability import scalability_workloads
from repro.experiments.trajectory import compare_to_trajectory, record_benchmark

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: The speedup gate: process-parallel vs serial on the same kernel backend.
GATE_SPEEDUP = 3.0
#: Cores below which the gate is reported but not enforced.
GATE_MIN_CPUS = 4


def _run(workload, strategy_name: str):
    strategy = create_strategy(strategy_name, seed=7)
    oracle = GoalQueryOracle(workload.goal)
    # The wall covers the full session — the factorized setup (equality-type
    # histogram) plus every propagation and scored step — so anything left
    # serial dilutes the measured speedup, exactly as it would for a user.
    started = time.perf_counter()
    engine = JoinInferenceEngine(workload.table, strategy=strategy)
    state = InferenceState(workload.table, universe=engine.universe)
    result = engine.run(oracle, initial_state=state)
    wall = time.perf_counter() - started
    return result, wall


def _trace_signature(result):
    return (
        [
            (i.tuple_id, i.label.value, i.pruned, i.informative_remaining)
            for i in result.trace.interactions
        ],
        result.query.normalized().describe(),
        result.converged,
    )


def _fan_workload(tuples: int, domain: int):
    """A factorized 2-relation workload of ``tuples²`` candidates."""
    return scalability_workloads(
        tuples_per_relation=(tuples,),
        goal_atoms=2,
        seed=0,
        max_candidate_rows=None,
        domain_size=domain,
    )[0]


def check_equivalence(quick: bool) -> list[str]:
    """Serial and parallel engines must produce identical traces everywhere.

    The scenario list mixes the interactive-scale workloads with one
    workload large enough to cross the fan-out thresholds, so the pool
    paths — not just their serial fallbacks — are under test.
    """
    sizes = (6, 10) if quick else (10, 20, 30)
    scenarios = [(f"figure1/{q}", figure1_workload(q)) for q in ("q1", "q2")]
    scenarios += [
        (f"scalability/{w.num_candidates}", w)
        for w in scalability_workloads(tuples_per_relation=sizes, goal_atoms=2, seed=0)
    ]
    fan = _fan_workload(tuples=60 if quick else 150, domain=30)
    scenarios.append((f"fan/{fan.num_candidates}", fan))
    strategies = ["lookahead-entropy", "local-most-specific", "lookahead-minmax"]
    if not quick:
        strategies.append("lookahead-kstep")
    shard_counts = (2, 7) if quick else (1, 2, 7, 1000)
    mismatches = []
    for scenario_name, workload in scenarios:
        for strategy_name in strategies:
            for backend in available_backends():
                with use_backend(backend):
                    reference = _trace_signature(_run(workload, strategy_name)[0])
                    for mode in ("thread", "process"):
                        for shards in shard_counts:
                            with parallel.parallel_scope(mode, shards):
                                result, _ = _run(workload, strategy_name)
                            if _trace_signature(result) != reference:
                                mismatches.append(
                                    f"{scenario_name} × {strategy_name} "
                                    f"[{backend}/{mode}/shards={shards}]"
                                )
    return mismatches


def measure_speedup(quick: bool, repeats: int) -> dict:
    """Lookahead-entropy end to end: serial vs process-parallel, per backend.

    Serial and parallel traces must match before a speedup counts.
    """
    workload = _fan_workload(tuples=150 if quick else 1000, domain=30)
    per_backend: dict[str, dict] = {}
    steps = None
    for backend in available_backends():
        with use_backend(backend):
            serial_walls, parallel_walls = [], []
            serial_signature = parallel_signature = None
            for _ in range(repeats):
                result, wall = _run(workload, "lookahead-entropy")
                serial_signature = _trace_signature(result)
                steps = len(result.trace.interactions)
                serial_walls.append(wall)
            with parallel.parallel_scope("process"):
                for _ in range(repeats):
                    result, wall = _run(workload, "lookahead-entropy")
                    parallel_signature = _trace_signature(result)
                    parallel_walls.append(wall)
            serial_wall = min(serial_walls)
            parallel_wall = min(parallel_walls)
            per_backend[backend] = {
                "serial_wall": serial_wall,
                "parallel_wall": parallel_wall,
                "speedup": serial_wall / parallel_wall if parallel_wall else float("inf"),
                "trace_match": serial_signature == parallel_signature,
            }
    return {
        "cpus": parallel.available_cpus(),
        "candidates": workload.num_candidates,
        "steps": steps,
        "shards": parallel.shard_count(),
        "backends": per_backend,
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke mode: small sizes, gate reported only"
    )
    parser.add_argument("--repeats", type=int, default=3, help="timing repetitions (best-of)")
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="skip writing benchmarks/results/BENCH_parallel_scoring.json",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="fail on speedup regressions vs the latest recorded same-config baseline",
    )
    args = parser.parse_args(argv)
    repeats = max(1, args.repeats)

    print("== trace equivalence: parallel engine vs serial engine ==")
    print(f"kernel backends under test: {', '.join(available_backends())}")
    mismatches = check_equivalence(args.quick)
    if mismatches:
        print(f"FAIL: {len(mismatches)} diverging scenario(s):")
        for item in mismatches:
            print(f"  - {item}")
        parallel.shutdown_executors()
        return 1
    print("ok: identical interaction traces on all scenarios, modes and shard counts")

    print("\n== end-to-end speedup (lookahead-entropy, serial vs process-parallel) ==")
    stats = measure_speedup(args.quick, repeats)
    print(f"cpus: {stats['cpus']}   shards: {stats['shards']}")
    print(f"candidate tuples: {stats['candidates']}   interactions: {stats['steps']}")
    trace_broken = False
    for backend, numbers in stats["backends"].items():
        print(
            f"{backend:>7}: serial {numbers['serial_wall']:.3f}s  "
            f"parallel {numbers['parallel_wall']:.3f}s  "
            f"speedup {numbers['speedup']:.2f}x  "
            f"traces {'identical' if numbers['trace_match'] else 'DIVERGED'}"
        )
        trace_broken = trace_broken or not numbers["trace_match"]
    parallel.shutdown_executors()
    if trace_broken:
        print("FAIL: serial and parallel traces diverged on the speedup workload")
        return 1

    best_speedup = max(numbers["speedup"] for numbers in stats["backends"].values())
    gate_enforced = not args.quick and stats["cpus"] >= GATE_MIN_CPUS
    if gate_enforced and best_speedup < GATE_SPEEDUP:
        print(
            f"FAIL: best parallel speedup {best_speedup:.2f}x is below the "
            f"{GATE_SPEEDUP:.0f}x gate on {stats['cpus']} cores"
        )
        return 1
    if not gate_enforced:
        reason = "quick mode" if args.quick else f"{stats['cpus']} core(s) < {GATE_MIN_CPUS}"
        print(
            f"gate reported only ({reason}): best speedup {best_speedup:.2f}x vs "
            f"{GATE_SPEEDUP:.0f}x target"
        )

    config = {
        "quick": args.quick,
        "repeats": repeats,
        "backends": available_backends(),
        "cpus": stats["cpus"],
    }
    results = {**stats, "gate_enforced": gate_enforced, "best_speedup": best_speedup}
    if args.compare:
        metrics = [f"backends.{backend}.speedup" for backend in available_backends()]
        regressions, baseline = compare_to_trajectory(
            "parallel_scoring", RESULTS_DIR, config, results, metrics
        )
        if baseline is None:
            print("\ncompare: no recorded baseline for this configuration (vacuously green)")
        elif regressions:
            print(f"\ncompare: REGRESSED vs baseline at commit {baseline.get('commit', '?')[:12]}:")
            for line in regressions:
                print(f"  - {line}")
            return 1
        else:
            print(
                f"\ncompare: green vs baseline at commit {baseline.get('commit', '?')[:12]}"
            )
    if not args.no_record:
        path = record_benchmark("parallel_scoring", config, results, RESULTS_DIR)
        print(f"recorded trajectory: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
