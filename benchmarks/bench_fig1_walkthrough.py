"""E1 — the Section 2 walkthrough on the Figure 1 table (paper's worked example).

Regenerates every fact of the paper's motivating example (which tuples Q1/Q2
select, which labels gray out which tuples, which label set identifies Q2) and
times the full walkthrough computation.
"""

from __future__ import annotations

from conftest import report

from repro.experiments.walkthrough import run_walkthrough


def bench_walkthrough(benchmark):
    walkthrough = benchmark(run_walkthrough)
    report("E1 — Figure 1 walkthrough (Section 2 of the paper)", walkthrough.to_table().to_text())
    assert walkthrough.final_matches_q2
    assert walkthrough.grayed_if_12_positive == (2, 3, 6)
    assert walkthrough.grayed_if_12_negative == (0, 4, 8)
