"""E9 — crowdsourcing cost: membership queries (JIM) vs pairwise crowd joins.

Regenerates the Section 1 motivation: how many crowd questions JIM needs
compared to a pairwise (entity-resolution style) crowd join as the candidate
pair space grows.  The timed operation is the JIM inference on the largest
workload of the sweep.
"""

from __future__ import annotations

from conftest import report

from repro import GoalQueryOracle, infer_join
from repro.experiments.crowd import compare_crowd_cost, crowd_workloads

_WORKLOADS = crowd_workloads(tuples_per_relation=(8, 12, 16, 24), goal_atoms=1, seed=0)


def bench_jim_vs_pairwise_crowd_join(benchmark):
    workload = _WORKLOADS[-1]

    def run():
        return infer_join(workload.table, GoalQueryOracle(workload.goal), strategy="lookahead-entropy")

    result = benchmark(run)
    assert result.matches_goal(workload.goal)

    table = compare_crowd_cost(_WORKLOADS)
    report("E9 — crowd questions: JIM vs pairwise entity-resolution join", table.to_text())
    assert all(row["jim_questions"] < row["pairwise_questions"] for row in table)
    assert all(row["reduction_factor"] >= 2 for row in table)
    assert all(row["correct"] for row in table)
