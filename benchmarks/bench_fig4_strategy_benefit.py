"""E4 — the "benefit of using a strategy" comparison of Figure 4.

Regenerates the bar-chart comparison the demo shows after a free-labeling
session: interactions the (simulated) unguided user performed vs interactions
a guided strategy would have needed for the same goal query.  The timed
operation is the benefit computation (the strategy replay).
"""

from __future__ import annotations

from conftest import report

from repro import GoalQueryOracle
from repro.experiments.interactions import strategy_benefit
from repro.sessions import ManualSession
from repro.sessions.benefit import compute_benefit
from repro.ui import render_benefit_report


def bench_benefit_report(benchmark, figure1_workload_q2):
    workload = figure1_workload_q2
    session = ManualSession(workload.table, gray_out=False)
    session.run(GoalQueryOracle(workload.goal), order=list(workload.table.tuple_ids))

    def compute():
        return compute_benefit(
            session.state, session.num_interactions, strategy="lookahead-entropy", goal=workload.goal
        )

    benefit = benchmark(compute)
    chart = render_benefit_report(benefit)
    table = strategy_benefit(seeds=(0, 1, 2))
    report("E4 — benefit of using a strategy (Figure 4)", chart + "\n\n" + table.to_text())
    assert benefit.strategy_interactions <= benefit.user_interactions
