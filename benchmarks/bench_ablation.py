"""E10 — ablations of JIM's design choices.

Regenerates the three ablations called out in DESIGN.md: the value of pruning
uninformative tuples, the effect of restricting the atom universe to
cross-relation pairs, and what deeper lookahead (up to the exponential optimal
strategy) buys.  The timed operation is the exponential optimal strategy run
on the Figure 1 workload — the most expensive single component exercised here.
"""

from __future__ import annotations

from conftest import report

from repro import GoalQueryOracle, JoinInferenceEngine
from repro.core.strategies import OptimalStrategy
from repro.experiments.ablation import (
    ablate_atom_scope,
    ablate_lookahead_depth,
    ablate_pruning,
    default_ablation_workloads,
)

_WORKLOADS = default_ablation_workloads(seed=0)


def bench_optimal_strategy_on_figure1(benchmark, figure1_workload_q2):
    def run():
        engine = JoinInferenceEngine(figure1_workload_q2.table, strategy=OptimalStrategy())
        return engine.run(GoalQueryOracle(figure1_workload_q2.goal))

    result = benchmark(run)
    assert result.matches_goal(figure1_workload_q2.goal)

    pruning = ablate_pruning(_WORKLOADS, seeds=(0, 1, 2))
    report("E10a — pruning ablation: guided loop vs unguided random-order labeling", pruning.to_text())
    means = pruning.group_mean(["variant"], "interactions")
    assert means[("with-pruning (guided)",)] <= means[("no-pruning (random order)",)]

    scope = ablate_atom_scope(_WORKLOADS)
    report("E10b — atom-universe scope ablation (cross-relation vs all pairs)", scope.to_text())
    by_scope = scope.group_mean(["scope"], "interactions")
    assert set(by_scope) == {("cross-relation",), ("all-pairs",)}

    depth = ablate_lookahead_depth(_WORKLOADS, depths=(1, 2), include_optimal=True)
    report("E10c — lookahead depth ablation (greedy → k-step → optimal)", depth.to_text())
    assert all(row["interactions"] >= 1 for row in depth)
