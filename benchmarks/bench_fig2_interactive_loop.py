"""E2 — the interactive loop of Figure 2 vs labeling every tuple.

Regenerates the headline saving of the demo ("Jim saves a lot of effort"): the
number of membership queries the guided loop needs compared to the size of the
candidate table, on Figure 1 and on a synthetic size sweep.  The timed
operation is one full guided inference run on the Figure 1 workload.
"""

from __future__ import annotations

from conftest import report

from repro import GoalQueryOracle, JoinInferenceEngine
from repro.experiments.interactions import default_e2_workloads, interactive_vs_label_all

_WORKLOADS = default_e2_workloads(tuple_counts=(6, 10, 14, 20), goal_atoms=2, seed=0)


def bench_guided_inference_figure1(benchmark, figure1_workload_q2):
    engine = JoinInferenceEngine(figure1_workload_q2.table, strategy="lookahead-entropy")

    def run():
        return engine.run(GoalQueryOracle(figure1_workload_q2.goal))

    result = benchmark(run)
    assert result.converged and result.matches_goal(figure1_workload_q2.goal)

    table = interactive_vs_label_all(_WORKLOADS)
    report("E2 — guided interactive loop vs labeling every tuple", table.to_text())
    assert all(row["interactive_labels"] < row["label_all_labels"] for row in table)
