"""E6 — joining sets of pictures (the Set-card scenario of Figure 5).

Regenerates the picture-join part of the demo: inferring "pairs of cards with
the same color and the same shading" (and other feature joins) over the pair
space of a Set deck.  The timed operation is one guided inference of the
demo's goal query on a 12-card deck (144 candidate pairs).
"""

from __future__ import annotations

from conftest import report

from repro import GoalQueryOracle, infer_join
from repro.datasets import setgame
from repro.experiments.results import ResultTable

_TABLE_12 = setgame.pair_table(deck_size=12, seed=7)
_FEATURE_SETS = (("color",), ("shading",), ("color", "shading"), ("number", "symbol"),
                 ("number", "symbol", "color"))


def bench_setgame_demo_query(benchmark):
    goal = setgame.demo_goal_query()

    def run():
        return infer_join(_TABLE_12, GoalQueryOracle(goal), strategy="lookahead-entropy")

    result = benchmark(run)
    assert result.matches_goal(goal)

    rows = ResultTable(["goal features", "candidate pairs", "questions", "correct"])
    for features in _FEATURE_SETS:
        feature_goal = setgame.same_feature_query(*features)
        feature_result = infer_join(
            _TABLE_12, GoalQueryOracle(feature_goal), strategy="lookahead-entropy"
        )
        rows.add_row(
            {
                "goal features": " & ".join(features),
                "candidate pairs": len(_TABLE_12),
                "questions": feature_result.num_interactions,
                "correct": feature_result.matches_goal(feature_goal),
            }
        )
    # The full deck, sampled, to show the question count stays flat.
    full_table = setgame.pair_table(deck_size=None, max_rows=1500, seed=3)
    full_result = infer_join(
        full_table, GoalQueryOracle(setgame.demo_goal_query()), strategy="lookahead-entropy"
    )
    rows.add_row(
        {
            "goal features": "color & shading (81-card deck, sampled)",
            "candidate pairs": len(full_table),
            "questions": full_result.num_interactions,
            "correct": full_result.matches_goal(setgame.demo_goal_query()),
        }
    )
    report("E6 — joining sets of pictures (Set cards, Figure 5)", rows.to_text())
    assert all(row["correct"] for row in rows)
    assert all(row["questions"] < row["candidate pairs"] for row in rows)
