"""Travel packages, the long version: the four interaction modes and Figure 4.

This example walks through the full demonstration scenario of the paper on the
flights & hotels data:

1. a user labels tuples on her own (interaction type 1);
2. the same user helped by interactive graying-out (type 2);
3. the system proposes the top-k informative tuples (type 3);
4. the fully guided inference loop (type 4);

then prints the "benefit of using a strategy" report (Figure 4), compares all
strategies on the same goal, and finally executes the inferred query against
SQLite to build the actual package list.

Run with::

    python examples/travel_packages.py
"""

from __future__ import annotations

from repro import GoalQueryOracle
from repro.core.engine import JoinInferenceEngine
from repro.core.strategies import available_strategies, create_strategy
from repro.datasets import flights_hotels
from repro.relational import sqlite_adapter
from repro.sessions import GuidedSession, ManualSession, TopKSession
from repro.ui import render_benefit_report, render_strategy_comparison


def main() -> None:
    table = flights_hotels.figure1_table()
    goal = flights_hotels.query_q2()
    print(f"Goal query (what the user has in mind): {goal.describe()}\n")

    # --- The four interaction types of the demo (Figure 3) ----------------- #
    order = list(table.tuple_ids)  # the user reads the table top to bottom

    mode1 = ManualSession(table, gray_out=False)
    mode1.run(GoalQueryOracle(goal), order=order)
    print(f"[mode 1] free labeling            : {mode1.num_interactions} labels")

    mode2 = ManualSession(table, gray_out=True)
    mode2.run(GoalQueryOracle(goal), order=order)
    print(f"[mode 2] free labeling + graying  : {mode2.num_interactions} labels "
          f"({mode2.statistics().grayed_out} tuples grayed out)")

    mode3 = TopKSession(table, k=3)
    mode3.run(GoalQueryOracle(goal))
    print(f"[mode 3] top-3 proposals          : {mode3.num_interactions} labels")

    mode4 = GuidedSession(table, strategy="lookahead-entropy")
    mode4.run(GoalQueryOracle(goal))
    print(f"[mode 4] fully guided             : {mode4.num_interactions} labels")
    print()

    # --- Figure 4: how much a strategy would have saved the mode-1 user ---- #
    report = mode1.benefit_report(strategy="lookahead-entropy", goal=goal)
    print(render_benefit_report(report))
    print()

    # --- Comparing the strategies (second demo part) ------------------------ #
    interactions_by_strategy = {}
    for name in available_strategies():
        engine = JoinInferenceEngine(table, strategy=create_strategy(name, seed=0))
        run = engine.run(GoalQueryOracle(goal))
        interactions_by_strategy[name] = float(run.num_interactions)
    print(render_strategy_comparison(interactions_by_strategy))
    print()

    # --- Executing the inferred query for real ------------------------------ #
    qualified_table = flights_hotels.qualified_figure1_table()
    qualified_goal = flights_hotels.qualified_query_q2()
    connection = sqlite_adapter.connect()
    sqlite_adapter.write_instance(connection, flights_hotels.travel_instance())
    packages = sqlite_adapter.execute_join(connection, qualified_goal, qualified_table)
    print("Flight&hotel packages produced by the inferred query (via SQLite):")
    for row in packages:
        print("  ", row)
    connection.close()


if __name__ == "__main__":
    main()
