"""Quickstart: infer the paper's goal query Q2 from a handful of Yes/No answers.

Reproduces the motivating example of the paper (Figure 1): a travel-agency
employee wants flight&hotel packages but cannot write the join predicate.  JIM
asks her to label a few candidate tuples and infers the query.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import GoalQueryOracle, infer_join
from repro.datasets import flights_hotels
from repro.ui import render_table


def main() -> None:
    # The denormalised table the user sees (Figure 1 of the paper).
    table = flights_hotels.figure1_table()
    print("The candidate tuples (flight × hotel combinations):")
    print(render_table(table))
    print()

    # The query the user has in mind but cannot write down:
    # Q2: the hotel is in the destination city AND its discount matches the airline.
    goal = flights_hotels.query_q2()
    print(f"Goal query the user has in mind (hidden from JIM): {goal.describe()}")
    print()

    # The "user" is simulated by an oracle that answers membership queries
    # according to the goal query — exactly the setup of the paper's experiments.
    result = infer_join(table, GoalQueryOracle(goal), strategy="lookahead-entropy")

    print(f"Inferred join query : {result.query.describe()}")
    print(f"Membership queries  : {result.num_interactions} (instead of labeling all {len(table)} tuples)")
    print(f"Matches the goal    : {result.matches_goal(goal)}")
    print()
    print("Questions asked:")
    for interaction in result.trace.interactions:
        row = table.row(interaction.tuple_id)
        rendered = ", ".join(f"{n}={v!r}" for n, v in zip(table.attribute_names, row, strict=True))
        print(
            f"  {interaction.step}. tuple ({interaction.tuple_id + 1}) [{rendered}] "
            f"→ {interaction.label.value}   ({interaction.pruned} tuple(s) grayed out)"
        )
    print()
    print("Equivalent SQL over the base relations:")
    print(" ", flights_hotels.qualified_query_q2().to_sql(flights_hotels.qualified_figure1_table()))


if __name__ == "__main__":
    main()
