"""Crowdsourcing cost: membership queries (JIM) vs pairwise crowd joins.

Section 1 of the paper argues that JIM suits crowdsourced joins because
"minimizing the number of interactions entails lower financial costs", whereas
existing crowd-join systems resolve pairs of tuples one by one.  This example
prices both approaches on growing synthetic join tasks.

Run with::

    python examples/crowdsourcing_cost.py
"""

from __future__ import annotations

from repro import GoalQueryOracle, infer_join
from repro.baselines.entity_resolution import PairwiseCrowdJoin
from repro.datasets.synthetic import SyntheticConfig, planted_goal_instance

PRICE_PER_QUESTION = 0.05  # dollars, a typical micro-task reward


def main() -> None:
    print(f"{'candidate pairs':>16s} {'pairwise questions':>19s} {'JIM questions':>14s} "
          f"{'pairwise cost':>14s} {'JIM cost':>9s} {'saving':>7s}")
    for tuples_per_relation in (8, 12, 16, 24, 32):
        config = SyntheticConfig(
            num_relations=2,
            attributes_per_relation=3,
            tuples_per_relation=tuples_per_relation,
            domain_size=4,
            seed=1,
        )
        table, goal = planted_goal_instance(config, num_atoms=1)

        crowd = PairwiseCrowdJoin().run(table, GoalQueryOracle(goal))
        jim = infer_join(table, GoalQueryOracle(goal), strategy="lookahead-entropy")
        assert jim.matches_goal(goal)

        pairwise_cost = crowd.questions_asked * PRICE_PER_QUESTION
        jim_cost = jim.num_interactions * PRICE_PER_QUESTION
        saving = 100.0 * (1 - jim_cost / pairwise_cost)
        print(
            f"{len(table):16d} {crowd.questions_asked:19d} {jim.num_interactions:14d} "
            f"${pairwise_cost:13.2f} ${jim_cost:8.2f} {saving:6.1f}%"
        )

    print()
    print("JIM infers the join *predicate* from a few membership questions, so its")
    print("cost stays flat while the pairwise approach grows with the candidate space.")


if __name__ == "__main__":
    main()
