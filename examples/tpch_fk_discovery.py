"""Inferring PK/FK joins on a TPC-H-like database, and rediscovering its keys.

The research paper behind JIM evaluates join inference on TPC-H.  This example
generates a miniature TPC-H-like instance, lets the simulated user infer the
classic foreign-key joins interactively, and contrasts that with what a
constraint-discovery pass over the data finds — two routes to the same joins,
one requiring only Yes/No answers from a non-expert.

Run with::

    python examples/tpch_fk_discovery.py
"""

from __future__ import annotations

from repro import GoalQueryOracle, infer_join
from repro.datasets import tpch
from repro.relational.integrity import foreign_key_candidates


def main() -> None:
    config = tpch.TPCHConfig(customers=10, orders_per_customer=2, lineitems_per_order=2, seed=1)
    instance = tpch.generate_tpch(config)
    print("Miniature TPC-H-like instance:", instance.summary())
    print()

    print("Interactive inference of the classic joins:")
    for join_name in ("orders-customer", "lineitem-orders", "customer-nation",
                      "customer-orders-lineitem"):
        table = tpch.tpch_candidate_table(join_name, config=config, max_rows=1500, instance=instance)
        goal = tpch.fk_join_goal(join_name)
        result = infer_join(table, GoalQueryOracle(goal), strategy="lookahead-entropy")
        print(f"  {join_name:26s}  candidates={len(table):5d}  "
              f"questions={result.num_interactions:2d}  correct={result.matches_goal(goal)}")
        print(f"      inferred: {result.query.describe()}")
    print()

    print("Foreign keys rediscovered directly from the data (no user needed, but no")
    print("control over which join the user actually wants):")
    for dependency in foreign_key_candidates(instance):
        left, right = dependency.as_equality
        print(f"  {left} ⊆ {right}")


if __name__ == "__main__":
    main()
