"""Joining sets of pictures: the Set-card scenario of the demo (Figure 5).

JIM can infer joins between "different types of tagged media": here the items
are the cards of the game Set, described by four tags (number, symbol,
shading, color).  The attendee labels *pairs of cards* and JIM infers joins
such as "the pairs of pictures having the same color and the same shading".

Run with::

    python examples/setgame_pictures.py
"""

from __future__ import annotations

from repro import GoalQueryOracle, infer_join
from repro.datasets import setgame


def describe_card(card: tuple[str, ...]) -> str:
    number, symbol, shading, color = card
    return f"{number} {color} {shading} {symbol}(s)"


def main() -> None:
    # A 12-card deck keeps the demo readable; the pair space has 144 candidates.
    deck_size = 12
    table = setgame.pair_table(deck_size=deck_size, seed=7)
    print(f"Deck of {deck_size} Set cards → {len(table)} candidate pairs of pictures\n")

    for features in (("color",), ("color", "shading"), ("number", "symbol")):
        goal = setgame.same_feature_query(*features)
        result = infer_join(table, GoalQueryOracle(goal), strategy="lookahead-entropy")
        label = " and the same ".join(features)
        print(f'Goal: "pairs of pictures with the same {label}"')
        print(f"  inferred : {result.query.describe()}")
        print(f"  questions: {result.num_interactions} (out of {len(table)} pairs)")
        print(f"  correct  : {result.matches_goal(goal)}")
        print("  sample of questions asked:")
        for interaction in result.trace.interactions[:4]:
            row = table.row(interaction.tuple_id)
            left, right = row[:4], row[4:]
            print(
                f"    {describe_card(left)}  vs  {describe_card(right)}"
                f"  →  {interaction.label.value}"
            )
        print()

    # The full 81-card deck: 6561 pairs, still only a handful of questions.
    full_table = setgame.pair_table(deck_size=None, max_rows=1500, seed=3)
    goal = setgame.demo_goal_query()
    result = infer_join(full_table, GoalQueryOracle(goal), strategy="lookahead-entropy")
    print(
        f"Full deck (sampled to {len(full_table)} pairs): inferred "
        f"'{result.query.describe()}' in {result.num_interactions} questions"
    )


if __name__ == "__main__":
    main()
