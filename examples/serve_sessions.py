"""Serve interactive inference sessions over asyncio HTTP — streaming included.

Since the async serving layer, the JSON session protocol is served by an
:class:`~repro.service.aio.AsyncSessionService` on a single event loop: the
CPU-bound inference steps run on its bounded executor, so one process serves
many labelers concurrently without a thread per request.  This example maps
the protocol onto HTTP with nothing but ``asyncio.start_server``:

====== =============================== ==========================================
Method Path                            Meaning
====== =============================== ==========================================
GET    /tables                         registered tables (fingerprint -> name)
POST   /sessions                       create {table, mode, strategy, k}
GET    /sessions                       list live session descriptors
GET    /sessions/<id>                  describe one session
GET    /sessions/<id>/question         next protocol event
POST   /sessions/<id>/answer           {label, tuple_id?} -> applied + next event
POST   /sessions/<id>/save             session as a v2 persistence document
POST   /sessions/resume                {document} -> fresh session of saved kind
GET    /sessions/<id>/events           ND-JSON event stream (ends on close)
DELETE /sessions/<id>                  close the session
====== =============================== ==========================================

The streaming endpoint replays the session's full event history, then keeps
the connection open and writes one JSON line per live protocol event until
the session is closed (``Connection: close`` framing — the end of the stream
is the end of the body; see ``docs/protocol.md``).

Run a server::

    PYTHONPATH=src python examples/serve_sessions.py --serve --port 8080

Shard the sessions across worker *processes* — same endpoints, same wire
protocol, real multi-core parallelism (the
:class:`~repro.service.cluster.ClusterSessionService` tier slots in under
the async facade)::

    PYTHONPATH=src python examples/serve_sessions.py --serve --port 8080 --workers 4

Run the scripted end-to-end demo (default; used by CI): starts a server on an
ephemeral port and, over real HTTP, (1) drives one guided session — create,
subscribe to its event stream, answer, save mid-session, resume, converge —
checking the streamed events match the answers given, and (2) reproduces the
paper's crowdsourcing scenario: a top-k session whose batches are dispatched
to 5 simulated workers, each flipping 10% of its answers, with majority-vote
aggregation absorbing the noise::

    PYTHONPATH=src python examples/serve_sessions.py
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import re
import sys
from collections.abc import AsyncIterator

from repro import GoalQueryOracle, ReproError
from repro.datasets import flights_hotels
from repro.service import (
    AsyncSessionService,
    ClusterSessionService,
    CrowdDispatcher,
    event_to_wire,
    simulated_crowd,
)
from repro.service.service import SessionServiceError

_SESSION_PATH = re.compile(r"^/sessions/(?P<sid>[0-9a-f]+)(?P<rest>/\w+)?$")


class AsyncSessionApi:
    """Transport-free request handling: (method, path, body) -> (status, payload).

    The streaming endpoint is special-cased by :func:`handle_connection`;
    everything else goes through :meth:`handle` and returns one JSON object.
    """

    def __init__(self, service: AsyncSessionService) -> None:
        self.service = service
        self._names: dict[str, str] = {}

    async def register(self, name: str, table) -> str:
        """Register a table under a friendly name (and its fingerprint)."""
        fingerprint = await self.service.register_table(table)
        self._names[name] = fingerprint
        return fingerprint

    def _fingerprint(self, ref: str) -> str:
        return self._names.get(ref, ref)

    def stream_for(self, method: str, path: str) -> str | None:
        """The session id when the request addresses the event stream."""
        match = _SESSION_PATH.match(path)
        if method == "GET" and match is not None and match.group("rest") == "/events":
            return match.group("sid")
        return None

    async def handle(self, method: str, path: str, body: dict | None) -> tuple[int, dict]:
        try:
            return await self._route(method, path, body or {})
        except SessionServiceError as error:
            return 404, {"error": str(error)}
        except ReproError as error:
            return 400, {"error": str(error)}
        except (KeyError, TypeError, ValueError) as error:
            return 400, {"error": str(error)}

    async def _route(self, method: str, path: str, body: dict) -> tuple[int, dict]:
        service = self.service
        if method == "GET" and path == "/tables":
            return 200, {"tables": await service.tables(), "names": dict(self._names)}
        if path == "/sessions":
            if method == "GET":
                descriptors = []
                for sid in await service.session_ids():
                    try:
                        descriptors.append((await service.describe(sid)).as_dict())
                    except SessionServiceError:
                        continue  # closed between the snapshot and the describe
                return 200, {"sessions": descriptors}
            if method == "POST":
                descriptor = await service.create(
                    self._fingerprint(body["table"]),
                    mode=body.get("mode", "guided"),
                    strategy=body.get("strategy"),
                    k=body.get("k"),
                )
                return 201, descriptor.as_dict()
        if method == "POST" and path == "/sessions/resume":
            descriptor = await service.resume(body["document"])
            return 201, descriptor.as_dict()
        match = _SESSION_PATH.match(path)
        if match is None:
            return 404, {"error": f"no route for {method} {path}"}
        sid, rest = match.group("sid"), match.group("rest")
        if rest is None:
            if method == "GET":
                return 200, (await service.describe(sid)).as_dict()
            if method == "DELETE":
                return 200, (await service.close(sid)).as_dict()
        if method == "GET" and rest == "/question":
            return 200, event_to_wire(await service.next_question(sid))
        if method == "POST" and rest == "/answer":
            applied = await service.answer(sid, body["label"], tuple_id=body.get("tuple_id"))
            return 200, {
                "applied": event_to_wire(applied),
                "next": event_to_wire(await service.next_question(sid)),
            }
        if method == "POST" and rest == "/save":
            return 200, {"document": await service.save(sid)}
        return 404, {"error": f"no route for {method} {path}"}


# --------------------------------------------------------------------------- #
# Minimal HTTP/1.1 on asyncio streams (Connection: close per request)
# --------------------------------------------------------------------------- #
class _BadRequest(Exception):
    """A request the parser cannot make sense of (answered with a 400)."""


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict | None] | None:
    request_line = await reader.readline()
    if not request_line.strip():
        return None
    try:
        method, path, _version = request_line.decode("latin-1").split()
    except ValueError:
        return None
    content_length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                raise _BadRequest(f"malformed Content-Length: {value.strip()!r}") from None
            if content_length < 0:
                raise _BadRequest(f"malformed Content-Length: {content_length}")
    body: dict | None = None
    if content_length:
        raw = await reader.readexactly(content_length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except json.JSONDecodeError:
            body = None
    return method, path, body


def _response_head(status: int, extra: str = "") -> bytes:
    reason = {200: "OK", 201: "Created", 404: "Not Found", 400: "Bad Request"}.get(
        status, "OK"
    )
    return (
        f"HTTP/1.1 {status} {reason}\r\nConnection: close\r\n{extra}\r\n"
    ).encode("latin-1")


async def handle_connection(
    api: AsyncSessionApi, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    """Serve one request per connection; the events endpoint streams."""
    try:
        try:
            request = await _read_request(reader)
        except _BadRequest as error:
            data = json.dumps({"error": str(error)}).encode("utf-8")
            writer.write(
                _response_head(
                    400,
                    f"Content-Type: application/json\r\nContent-Length: {len(data)}\r\n",
                )
            )
            writer.write(data)
            await writer.drain()
            return
        if request is None:
            return
        method, path, body = request
        stream_sid = api.stream_for(method, path)
        if stream_sid is not None:
            # Check existence before committing to a 200 head, so an unknown
            # session gets the documented 404 rather than an empty stream.
            try:
                await api.service.describe(stream_sid)
            except SessionServiceError as error:
                data = json.dumps({"error": str(error)}).encode("utf-8")
                writer.write(
                    _response_head(
                        404,
                        f"Content-Type: application/json\r\nContent-Length: {len(data)}\r\n",
                    )
                )
                writer.write(data)
                await writer.drain()
                return
            writer.write(
                _response_head(200, "Content-Type: application/x-ndjson\r\n")
            )
            await writer.drain()
            try:
                async for wire in api.service.events(stream_sid):
                    writer.write((json.dumps(wire, sort_keys=True) + "\n").encode())
                    await writer.drain()
            except SessionServiceError:
                pass  # the session closed between the check and the subscribe
            return
        status, payload = await api.handle(method, path, body)
        data = json.dumps(payload, sort_keys=True).encode("utf-8")
        writer.write(
            _response_head(
                status,
                f"Content-Type: application/json\r\nContent-Length: {len(data)}\r\n",
            )
        )
        writer.write(data)
        await writer.drain()
    except (ConnectionResetError, asyncio.IncompleteReadError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def start_http_server(api: AsyncSessionApi, port: int) -> asyncio.Server:
    """An asyncio HTTP server speaking the session protocol (port 0 = ephemeral)."""
    return await asyncio.start_server(
        lambda reader, writer: handle_connection(api, reader, writer),
        "127.0.0.1",
        port,
    )


# --------------------------------------------------------------------------- #
# A tiny asyncio HTTP client for the scripted demo
# --------------------------------------------------------------------------- #
async def _request(
    port: int, method: str, path: str, body: dict | None = None
) -> dict:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        data = json.dumps(body).encode("utf-8") if body is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\nHost: localhost\r\n"
            f"Content-Length: {len(data)}\r\nConnection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + data)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        await writer.wait_closed()
    head, _, payload = raw.partition(b"\r\n\r\n")
    status = int(head.split(None, 2)[1])
    if status >= 400:
        raise RuntimeError(f"{method} {path} -> {status}: {payload.decode('utf-8')}")
    return json.loads(payload.decode("utf-8"))


async def _stream_lines(port: int, path: str) -> AsyncIterator[dict]:
    """Yield the ND-JSON lines of a streaming endpoint until the server closes."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n".encode()
        )
        await writer.drain()
        while True:  # skip response head
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
        while True:
            line = await reader.readline()
            if not line:
                return
            yield json.loads(line.decode("utf-8"))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


# --------------------------------------------------------------------------- #
# The scripted demo (CI path)
# --------------------------------------------------------------------------- #
async def scripted_session(port: int, service: AsyncSessionService) -> int:
    table = flights_hotels.figure1_table()
    goal = flights_hotels.query_q2()
    oracle = GoalQueryOracle(goal)

    print(f"tables: {(await _request(port, 'GET', '/tables'))['names']}")
    created = await _request(
        port, "POST", "/sessions", {"table": "flights", "mode": "guided"}
    )
    sid = created["session_id"]
    print(f"created guided session {sid[:8]}… over {created['table_name']!r}")

    # Subscribe to the session's event stream before answering anything.
    streamed: list[dict] = []

    async def stream_reader(session_id: str) -> None:
        async for wire in _stream_lines(port, f"/sessions/{session_id}/events"):
            streamed.append(wire)

    reader_task = asyncio.create_task(stream_reader(sid))

    # First sitting: two answers, then save and close (which ends the stream).
    for _ in range(2):
        question = await _request(port, "GET", f"/sessions/{sid}/question")
        label = oracle.label(table, question["tuple_id"]).value
        result = await _request(port, "POST", f"/sessions/{sid}/answer", {"label": label})
        applied = result["applied"]
        print(
            f"  Q{applied['step']}: tuple {applied['tuple_id']} -> {applied['label']} "
            f"(pruned {applied['pruned']}, {applied['informative_remaining']} informative left)"
        )
    document = (await _request(port, "POST", f"/sessions/{sid}/save"))["document"]
    await _request(port, "DELETE", f"/sessions/{sid}")
    await asyncio.wait_for(reader_task, timeout=10)
    applied_streamed = [w for w in streamed if w["type"] == "label_applied"]
    if len(applied_streamed) != 2:
        print(f"FAIL: stream saw {len(applied_streamed)} labels, expected 2")
        return 1
    print(
        f"event stream ended with the session: {len(streamed)} events "
        f"({len(applied_streamed)} labels) — saved mid-session, resuming…"
    )

    # Second sitting: resume and run to convergence.
    resumed = await _request(port, "POST", "/sessions/resume", {"document": document})
    sid = resumed["session_id"]
    assert resumed["mode"] == "guided" and resumed["num_labels"] == 2
    while True:
        event = await _request(port, "GET", f"/sessions/{sid}/question")
        if event["type"] == "converged":
            print(f"converged: {event['query']} after {event['step']} answers")
            inferred = event
            break
        label = oracle.label(table, event["tuple_id"]).value
        result = await _request(port, "POST", f"/sessions/{sid}/answer", {"label": label})
        applied = result["applied"]
        print(f"  Q{applied['step']}: tuple {applied['tuple_id']} -> {applied['label']}")
    await _request(port, "DELETE", f"/sessions/{sid}")

    expected = {frozenset(atom.attributes) for atom in goal}
    actual = {frozenset(pair) for pair in inferred["atoms"]}
    if actual != expected:
        print(f"FAIL: inferred {inferred['query']!r} does not match the goal")
        return 1
    print("ok: the HTTP-driven session inferred the goal query")

    # The crowdsourcing scenario: a top-k session whose batches go to 5
    # simulated workers (50ms mean latency, each answer flipped with 10%
    # probability) with majority-vote aggregation.
    descriptor = await service.create(table, mode="top-k", k=3)
    workers = simulated_crowd(
        goal, num_workers=5, error_rate=0.1, mean_latency=0.05,
        latency_jitter=0.02, seed=11,
    )
    dispatcher = CrowdDispatcher(service, workers, votes_per_question=3)
    report = await dispatcher.run(descriptor.session_id)
    await service.close(descriptor.session_id)
    print(
        f"crowd batch: {report.questions} questions × {dispatcher.votes_per_question} votes "
        f"= {report.votes} worker answers in {report.rounds} rounds "
        f"({report.contested} contested)"
    )
    errors = sum(worker.errors_made for worker in workers)
    crowd_atoms = {frozenset(pair) for pair in (report.atoms or ())}
    if not report.converged or crowd_atoms != expected:
        print(f"FAIL: crowd-dispatched session inferred {report.query!r}")
        return 1
    print(f"ok: majority vote absorbed {errors} noisy answer(s); crowd session inferred the goal query")
    return 0


async def _serve_forever(api: AsyncSessionApi, port: int) -> int:
    server = await start_http_server(api, port)
    host, bound_port = server.sockets[0].getsockname()[:2]
    print(f"serving inference sessions on http://{host}:{bound_port}/")
    try:
        async with server:
            await server.serve_forever()
    except (KeyboardInterrupt, asyncio.CancelledError):
        pass
    return 0


async def _main_async(serve: bool, port: int, workers: int) -> int:
    with contextlib.ExitStack() as stack:
        if workers:
            # The multi-process tier: same facade, same endpoints, the
            # CPU-bound inference sharded across worker processes.  One
            # executor thread per worker keeps every process busy.
            backing = stack.enter_context(ClusterSessionService(num_workers=workers))
            facade = AsyncSessionService(
                backing, max_sessions=1024, max_workers=max(4, workers)
            )
        else:
            facade = AsyncSessionService(max_sessions=1024)
        async with facade as service:
            api = AsyncSessionApi(service)
            await api.register("flights", flights_hotels.figure1_table())
            if serve:
                return await _serve_forever(api, port)
            server = await start_http_server(api, 0)
            bound_port = server.sockets[0].getsockname()[1]
            try:
                return await scripted_session(bound_port, service)
            finally:
                server.close()
                await server.wait_closed()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--serve", action="store_true", help="run a blocking server instead of the scripted demo"
    )
    parser.add_argument("--port", type=int, default=8080, help="port for --serve")
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard sessions across N worker processes (0 = in-process service)",
    )
    args = parser.parse_args(argv)
    return asyncio.run(_main_async(args.serve, args.port, args.workers))


if __name__ == "__main__":
    sys.exit(main())
