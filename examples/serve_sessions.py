"""Serve interactive inference sessions over HTTP — the JSON protocol demo.

The sans-IO redesign makes the inference loop a conversation of JSON events
(``question`` → ``label_applied`` → … → ``converged``).  This example maps
that conversation onto HTTP endpoints with nothing but the stdlib
``http.server``, fronted by a thread-safe
:class:`~repro.service.service.SessionService` so many labelers can work
concurrently:

====== =============================== ==========================================
Method Path                            Meaning
====== =============================== ==========================================
GET    /tables                         registered tables (fingerprint -> name)
POST   /sessions                       create {table, mode, strategy, k}
GET    /sessions                       list live session descriptors
GET    /sessions/<id>                  describe one session
GET    /sessions/<id>/question         next protocol event
POST   /sessions/<id>/answer           {label, tuple_id?} -> applied + next event
POST   /sessions/<id>/save             session as a v2 persistence document
POST   /sessions/resume                {document} -> fresh session of saved kind
DELETE /sessions/<id>                  close the session
====== =============================== ==========================================

Run a server::

    PYTHONPATH=src python examples/serve_sessions.py --serve --port 8080

Run the scripted end-to-end demo (default; used by CI): starts a server on an
ephemeral port, drives one guided session over real HTTP — create, answer,
save mid-session, resume, answer to convergence — and checks the inferred
query matches the goal::

    PYTHONPATH=src python examples/serve_sessions.py
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import threading
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro import GoalQueryOracle, ReproError, SessionService
from repro.datasets import flights_hotels
from repro.service import event_to_wire
from repro.service.service import SessionServiceError

_SESSION_PATH = re.compile(r"^/sessions/(?P<sid>[0-9a-f]+)(?P<rest>/\w+)?$")


class SessionApi:
    """Transport-free request handling: (method, path, body) -> (status, payload)."""

    def __init__(self, service: SessionService) -> None:
        self.service = service
        self._names: dict[str, str] = {}

    def register(self, name: str, table) -> str:
        """Register a table under a friendly name (and its fingerprint)."""
        fingerprint = self.service.register_table(table)
        self._names[name] = fingerprint
        return fingerprint

    def _fingerprint(self, ref: str) -> str:
        return self._names.get(ref, ref)

    def handle(self, method: str, path: str, body: Optional[dict]) -> tuple[int, dict]:
        try:
            return self._route(method, path, body or {})
        except SessionServiceError as error:
            return 404, {"error": str(error)}
        except ReproError as error:
            return 400, {"error": str(error)}
        except (KeyError, TypeError, ValueError) as error:
            return 400, {"error": str(error)}

    def _route(self, method: str, path: str, body: dict) -> tuple[int, dict]:
        if method == "GET" and path == "/tables":
            return 200, {"tables": self.service.tables(), "names": dict(self._names)}
        if path == "/sessions":
            if method == "GET":
                return 200, {
                    "sessions": [
                        self.service.describe(sid).as_dict()
                        for sid in self.service.session_ids()
                    ]
                }
            if method == "POST":
                descriptor = self.service.create(
                    self._fingerprint(body["table"]),
                    mode=body.get("mode", "guided"),
                    strategy=body.get("strategy"),
                    k=body.get("k"),
                )
                return 201, descriptor.as_dict()
        if method == "POST" and path == "/sessions/resume":
            descriptor = self.service.resume(body["document"])
            return 201, descriptor.as_dict()
        match = _SESSION_PATH.match(path)
        if match is None:
            return 404, {"error": f"no route for {method} {path}"}
        sid, rest = match.group("sid"), match.group("rest")
        if rest is None:
            if method == "GET":
                return 200, self.service.describe(sid).as_dict()
            if method == "DELETE":
                return 200, self.service.close(sid).as_dict()
        if method == "GET" and rest == "/question":
            return 200, event_to_wire(self.service.next_question(sid))
        if method == "POST" and rest == "/answer":
            applied = self.service.answer(sid, body["label"], tuple_id=body.get("tuple_id"))
            return 200, {
                "applied": event_to_wire(applied),
                "next": event_to_wire(self.service.next_question(sid)),
            }
        if method == "POST" and rest == "/save":
            return 200, {"document": self.service.save(sid)}
        return 404, {"error": f"no route for {method} {path}"}


def make_server(api: SessionApi, port: int) -> ThreadingHTTPServer:
    """An HTTP server speaking the session protocol (port 0 = ephemeral)."""

    class Handler(BaseHTTPRequestHandler):
        def _respond(self, body: Optional[dict]) -> None:
            status, payload = api.handle(self.command, self.path, body)
            data = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            self._respond(None)

        def do_DELETE(self) -> None:  # noqa: N802 - http.server API
            self._respond(None)

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b"{}"
            try:
                body = json.loads(raw.decode("utf-8") or "{}")
            except json.JSONDecodeError:
                self._respond(None)
                return
            self._respond(body)

        def log_message(self, format: str, *args: object) -> None:
            pass  # keep the scripted demo's stdout clean

    return ThreadingHTTPServer(("127.0.0.1", port), Handler)


def _request(base: str, method: str, path: str, body: Optional[dict] = None) -> dict:
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(base + path, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read().decode("utf-8"))


def scripted_session(base: str) -> int:
    """Drive one guided session over HTTP: answer, save, resume, converge."""
    table = flights_hotels.figure1_table()
    goal = flights_hotels.query_q2()
    oracle = GoalQueryOracle(goal)

    print(f"tables: {_request(base, 'GET', '/tables')['names']}")
    created = _request(base, "POST", "/sessions", {"table": "flights", "mode": "guided"})
    sid = created["session_id"]
    print(f"created guided session {sid[:8]}… over {created['table_name']!r}")

    # First sitting: two answers, then save and close.
    for _ in range(2):
        question = _request(base, "GET", f"/sessions/{sid}/question")
        label = oracle.label(table, question["tuple_id"]).value
        result = _request(
            base, "POST", f"/sessions/{sid}/answer", {"label": label}
        )
        applied = result["applied"]
        print(
            f"  Q{applied['step']}: tuple {applied['tuple_id']} -> {applied['label']} "
            f"(pruned {applied['pruned']}, {applied['informative_remaining']} informative left)"
        )
    document = _request(base, "POST", f"/sessions/{sid}/save")["document"]
    _request(base, "DELETE", f"/sessions/{sid}")
    print("saved mid-session and closed; resuming in a fresh session…")

    # Second sitting: resume and run to convergence.
    resumed = _request(base, "POST", "/sessions/resume", {"document": document})
    sid = resumed["session_id"]
    assert resumed["mode"] == "guided" and resumed["num_labels"] == 2
    while True:
        event = _request(base, "GET", f"/sessions/{sid}/question")
        if event["type"] == "converged":
            print(f"converged: {event['query']} after {event['step']} answers")
            inferred = event
            break
        label = oracle.label(table, event["tuple_id"]).value
        result = _request(base, "POST", f"/sessions/{sid}/answer", {"label": label})
        applied = result["applied"]
        print(f"  Q{applied['step']}: tuple {applied['tuple_id']} -> {applied['label']}")

    expected = {frozenset(atom.attributes) for atom in goal}
    actual = {frozenset(pair) for pair in inferred["atoms"]}
    if actual != expected:
        print(f"FAIL: inferred {inferred['query']!r} does not match the goal")
        return 1
    print("ok: the HTTP-driven session inferred the goal query")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--serve", action="store_true", help="run a blocking server instead of the scripted demo"
    )
    parser.add_argument("--port", type=int, default=8080, help="port for --serve")
    args = parser.parse_args(argv)

    service = SessionService()
    api = SessionApi(service)
    api.register("flights", flights_hotels.figure1_table())

    if args.serve:
        server = make_server(api, args.port)
        print(f"serving inference sessions on http://127.0.0.1:{server.server_address[1]}/")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
        return 0

    server = make_server(api, 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        return scripted_session(f"http://127.0.0.1:{server.server_address[1]}")
    finally:
        server.shutdown()
        server.server_close()


if __name__ == "__main__":
    sys.exit(main())
