"""Tests for the miniature TPC-H-like generator."""

from __future__ import annotations

import pytest

from repro import GoalQueryOracle, infer_join
from repro.datasets.tpch import (
    TPCH_FK_JOINS,
    TPCHConfig,
    fk_join_goal,
    generate_tpch,
    relations_of_join,
    tpch_candidate_table,
)
from repro.exceptions import ExperimentError


class TestConfig:
    def test_derived_counts(self):
        config = TPCHConfig(customers=4, orders_per_customer=3, lineitems_per_order=2)
        assert config.num_orders == 12
        assert config.num_lineitems == 24

    def test_invalid_counts_rejected(self):
        with pytest.raises(ExperimentError):
            TPCHConfig(customers=0)
        with pytest.raises(ExperimentError):
            TPCHConfig(orders_per_customer=0)


class TestGeneration:
    @pytest.fixture(scope="class")
    def instance(self):
        return generate_tpch(TPCHConfig(seed=1))

    def test_all_seven_relations_present(self, instance):
        assert set(instance.relation_names) == {
            "region",
            "nation",
            "customer",
            "supplier",
            "part",
            "orders",
            "lineitem",
        }

    def test_row_counts_match_config(self, instance):
        config = TPCHConfig(seed=1)
        assert len(instance.relation("customer")) == config.customers
        assert len(instance.relation("orders")) == config.num_orders
        assert len(instance.relation("lineitem")) == config.num_lineitems

    def test_foreign_keys_reference_existing_keys(self, instance):
        customers = {row[0] for row in instance.relation("customer")}
        order_custkeys = {row[1] for row in instance.relation("orders")}
        assert order_custkeys <= customers
        orders = {row[0] for row in instance.relation("orders")}
        lineitem_orderkeys = {row[0] for row in instance.relation("lineitem")}
        assert lineitem_orderkeys <= orders

    def test_generation_deterministic(self):
        assert (
            generate_tpch(TPCHConfig(seed=2)).relation("orders").rows
            == generate_tpch(TPCHConfig(seed=2)).relation("orders").rows
        )


class TestJoins:
    def test_fk_join_goal_atoms(self):
        goal = fk_join_goal("orders-customer")
        assert ("orders.o_custkey", "customer.c_custkey") in goal

    def test_three_way_join_has_two_atoms(self):
        assert len(fk_join_goal("customer-orders-lineitem")) == 2

    def test_unknown_join_rejected(self):
        with pytest.raises(ExperimentError):
            fk_join_goal("orders-part")
        with pytest.raises(ExperimentError):
            relations_of_join("orders-part")

    def test_relations_of_join(self):
        assert set(relations_of_join("customer-orders-lineitem")) == {
            "customer",
            "orders",
            "lineitem",
        }

    def test_candidate_table_respects_max_rows(self):
        table = tpch_candidate_table("customer-orders-lineitem", max_rows=300)
        assert len(table) == 300

    def test_goal_join_selects_expected_pairs(self):
        config = TPCHConfig(customers=5, orders_per_customer=2)
        table = tpch_candidate_table("orders-customer", config=config, max_rows=None)
        goal = fk_join_goal("orders-customer")
        # Every order matches exactly one customer.
        assert len(goal.evaluate(table)) == config.num_orders

    def test_every_named_join_is_well_formed(self):
        for name in TPCH_FK_JOINS:
            goal = fk_join_goal(name)
            assert len(goal) >= 1

    def test_inference_of_orders_customer_join(self):
        config = TPCHConfig(customers=6, orders_per_customer=2, seed=0)
        table = tpch_candidate_table("orders-customer", config=config, max_rows=None)
        goal = fk_join_goal("orders-customer")
        result = infer_join(table, GoalQueryOracle(goal), strategy="lookahead-entropy")
        assert result.converged
        assert result.matches_goal(goal)
        assert result.num_interactions <= 15
