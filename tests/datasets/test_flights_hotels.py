"""Tests for the Figure 1 flights & hotels dataset."""

from __future__ import annotations

import pytest

from repro.datasets import flights_hotels as fh


class TestBaseRelations:
    def test_flights_relation(self):
        flights = fh.flights_relation()
        assert flights.name == "Flights"
        assert flights.schema.attribute_names == ("From", "To", "Airline")
        assert len(flights) == 4

    def test_hotels_relation(self):
        hotels = fh.hotels_relation()
        assert hotels.schema.attribute_names == ("City", "Discount")
        assert len(hotels) == 3
        assert (None,) not in hotels.rows  # None only in the Discount column
        assert any(row[1] is None for row in hotels)

    def test_travel_instance(self):
        instance = fh.travel_instance()
        assert instance.relation_names == ("Flights", "Hotels")
        assert instance.cross_product_size() == 12


class TestFigure1Table:
    def test_rows_match_cross_product_order(self):
        table = fh.figure1_table()
        assert table.row(0) == ("Paris", "Lille", "AF", "NYC", "AA")
        assert table.row(11) == ("Paris", "NYC", "AF", "Lille", "AF")

    def test_provenance_recorded(self):
        table = fh.figure1_table()
        assert table.source_relations() == ("Flights", "Flights", "Flights", "Hotels", "Hotels")

    def test_paper_tuple_id_translation(self):
        assert fh.paper_tuple_id(1) == 0
        assert fh.paper_tuple_id(12) == 11

    def test_paper_tuple_id_out_of_range(self):
        with pytest.raises(ValueError):
            fh.paper_tuple_id(0)
        with pytest.raises(ValueError):
            fh.paper_tuple_id(13)

    def test_qualified_table_matches_flat_table_rows(self):
        flat = fh.figure1_table()
        qualified = fh.qualified_figure1_table()
        assert list(flat.rows) == list(qualified.rows)
        assert qualified.attribute_names[0] == "Flights.From"


class TestGoalQueries:
    def test_q1_and_q2_atoms(self):
        assert len(fh.query_q1()) == 1
        assert len(fh.query_q2()) == 2
        assert fh.query_q1() <= fh.query_q2()

    def test_qualified_queries_select_same_paper_tuples(self):
        flat = fh.figure1_table()
        qualified = fh.qualified_figure1_table()
        assert {t for t in fh.query_q2().evaluate(flat)} == {
            t for t in fh.qualified_query_q2().evaluate(qualified)
        }
        assert {t for t in fh.query_q1().evaluate(flat)} == {
            t for t in fh.qualified_query_q1().evaluate(qualified)
        }
