"""Tests for named workloads."""

from __future__ import annotations

import pytest

from repro import GoalQueryOracle, infer_join
from repro.datasets.synthetic import SyntheticConfig
from repro.datasets.workloads import (
    default_workload_suite,
    figure1_workload,
    setgame_workload,
    synthetic_workload,
    tpch_workload,
)


class TestWorkloadBuilders:
    def test_figure1_workload_goals(self):
        q1 = figure1_workload("q1")
        q2 = figure1_workload("Q2")
        assert q1.goal_size == 1
        assert q2.goal_size == 2
        assert q1.num_candidates == q2.num_candidates == 12

    def test_unknown_figure1_goal_rejected(self):
        with pytest.raises(ValueError):
            figure1_workload("q3")

    def test_setgame_workload(self):
        workload = setgame_workload(("color",), deck_size=6)
        assert workload.num_candidates == 36
        assert workload.goal_size == 1
        assert "color" in workload.name

    def test_synthetic_workload_name_encodes_parameters(self):
        workload = synthetic_workload(
            SyntheticConfig(tuples_per_relation=7, domain_size=3, seed=2), goal_atoms=2
        )
        assert "t7" in workload.name and "d3" in workload.name and "s2" in workload.name
        assert workload.goal_size == 2

    def test_tpch_workload(self):
        workload = tpch_workload("orders-customer")
        assert workload.name == "tpch-orders-customer"
        assert workload.goal_size == 1

    def test_goal_selectivity_between_zero_and_one(self):
        workload = figure1_workload("q2")
        assert 0.0 < workload.goal_selectivity() < 1.0


class TestDefaultSuite:
    def test_suite_is_varied_and_solvable(self):
        suite = default_workload_suite()
        assert len(suite) >= 5
        assert len({workload.name for workload in suite}) == len(suite)
        for workload in suite:
            result = infer_join(
                workload.table, GoalQueryOracle(workload.goal), strategy="lookahead-entropy"
            )
            assert result.converged
            assert result.matches_goal(workload.goal)
            assert result.num_interactions <= workload.num_candidates
