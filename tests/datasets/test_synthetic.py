"""Tests for the synthetic instance and goal-query generator."""

from __future__ import annotations

import pytest

from repro import AtomUniverse
from repro.datasets.synthetic import (
    SyntheticConfig,
    all_goal_queries,
    generate_candidate_table,
    generate_instance,
    planted_goal_instance,
    random_goal_query,
)
from repro.exceptions import ExperimentError


class TestConfig:
    def test_defaults_are_valid(self):
        config = SyntheticConfig()
        assert config.candidate_rows == config.tuples_per_relation**config.num_relations
        assert config.relation_names == ("R1", "R2")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_relations": 0},
            {"attributes_per_relation": 0},
            {"tuples_per_relation": 0},
            {"domain_size": 1},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ExperimentError):
            SyntheticConfig(**kwargs)


class TestGeneration:
    def test_instance_shape_matches_config(self):
        config = SyntheticConfig(num_relations=3, attributes_per_relation=2, tuples_per_relation=5)
        instance = generate_instance(config)
        assert instance.relation_names == ("R1", "R2", "R3")
        for relation in instance:
            assert relation.arity == 2
            assert len(relation) == 5

    def test_values_stay_in_domain(self):
        config = SyntheticConfig(domain_size=3, seed=5)
        instance = generate_instance(config)
        for relation in instance:
            for row in relation:
                assert all(0 <= value < 3 for value in row)

    def test_generation_is_deterministic(self):
        config = SyntheticConfig(seed=9)
        assert generate_instance(config).relation("R1").rows == generate_instance(config).relation("R1").rows

    def test_different_seeds_differ(self):
        first = generate_instance(SyntheticConfig(seed=1)).relation("R1").rows
        second = generate_instance(SyntheticConfig(seed=2)).relation("R1").rows
        assert first != second

    def test_candidate_table_size(self):
        config = SyntheticConfig(num_relations=2, tuples_per_relation=6)
        assert len(generate_candidate_table(config)) == 36

    def test_candidate_table_sampling(self):
        config = SyntheticConfig(num_relations=2, tuples_per_relation=20, max_candidate_rows=50)
        assert len(generate_candidate_table(config)) == 50


class TestGoalQueries:
    def test_random_goal_query_is_nontrivial(self):
        table = generate_candidate_table(SyntheticConfig(seed=4))
        goal = random_goal_query(table, 2, seed=4)
        selected = goal.evaluate(table)
        assert 0 < len(selected) < len(table)
        assert len(goal) == 2

    def test_random_goal_query_deterministic(self):
        table = generate_candidate_table(SyntheticConfig(seed=4))
        assert random_goal_query(table, 2, seed=7) == random_goal_query(table, 2, seed=7)

    def test_zero_atoms_rejected(self):
        table = generate_candidate_table(SyntheticConfig())
        with pytest.raises(ExperimentError):
            random_goal_query(table, 0)

    def test_too_many_atoms_rejected(self):
        table = generate_candidate_table(SyntheticConfig(attributes_per_relation=1))
        with pytest.raises(ExperimentError):
            random_goal_query(table, 50)

    def test_impossible_requirements_raise(self):
        # A huge domain makes multi-atom joins empty; requiring non-emptiness must fail.
        table = generate_candidate_table(
            SyntheticConfig(tuples_per_relation=3, domain_size=10_000, seed=0)
        )
        with pytest.raises(ExperimentError):
            random_goal_query(table, 3, seed=0, max_attempts=5)

    def test_planted_goal_instance(self):
        table, goal = planted_goal_instance(SyntheticConfig(seed=3), num_atoms=2)
        assert 0 < len(goal.evaluate(table)) < len(table)

    def test_all_goal_queries_counts_combinations(self):
        table = generate_candidate_table(
            SyntheticConfig(num_relations=2, attributes_per_relation=2, tuples_per_relation=3)
        )
        universe = AtomUniverse.from_table(table)
        assert len(all_goal_queries(table, 2, universe)) == 6  # C(4, 2)
