"""Tests for the Set-card (tagged pictures) dataset."""

from __future__ import annotations

import pytest

from repro import GoalQueryOracle, infer_join
from repro.datasets import setgame


class TestDeck:
    def test_full_deck_has_81_distinct_cards(self):
        deck = setgame.full_deck()
        assert len(deck) == setgame.FULL_DECK_SIZE == 81
        assert len(set(deck)) == 81

    def test_every_card_uses_valid_feature_values(self):
        for card in setgame.full_deck():
            for value, feature in zip(card, setgame.FEATURES, strict=True):
                assert value in setgame.FEATURE_VALUES[feature]

    def test_sampled_deck_is_reproducible(self):
        assert setgame.card_deck(10, seed=3) == setgame.card_deck(10, seed=3)
        assert setgame.card_deck(10, seed=3) != setgame.card_deck(10, seed=4)

    def test_oversized_deck_request_rejected(self):
        with pytest.raises(ValueError):
            setgame.card_deck(100)

    def test_cards_relation(self):
        relation = setgame.cards_relation("Left", setgame.card_deck(5))
        assert relation.schema.attribute_names == setgame.FEATURES
        assert len(relation) == 5


class TestPairTable:
    def test_pair_table_is_square_of_deck_size(self):
        table = setgame.pair_table(deck_size=7)
        assert len(table) == 49
        assert table.attribute_names[:4] == (
            "Left.number",
            "Left.symbol",
            "Left.shading",
            "Left.color",
        )

    def test_max_rows_sampling(self):
        table = setgame.pair_table(deck_size=9, max_rows=20)
        assert len(table) == 20

    def test_instance_has_left_and_right_copies(self):
        instance = setgame.setgame_instance(deck_size=6)
        assert instance.relation_names == ("Left", "Right")
        assert len(instance.relation("Left")) == len(instance.relation("Right")) == 6


class TestFeatureQueries:
    def test_same_feature_query_atoms(self):
        query = setgame.same_feature_query("color", "shading")
        assert len(query) == 2
        assert ("Left.color", "Right.color") in query

    def test_demo_goal_query_is_color_and_shading(self):
        assert setgame.demo_goal_query() == setgame.same_feature_query("color", "shading")

    def test_unknown_feature_rejected(self):
        with pytest.raises(ValueError):
            setgame.same_feature_query("size")

    def test_at_least_one_feature_required(self):
        with pytest.raises(ValueError):
            setgame.same_feature_query()

    def test_same_color_selects_a_third_of_pairs(self):
        table = setgame.pair_table(deck_size=None)  # the full 81x81 space
        query = setgame.same_feature_query("color")
        assert query.selectivity(table) == pytest.approx(1 / 3, abs=1e-9)

    def test_inference_of_the_demo_query(self):
        table = setgame.pair_table(deck_size=9, seed=2)
        goal = setgame.demo_goal_query()
        result = infer_join(table, GoalQueryOracle(goal), strategy="lookahead-entropy")
        assert result.converged
        assert result.matches_goal(goal)
        assert result.num_interactions < len(table)
