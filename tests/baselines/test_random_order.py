"""Tests for the unguided random-order labeling baseline."""

from __future__ import annotations

from repro import GoalQueryOracle, infer_join
from repro.baselines.random_order import RandomOrderBaseline


class TestRandomOrderBaseline:
    def test_converges_and_matches_goal(self, figure1_table, query_q2):
        result = RandomOrderBaseline(seed=0).run(figure1_table, GoalQueryOracle(query_q2))
        assert result.converged
        assert result.query.instance_equivalent(query_q2, figure1_table)
        assert 1 <= result.num_interactions <= 12

    def test_reproducible_for_a_seed(self, figure1_table, query_q2):
        first = RandomOrderBaseline(seed=4).run(figure1_table, GoalQueryOracle(query_q2))
        second = RandomOrderBaseline(seed=4).run(figure1_table, GoalQueryOracle(query_q2))
        assert first.num_interactions == second.num_interactions

    def test_informed_pruning_never_wastes_labels(self, figure1_table, query_q2):
        result = RandomOrderBaseline(seed=1, informed_pruning=True).run(
            figure1_table, GoalQueryOracle(query_q2)
        )
        assert result.wasted_interactions == 0

    def test_uninformed_user_can_waste_labels(self, figure1_table, query_q2):
        # Across a few seeds the unassisted user must waste at least one label
        # on an uninformative tuple somewhere (otherwise pruning would be useless).
        wasted = [
            RandomOrderBaseline(seed=seed).run(figure1_table, GoalQueryOracle(query_q2)).wasted_interactions
            for seed in range(6)
        ]
        assert any(count > 0 for count in wasted)

    def test_informed_pruning_needs_no_more_labels(self, figure1_table, query_q2):
        for seed in range(4):
            plain = RandomOrderBaseline(seed=seed).run(figure1_table, GoalQueryOracle(query_q2))
            informed = RandomOrderBaseline(seed=seed, informed_pruning=True).run(
                figure1_table, GoalQueryOracle(query_q2)
            )
            assert informed.num_interactions <= plain.num_interactions

    def test_max_interactions_cap(self, figure1_table, query_q2):
        result = RandomOrderBaseline(seed=0).run(
            figure1_table, GoalQueryOracle(query_q2), max_interactions=1
        )
        assert result.num_interactions == 1

    def test_guided_strategy_beats_or_ties_the_baseline_on_average(self, figure1_table, query_q2):
        guided = infer_join(figure1_table, GoalQueryOracle(query_q2), strategy="lookahead-entropy")
        baseline_mean = sum(
            RandomOrderBaseline(seed=seed).run(figure1_table, GoalQueryOracle(query_q2)).num_interactions
            for seed in range(5)
        ) / 5.0
        assert guided.num_interactions <= baseline_mean

    def test_as_dict(self, figure1_table, query_q1):
        payload = RandomOrderBaseline(seed=0).run(figure1_table, GoalQueryOracle(query_q1)).as_dict()
        assert {"query", "num_interactions", "converged", "wasted_interactions"} <= set(payload)
