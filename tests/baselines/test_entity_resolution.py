"""Tests for the pairwise crowdsourced-join baseline."""

from __future__ import annotations

import pytest

from repro import CandidateTable, GoalQueryOracle, JoinQuery, infer_join
from repro.baselines.entity_resolution import PairwiseCrowdJoin, pairwise_question_count
from repro.relational import DatabaseInstance, Relation


@pytest.fixture
def er_table() -> CandidateTable:
    """Pairs of records from two small 'sources' describing the same entities."""
    left = Relation.build("L", ["lid", "lname"], [(1, "ada"), (2, "bob"), (3, "cleo")])
    right = Relation.build("R", ["rid", "rname"], [(1, "ada"), (2, "bob"), (4, "dan")])
    return CandidateTable.cross_product(DatabaseInstance("er", [left, right]))


class TestPairwiseQuestionCount:
    def test_product_of_sizes(self):
        assert pairwise_question_count(10, 20) == 200

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            pairwise_question_count(-1, 5)


class TestPairwiseCrowdJoin:
    def test_asks_one_question_per_pair(self, er_table):
        goal = JoinQuery.of(("L.lname", "R.rname"))
        result = PairwiseCrowdJoin().run(er_table, GoalQueryOracle(goal))
        assert result.questions_asked == len(er_table)
        assert result.questions_saved_by_transitivity == 0

    def test_matching_pairs_equal_goal_selection(self, er_table):
        goal = JoinQuery.of(("L.lname", "R.rname"))
        result = PairwiseCrowdJoin().run(er_table, GoalQueryOracle(goal))
        assert result.matching_pairs == goal.evaluate(er_table)

    def test_transitivity_saves_questions_when_entities_repeat(self):
        # Duplicate entities on both sides let the transitive closure answer
        # some pairs without asking.
        left = Relation.build("L", ["lname"], [("ada",), ("ada",), ("bob",)])
        right = Relation.build("R", ["rname"], [("ada",), ("bob",), ("bob",)])
        table = CandidateTable.cross_product(DatabaseInstance("er", [left, right]))
        goal = JoinQuery.of(("L.lname", "R.rname"))
        plain = PairwiseCrowdJoin().run(table, GoalQueryOracle(goal))
        transitive = PairwiseCrowdJoin(use_transitivity=True).run(
            table,
            GoalQueryOracle(goal),
            left_key_attributes=("L.lname",),
            right_key_attributes=("R.rname",),
        )
        assert transitive.matching_pairs == plain.matching_pairs
        assert transitive.questions_saved_by_transitivity > 0
        assert transitive.questions_asked < plain.questions_asked
        assert transitive.total_pairs == len(table)

    def test_jim_needs_far_fewer_questions(self, er_table):
        goal = JoinQuery.of(("L.lname", "R.rname"))
        crowd = PairwiseCrowdJoin().run(er_table, GoalQueryOracle(goal))
        jim = infer_join(er_table, GoalQueryOracle(goal), strategy="lookahead-entropy")
        assert jim.num_interactions < crowd.questions_asked
        assert jim.matches_goal(goal)

    def test_as_dict(self, er_table):
        goal = JoinQuery.of(("L.lid", "R.rid"))
        payload = PairwiseCrowdJoin().run(er_table, GoalQueryOracle(goal)).as_dict()
        assert payload["questions_asked"] == len(er_table)
