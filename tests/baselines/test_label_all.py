"""Tests for the label-everything baseline."""

from __future__ import annotations

from repro import GoalQueryOracle, infer_join
from repro.baselines.label_all import exhaustive_inference, label_all_interactions


class TestLabelAll:
    def test_interaction_count_equals_table_size(self, figure1_table):
        assert label_all_interactions(figure1_table) == 12

    def test_exhaustive_inference_recovers_q2(self, figure1_table, query_q2):
        result = exhaustive_inference(figure1_table, GoalQueryOracle(query_q2))
        assert result.converged
        assert result.num_interactions == 12
        assert result.query.instance_equivalent(query_q2, figure1_table)

    def test_exhaustive_inference_recovers_q1(self, figure1_table, query_q1):
        result = exhaustive_inference(figure1_table, GoalQueryOracle(query_q1))
        assert result.query.instance_equivalent(query_q1, figure1_table)

    def test_guided_inference_is_never_more_expensive(self, figure1_table, query_q2):
        exhaustive = exhaustive_inference(figure1_table, GoalQueryOracle(query_q2))
        guided = infer_join(figure1_table, GoalQueryOracle(query_q2), strategy="lookahead-entropy")
        assert guided.num_interactions <= exhaustive.num_interactions
        assert guided.query.instance_equivalent(exhaustive.query, figure1_table)

    def test_as_dict(self, figure1_table, query_q1):
        payload = exhaustive_inference(figure1_table, GoalQueryOracle(query_q1)).as_dict()
        assert payload["num_interactions"] == 12
        assert payload["converged"] is True
