"""Tests for ranked foreign-key discovery."""

from __future__ import annotations

from repro.datasets.tpch import TPCHConfig, generate_tpch
from repro.relational.integrity import (
    RankedForeignKey,
    attribute_name_similarity,
    ranked_foreign_keys,
)


class TestNameSimilarity:
    def test_identical_names(self):
        assert attribute_name_similarity("custkey", "custkey") == 1.0

    def test_prefixed_tpch_names(self):
        assert attribute_name_similarity("o_custkey", "c_custkey") == 1.0
        assert attribute_name_similarity("l_orderkey", "o_orderkey") == 1.0

    def test_unrelated_names_score_low(self):
        assert attribute_name_similarity("o_totalprice", "c_custkey") < 0.6

    def test_long_prefixes_are_not_stripped(self):
        # Only short (≤2 character) prefixes are treated as relation markers.
        assert attribute_name_similarity("orders_custkey", "c_custkey") < 1.0


class TestRankedForeignKeys:
    def test_classic_fks_rank_at_the_top(self):
        ranked = ranked_foreign_keys(generate_tpch(TPCHConfig(seed=1)), min_score=0.6)
        pairs = [candidate.dependency.as_equality for candidate in ranked]
        assert ("orders.o_custkey", "customer.c_custkey") in pairs
        assert ("lineitem.l_orderkey", "orders.o_orderkey") in pairs
        assert ("nation.n_regionkey", "region.r_regionkey") in pairs

    def test_threshold_filters_chance_inclusions(self):
        instance = generate_tpch(TPCHConfig(seed=1))
        unfiltered = ranked_foreign_keys(instance, min_score=-10.0)
        filtered = ranked_foreign_keys(instance, min_score=0.6)
        assert len(filtered) < len(unfiltered)
        assert all(candidate.score >= 0.6 for candidate in filtered)

    def test_key_to_key_inclusions_are_penalised(self):
        instance = generate_tpch(TPCHConfig(seed=1))
        ranked = {c.dependency.as_equality: c for c in ranked_foreign_keys(instance, min_score=-10.0)}
        key_to_key = ranked.get(("region.r_regionkey", "nation.n_nationkey"))
        real_fk = ranked[("nation.n_regionkey", "region.r_regionkey")]
        assert real_fk.score > 0.5
        if key_to_key is not None:
            assert key_to_key.score < real_fk.score

    def test_results_sorted_by_score(self):
        ranked = ranked_foreign_keys(generate_tpch(TPCHConfig(seed=0)), min_score=-10.0)
        scores = [candidate.score for candidate in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_dataclass_shape(self):
        ranked = ranked_foreign_keys(generate_tpch(TPCHConfig(seed=0)), min_score=0.6)
        assert ranked and isinstance(ranked[0], RankedForeignKey)
        assert 0.0 <= ranked[0].name_similarity <= 1.0
