"""Tests for key and inclusion-dependency discovery."""

from __future__ import annotations

import pytest

from repro.datasets.tpch import generate_tpch
from repro.relational.instance import DatabaseInstance
from repro.relational.integrity import (
    InclusionDependency,
    candidate_keys,
    foreign_key_candidates,
    join_goal_pairs,
    unary_inclusion_dependencies,
)
from repro.relational.relation import Relation


class TestCandidateKeys:
    def test_unique_column_is_a_key(self):
        relation = Relation.build("R", ["id", "name"], [(1, "a"), (2, "a")])
        assert candidate_keys(relation) == ["id"]

    def test_duplicate_values_disqualify(self):
        relation = Relation.build("R", ["x"], [(1,), (1,)])
        assert candidate_keys(relation) == []

    def test_null_values_disqualify(self):
        relation = Relation.build("R", ["x"], [(1,), (None,)])
        assert candidate_keys(relation) == []

    def test_empty_relation_has_no_keys(self):
        relation = Relation.build("R", ["x"], [], data_types=None) if False else Relation.build("R", ["x"], [(1,)])
        empty = relation.select(lambda row: False)
        assert candidate_keys(empty) == []


class TestInclusionDependencies:
    @pytest.fixture
    def instance(self, people_pets_instance) -> DatabaseInstance:
        return people_pets_instance

    def test_fk_column_included_in_key_column(self, instance):
        dependencies = unary_inclusion_dependencies(instance)
        assert (
            InclusionDependency("pets", "owner", "people", "pid") in dependencies
        )

    def test_incompatible_types_skipped(self, instance):
        dependencies = unary_inclusion_dependencies(instance)
        assert all(
            not (dep.dependent_attribute == "animal" and dep.referenced_attribute == "pid")
            for dep in dependencies
        )

    def test_min_overlap_relaxation(self):
        left = Relation.build("L", ["x"], [(1,), (2,), (9,)])
        right = Relation.build("R", ["y"], [(1,), (2,), (3,)])
        instance = DatabaseInstance("db", [left, right])
        strict = unary_inclusion_dependencies(instance)
        relaxed = unary_inclusion_dependencies(instance, min_overlap=0.6)
        assert all(dep.dependent_relation != "L" for dep in strict)
        assert any(
            dep.dependent_relation == "L" and dep.referenced_relation == "R" for dep in relaxed
        )

    def test_invalid_overlap_rejected(self, instance):
        with pytest.raises(ValueError):
            unary_inclusion_dependencies(instance, min_overlap=0.0)

    def test_foreign_key_candidates_require_key_target(self, instance):
        fks = foreign_key_candidates(instance)
        assert InclusionDependency("pets", "owner", "people", "pid") in fks
        assert all(dep.referenced_attribute in {"pid", "name", "city", "animal"} for dep in fks)

    def test_join_goal_pairs_deduplicates(self):
        deps = [
            InclusionDependency("A", "x", "B", "y"),
            InclusionDependency("B", "y", "A", "x"),
        ]
        pairs = join_goal_pairs(deps)
        assert len(pairs) == 1

    def test_join_goal_pairs_limit(self):
        deps = [
            InclusionDependency("A", "x", "B", "y"),
            InclusionDependency("A", "z", "B", "y"),
        ]
        assert len(join_goal_pairs(deps, limit=1)) == 1


class TestTPCHForeignKeys:
    def test_known_fks_are_discovered(self):
        instance = generate_tpch()
        fks = foreign_key_candidates(instance)
        pairs = {dep.as_equality for dep in fks}
        assert ("orders.o_custkey", "customer.c_custkey") in pairs
        assert ("lineitem.l_orderkey", "orders.o_orderkey") in pairs
        assert ("nation.n_regionkey", "region.r_regionkey") in pairs
