"""Tests for candidate tables (denormalised tuple spaces)."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.exceptions import CandidateTableError, UnknownAttributeError
from repro.relational.candidate import (
    CandidateAttribute,
    CandidateTable,
    candidate_table_to_relation,
    denormalize,
)
from repro.relational.relation import Relation
from repro.relational.types import DataType


class TestFromRows:
    def test_infers_column_types(self):
        table = CandidateTable.from_rows(["a", "b"], [(1, "x"), (2, "y")])
        assert table.attribute("a").data_type is DataType.INTEGER
        assert table.attribute("b").data_type is DataType.TEXT

    def test_source_relations_recorded(self):
        table = CandidateTable.from_rows(
            ["a", "b"], [(1, 2)], source_relations=["R", "S"]
        )
        assert table.source_relations() == ("R", "S")
        assert table.has_provenance()

    def test_source_relations_length_checked(self):
        with pytest.raises(CandidateTableError):
            CandidateTable.from_rows(["a", "b"], [(1, 2)], source_relations=["R"])

    def test_duplicate_attribute_names_rejected(self):
        with pytest.raises(CandidateTableError):
            CandidateTable.from_rows(["a", "a"], [(1, 2)])

    def test_row_arity_validated(self):
        with pytest.raises(CandidateTableError):
            CandidateTable.from_rows(["a", "b"], [(1,)])

    def test_empty_attribute_list_rejected(self):
        with pytest.raises(CandidateTableError):
            CandidateTable([], [])

    def test_zero_row_table_defaults_to_text_types(self):
        table = CandidateTable.from_rows(["a", "b"], [])
        assert table.attribute("a").data_type is DataType.TEXT
        assert table.attribute("b").data_type is DataType.TEXT


class TestFromRelation:
    def test_preserves_rows_and_names(self):
        relation = Relation.build("flat", ["x", "y"], [(1, 2), (3, 4)])
        table = CandidateTable.from_relation(relation)
        assert table.attribute_names == ("x", "y")
        assert table.rows == ((1, 2), (3, 4))
        assert not table.has_provenance()


class TestCrossProduct:
    def test_full_cross_product(self, people_pets_instance):
        table = CandidateTable.cross_product(people_pets_instance)
        assert len(table) == 9
        assert table.attribute_names[:3] == ("people.pid", "people.name", "people.city")
        assert table.has_provenance()

    def test_rows_follow_itertools_product_order(self, people_pets_instance):
        table = CandidateTable.cross_product(people_pets_instance)
        people = people_pets_instance.relation("people").rows
        pets = people_pets_instance.relation("pets").rows
        expected = [tuple(a + b) for a, b in itertools.product(people, pets)]
        assert list(table.rows) == expected

    def test_relation_subset_and_order(self, people_pets_instance):
        table = CandidateTable.cross_product(people_pets_instance, relation_names=["pets"])
        assert table.attribute_names == ("pets.owner", "pets.animal")
        assert len(table) == 3

    def test_sampling_caps_rows(self, people_pets_instance):
        table = CandidateTable.cross_product(
            people_pets_instance, max_rows=4, rng=random.Random(1)
        )
        assert len(table) == 4

    def test_sampled_rows_are_real_combinations(self, people_pets_instance):
        full = CandidateTable.cross_product(people_pets_instance)
        sampled = CandidateTable.cross_product(
            people_pets_instance, max_rows=5, rng=random.Random(3)
        )
        assert set(sampled.rows) <= set(full.rows)

    def test_sampling_is_reproducible(self, people_pets_instance):
        first = CandidateTable.cross_product(
            people_pets_instance, max_rows=4, rng=random.Random(7)
        )
        second = CandidateTable.cross_product(
            people_pets_instance, max_rows=4, rng=random.Random(7)
        )
        assert first.rows == second.rows

    def test_empty_relation_gives_empty_product(self):
        from repro.relational.instance import DatabaseInstance

        empty = Relation.build("E", ["x"], [])
        other = Relation.build("O", ["y"], [(1,)])
        table = CandidateTable.cross_product(DatabaseInstance("db", [empty, other]))
        assert len(table) == 0

    def test_no_relations_rejected(self, people_pets_instance):
        with pytest.raises(CandidateTableError):
            CandidateTable.cross_product(people_pets_instance, relation_names=[])

    def test_denormalize_shorthand(self, people_pets_instance):
        assert len(denormalize(people_pets_instance)) == 9


class TestAccessors:
    @pytest.fixture
    def table(self):
        return CandidateTable.from_rows(["a", "b"], [(1, 2), (3, 4)])

    def test_value_and_row(self, table):
        assert table.value(1, "b") == 4
        assert table.row(0) == (1, 2)

    def test_unknown_attribute(self, table):
        with pytest.raises(UnknownAttributeError):
            table.position_of("zzz")

    def test_unknown_tuple_id(self, table):
        with pytest.raises(CandidateTableError):
            table.row(99)

    def test_column(self, table):
        assert table.column("a") == [1, 3]

    def test_as_dicts(self, table):
        assert table.as_dicts()[1] == {"a": 3, "b": 4}

    def test_subset_renumbers_tuples(self, table):
        subset = table.subset([1])
        assert len(subset) == 1
        assert subset.row(0) == (3, 4)

    def test_tuple_ids(self, table):
        assert list(table.tuple_ids) == [0, 1]


class TestFactorizedCrossProduct:
    def test_unsampled_product_is_not_materialized(self, people_pets_instance):
        table = CandidateTable.cross_product(people_pets_instance)
        assert table.factorization() is not None
        assert not table.is_materialized()
        assert len(table) == 9  # O(1), no rows built

    def test_row_access_decodes_without_materializing(self, people_pets_instance):
        table = CandidateTable.cross_product(people_pets_instance)
        people = people_pets_instance.relation("people").rows
        pets = people_pets_instance.relation("pets").rows
        assert table.row(4) == tuple(people[1]) + tuple(pets[1])
        assert table.value(4, "pets.animal") == pets[1][1]
        assert not table.is_materialized()

    def test_column_uses_tile_repeat_without_materializing(self, people_pets_instance):
        table = CandidateTable.cross_product(people_pets_instance)
        expected = [row[0] for row in people_pets_instance.relation("pets").rows] * 3
        assert table.column("pets.owner") == expected
        assert not table.is_materialized()

    def test_rows_property_materializes_lazily_and_caches(self, people_pets_instance):
        table = CandidateTable.cross_product(people_pets_instance)
        first = table.rows
        assert table.is_materialized()
        assert table.rows is first

    def test_flat_and_sampled_tables_have_no_factorization(self, people_pets_instance):
        flat = CandidateTable.from_rows(["a", "b"], [(1, 2)])
        assert flat.factorization() is None
        sampled = CandidateTable.cross_product(
            people_pets_instance, max_rows=4, rng=random.Random(1)
        )
        assert sampled.factorization() is None

    def test_fingerprint_is_memoised_and_matches_flat_equivalent(self, people_pets_instance):
        table = CandidateTable.cross_product(people_pets_instance)
        flat = CandidateTable(table.attributes, list(table), name=table.name)
        assert table.fingerprint() == flat.fingerprint()
        assert table.fingerprint() is table.fingerprint()

    def test_equality_codes_follow_equality_semantics(self):
        table = CandidateTable.from_rows(
            ["a", "b"], [(1, 1.0), (2, 3.0), (None, None)], name="codes"
        )
        left, right = table.equality_codes([0, 1])
        assert left[0] == right[0]  # 1 == 1.0 shares a code
        assert left[1] != right[1]  # 2 != 3.0
        assert left[2] < 0 and right[2] < 0  # None never matches anything

    def test_equality_codes_do_not_materialize_factorized_tables(self, people_pets_instance):
        table = CandidateTable.cross_product(people_pets_instance)
        codes = table.equality_codes()
        assert all(len(column) == len(table) for column in codes)
        assert not table.is_materialized()

    def test_unknown_tuple_id_raises_without_materializing(self, people_pets_instance):
        table = CandidateTable.cross_product(people_pets_instance)
        with pytest.raises(CandidateTableError):
            table.row(99)
        assert not table.is_materialized()


class TestConversion:
    def test_candidate_table_to_relation_replaces_dots(self, people_pets_instance):
        table = CandidateTable.cross_product(people_pets_instance)
        relation = candidate_table_to_relation(table)
        assert "people_pid" in relation.schema.attribute_names
        assert len(relation) == len(table)

    def test_attribute_dataclass(self):
        attr = CandidateAttribute("x", DataType.INTEGER, "R")
        assert str(attr) == "x"
