"""Tests for attributes, relation schemas and database schemas."""

from __future__ import annotations

import pytest

from repro.exceptions import SchemaError, UnknownAttributeError, UnknownRelationError
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema
from repro.relational.types import DataType


class TestAttribute:
    def test_qualified_name_with_relation(self):
        attr = Attribute("City", DataType.TEXT, relation="Hotels")
        assert attr.qualified_name == "Hotels.City"

    def test_qualified_name_without_relation(self):
        assert Attribute("City").qualified_name == "City"

    def test_short_name_strips_qualification(self):
        assert Attribute("Hotels.City").short_name == "City"

    def test_qualify_binds_relation(self):
        attr = Attribute("City", DataType.TEXT).qualify("Hotels")
        assert attr.relation == "Hotels"
        assert attr.qualified_name == "Hotels.City"

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")


class TestRelationSchema:
    def test_attributes_are_bound_to_the_relation(self):
        schema = RelationSchema("Hotels", [Attribute("City"), Attribute("Discount")])
        assert schema.qualified_names == ("Hotels.City", "Hotels.Discount")

    def test_from_names_builds_uniform_schema(self):
        schema = RelationSchema.from_names("R", ["a", "b", "c"])
        assert schema.arity == 3
        assert schema.attribute_names == ("a", "b", "c")

    def test_duplicate_attribute_names_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [Attribute("a"), Attribute("a")])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [])

    def test_position_of_plain_and_qualified(self):
        schema = RelationSchema.from_names("R", ["a", "b"])
        assert schema.position_of("b") == 1
        assert schema.position_of("R.b") == 1

    def test_position_of_wrong_relation_raises(self):
        schema = RelationSchema.from_names("R", ["a"])
        with pytest.raises(UnknownAttributeError):
            schema.position_of("S.a")

    def test_unknown_attribute_raises(self):
        schema = RelationSchema.from_names("R", ["a"])
        with pytest.raises(UnknownAttributeError):
            schema.position_of("z")

    def test_contains(self):
        schema = RelationSchema.from_names("R", ["a"])
        assert "a" in schema
        assert "z" not in schema

    def test_equality_and_hash(self):
        left = RelationSchema.from_names("R", ["a", "b"])
        right = RelationSchema.from_names("R", ["a", "b"])
        assert left == right
        assert hash(left) == hash(right)

    def test_iteration_order(self):
        schema = RelationSchema.from_names("R", ["a", "b"])
        assert [attr.short_name for attr in schema] == ["a", "b"]


class TestDatabaseSchema:
    def test_of_registers_relations_in_order(self):
        database = DatabaseSchema.of(
            RelationSchema.from_names("A", ["x"]),
            RelationSchema.from_names("B", ["y"]),
        )
        assert database.relation_names == ("A", "B")
        assert len(database) == 2

    def test_duplicate_relation_rejected(self):
        database = DatabaseSchema.of(RelationSchema.from_names("A", ["x"]))
        with pytest.raises(SchemaError):
            database.add(RelationSchema.from_names("A", ["y"]))

    def test_unknown_relation_raises(self):
        database = DatabaseSchema()
        with pytest.raises(UnknownRelationError):
            database.relation("missing")

    def test_contains_and_iter(self):
        schema = RelationSchema.from_names("A", ["x"])
        database = DatabaseSchema.of(schema)
        assert "A" in database
        assert list(database) == [schema]
