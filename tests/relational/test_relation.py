"""Tests for in-memory relations."""

from __future__ import annotations

import pytest

from repro.exceptions import SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema
from repro.relational.types import DataType


@pytest.fixture
def cities() -> Relation:
    return Relation.build(
        "cities",
        ["name", "population", "country"],
        [
            ("Paris", 2_100_000, "FR"),
            ("Lille", 230_000, "FR"),
            ("NYC", 8_400_000, "US"),
        ],
    )


class TestConstruction:
    def test_build_infers_column_types(self, cities):
        types = [attr.data_type for attr in cities.schema.attributes]
        assert types == [DataType.TEXT, DataType.INTEGER, DataType.TEXT]

    def test_build_with_explicit_types(self):
        relation = Relation.build(
            "R", ["a"], [(1,)], data_types=[DataType.FLOAT]
        )
        assert relation.schema.attributes[0].data_type is DataType.FLOAT

    def test_build_rejects_wrong_arity(self):
        with pytest.raises(SchemaError):
            Relation.build("R", ["a", "b"], [(1,)])

    def test_build_rejects_mismatched_type_list(self):
        with pytest.raises(SchemaError):
            Relation.build("R", ["a"], [(1,)], data_types=[DataType.INTEGER, DataType.TEXT])

    def test_insert_validates_arity(self, cities):
        with pytest.raises(SchemaError):
            cities.insert(("Toulouse",))

    def test_extend_appends_rows(self, cities):
        cities.extend([("Lyon", 520_000, "FR")])
        assert len(cities) == 4


class TestOperations:
    def test_column_returns_values_in_order(self, cities):
        assert cities.column("name") == ["Paris", "Lille", "NYC"]

    def test_project_keeps_selected_attributes(self, cities):
        projected = cities.project(["name", "country"])
        assert projected.schema.attribute_names == ("name", "country")
        assert projected.rows[0] == ("Paris", "FR")

    def test_select_filters_rows(self, cities):
        french = cities.select(lambda row: row[2] == "FR")
        assert len(french) == 2

    def test_distinct_removes_duplicates(self):
        relation = Relation.build("R", ["a"], [(1,), (1,), (2,)])
        assert len(relation.distinct()) == 2

    def test_distinct_preserves_first_occurrence_order(self):
        relation = Relation.build("R", ["a"], [(2,), (1,), (2,)])
        assert [row[0] for row in relation.distinct()] == [2, 1]

    def test_rename_changes_relation_and_qualified_names(self, cities):
        renamed = cities.rename("towns")
        assert renamed.name == "towns"
        assert renamed.schema.qualified_names[0] == "towns.name"
        assert renamed.rows == cities.rows

    def test_as_dicts(self, cities):
        first = cities.as_dicts()[0]
        assert first == {"name": "Paris", "population": 2_100_000, "country": "FR"}

    def test_equality(self):
        left = Relation.build("R", ["a"], [(1,)])
        right = Relation(RelationSchema.from_names("R", ["a"]), [(1,)])
        # Schemas differ in data type (inferred INTEGER vs default TEXT).
        assert left != right
        assert left == Relation.build("R", ["a"], [(1,)])

    def test_iteration_and_len(self, cities):
        assert len(list(cities)) == len(cities) == 3
