"""Tests for database instances."""

from __future__ import annotations

import pytest

from repro.exceptions import SchemaError, UnknownRelationError
from repro.relational.instance import DatabaseInstance
from repro.relational.relation import Relation


class TestDatabaseInstance:
    def test_relations_in_insertion_order(self, people_pets_instance):
        assert people_pets_instance.relation_names == ("people", "pets")

    def test_lookup_by_name(self, people_pets_instance):
        assert people_pets_instance.relation("pets").name == "pets"

    def test_unknown_relation_raises(self, people_pets_instance):
        with pytest.raises(UnknownRelationError):
            people_pets_instance.relation("plants")

    def test_duplicate_relation_rejected(self, people_pets_instance):
        with pytest.raises(SchemaError):
            people_pets_instance.add(Relation.build("people", ["x"], [(1,)]))

    def test_schema_reflects_relations(self, people_pets_instance):
        schema = people_pets_instance.schema
        assert schema.relation_names == ("people", "pets")
        assert schema.relation("people").arity == 3

    def test_subset_preserves_order_given(self, people_pets_instance):
        subset = people_pets_instance.subset(["pets", "people"])
        assert subset.relation_names == ("pets", "people")

    def test_total_rows(self, people_pets_instance):
        assert people_pets_instance.total_rows() == 6

    def test_cross_product_size(self, people_pets_instance):
        assert people_pets_instance.cross_product_size() == 9
        assert people_pets_instance.cross_product_size(["people"]) == 3

    def test_summary(self, people_pets_instance):
        assert people_pets_instance.summary() == {"people": 3, "pets": 3}

    def test_contains_iter_len(self, people_pets_instance):
        assert "people" in people_pets_instance
        assert "plants" not in people_pets_instance
        assert len(people_pets_instance) == 2
        assert [relation.name for relation in people_pets_instance] == ["people", "pets"]

    def test_empty_instance(self):
        empty = DatabaseInstance("empty")
        assert len(empty) == 0
        assert empty.total_rows() == 0
