"""Tests for CSV import/export of relations and candidate tables."""

from __future__ import annotations

import datetime

import pytest

from repro.exceptions import SchemaError
from repro.relational.candidate import CandidateTable
from repro.relational.csv_io import (
    read_candidate_table_csv,
    read_relation_csv,
    read_relation_csv_text,
    write_candidate_table_csv,
    write_relation_csv,
)
from repro.relational.relation import Relation
from repro.relational.types import DataType


class TestReadRelation:
    def test_reads_header_and_rows(self):
        relation = read_relation_csv_text("a,b\n1,x\n2,y\n", name="R")
        assert relation.schema.attribute_names == ("a", "b")
        assert relation.rows == ((1, "x"), (2, "y"))

    def test_detects_types_per_column(self):
        relation = read_relation_csv_text("k,price,day\n1,2.5,2014-09-01\n", name="R")
        types = [attr.data_type for attr in relation.schema.attributes]
        assert types == [DataType.INTEGER, DataType.FLOAT, DataType.DATE]
        assert relation.rows[0][2] == datetime.date(2014, 9, 1)

    def test_null_token_becomes_none(self):
        relation = read_relation_csv_text("a,b\nx,\n", name="R")
        assert relation.rows[0] == ("x", None)

    def test_blank_lines_skipped(self):
        relation = read_relation_csv_text("a\n1\n\n2\n", name="R")
        assert len(relation) == 2

    def test_empty_text_raises(self):
        with pytest.raises(SchemaError):
            read_relation_csv_text("", name="R")

    def test_ragged_row_raises(self):
        with pytest.raises(SchemaError):
            read_relation_csv_text("a,b\n1\n", name="R")


class TestRoundTrips:
    def test_relation_roundtrip(self, tmp_path):
        original = Relation.build(
            "cities", ["name", "pop"], [("Paris", 2100000), ("Lille", 230000)]
        )
        path = tmp_path / "cities.csv"
        write_relation_csv(original, path)
        loaded = read_relation_csv(path)
        assert loaded.name == "cities"
        assert loaded.rows == original.rows

    def test_none_roundtrips_as_null_token(self, tmp_path):
        original = Relation.build("R", ["a", "b"], [("x", None), ("y", "z")])
        path = tmp_path / "r.csv"
        write_relation_csv(original, path)
        loaded = read_relation_csv(path)
        assert loaded.rows == original.rows

    def test_candidate_table_roundtrip(self, tmp_path):
        table = CandidateTable.from_rows(["a", "b"], [(1, 2), (3, 4)])
        path = tmp_path / "cand.csv"
        write_candidate_table_csv(table, path)
        loaded = read_candidate_table_csv(path)
        assert loaded.rows == table.rows

    def test_candidate_table_with_labels_adds_label_column(self, tmp_path):
        table = CandidateTable.from_rows(["a"], [(1,), (2,)])
        path = tmp_path / "labeled.csv"
        write_candidate_table_csv(table, path, labels={0: "+"})
        text = path.read_text(encoding="utf-8")
        assert text.splitlines()[0].startswith("label,")
        assert text.splitlines()[1].startswith("+,")
        assert text.splitlines()[2].startswith(",")

    def test_figure1_roundtrip(self, tmp_path, figure1_table):
        path = tmp_path / "fig1.csv"
        write_candidate_table_csv(figure1_table, path)
        loaded = read_candidate_table_csv(path)
        assert len(loaded) == 12
        assert loaded.row(2) == figure1_table.row(2)
