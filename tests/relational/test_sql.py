"""Tests for SQL rendering of join queries."""

from __future__ import annotations

import pytest

from repro import CandidateTable, JoinQuery
from repro.datasets import flights_hotels
from repro.exceptions import CandidateTableError
from repro.relational.sql import (
    column_reference,
    quote_identifier,
    render_flat_sql,
    render_join_sql,
)


class TestQuoting:
    def test_quote_identifier(self):
        assert quote_identifier("City") == '"City"'

    def test_quote_escapes_embedded_quotes(self):
        assert quote_identifier('we"ird') == '"we""ird"'

    def test_column_reference_plain(self):
        assert column_reference("City") == '"City"'

    def test_column_reference_qualified(self):
        assert column_reference("Hotels.City") == '"Hotels"."City"'


class TestRenderJoinSQL:
    @pytest.fixture
    def table(self):
        return flights_hotels.qualified_figure1_table()

    def test_renders_from_and_where(self, table):
        sql = render_join_sql(flights_hotels.qualified_query_q2(), table)
        assert sql.startswith("SELECT ")
        assert 'FROM "Flights", "Hotels"' in sql
        assert '"Flights"."To" = "Hotels"."City"' in sql
        assert '"Flights"."Airline" = "Hotels"."Discount"' in sql
        assert " AND " in sql

    def test_empty_query_has_no_where(self, table):
        sql = render_join_sql(JoinQuery.empty(), table)
        assert "WHERE" not in sql

    def test_projection_limits_select_list(self, table):
        sql = render_join_sql(
            flights_hotels.qualified_query_q1(), table, projection=["Flights.To"]
        )
        assert sql.startswith('SELECT "Flights"."To" FROM')

    def test_requires_provenance(self):
        flat = CandidateTable.from_rows(
            flights_hotels.FIGURE1_COLUMNS, flights_hotels.FIGURE1_ROWS
        )
        with pytest.raises(CandidateTableError):
            render_join_sql(flights_hotels.query_q1(), flat)


class TestRenderFlatSQL:
    def test_flat_rendering_uses_underscored_names(self):
        table = flights_hotels.qualified_figure1_table()
        sql = render_flat_sql(flights_hotels.qualified_query_q1(), table)
        assert '"Flights_To" = "Hotels_City"' in sql
        assert sql.startswith("SELECT * FROM")

    def test_flat_rendering_of_unqualified_table(self, figure1_table):
        sql = render_flat_sql(flights_hotels.query_q1(), figure1_table)
        assert '"City" = "To"' in sql or '"To" = "City"' in sql

    def test_to_sql_method_picks_flat_without_provenance(self):
        flat = CandidateTable.from_rows(
            flights_hotels.FIGURE1_COLUMNS, flights_hotels.FIGURE1_ROWS
        )
        sql = flights_hotels.query_q1().to_sql(flat)
        assert sql.startswith("SELECT * FROM")

    def test_to_sql_flat_flag_forces_flat_form(self, figure1_table):
        sql = flights_hotels.query_q1().to_sql(figure1_table, flat=True)
        assert sql.startswith("SELECT * FROM")

    def test_to_sql_method_picks_relational_when_possible(self):
        table = flights_hotels.qualified_figure1_table()
        sql = flights_hotels.qualified_query_q1().to_sql(table)
        assert 'FROM "Flights", "Hotels"' in sql
