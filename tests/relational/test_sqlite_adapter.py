"""Tests for the SQLite adapter: persistence and executing inferred joins."""

from __future__ import annotations

import pytest

from repro.datasets import flights_hotels
from repro.exceptions import SchemaError
from repro.relational import sqlite_adapter
from repro.relational.candidate import CandidateTable
from repro.relational.relation import Relation
from repro.relational.types import DataType


@pytest.fixture
def connection():
    conn = sqlite_adapter.connect()
    yield conn
    conn.close()


class TestWriteAndRead:
    def test_relation_roundtrip(self, connection):
        original = Relation.build(
            "cities", ["name", "pop"], [("Paris", 2100000), ("Lille", 230000)]
        )
        sqlite_adapter.write_relation(connection, original)
        loaded = sqlite_adapter.read_relation(connection, "cities")
        assert loaded.schema.attribute_names == ("name", "pop")
        assert set(loaded.rows) == set(original.rows)

    def test_boolean_roundtrips_as_integer(self, connection):
        original = Relation.build("flags", ["ok"], [(True,), (False,)])
        sqlite_adapter.write_relation(connection, original)
        loaded = sqlite_adapter.read_relation(connection, "flags")
        assert set(row[0] for row in loaded.rows) == {0, 1}

    def test_instance_roundtrip(self, connection, people_pets_instance):
        sqlite_adapter.write_instance(connection, people_pets_instance)
        loaded = sqlite_adapter.read_instance(connection)
        assert set(loaded.relation_names) == {"people", "pets"}
        assert len(loaded.relation("pets")) == 3

    def test_read_missing_table_raises(self, connection):
        with pytest.raises(SchemaError):
            sqlite_adapter.read_relation(connection, "missing")

    def test_create_table_sql_types(self):
        relation = Relation.build("R", ["a", "b"], [(1, 1.5)])
        sql = sqlite_adapter.create_table_sql(relation.schema)
        assert '"a" INTEGER' in sql
        assert '"b" REAL' in sql

    def test_declared_type_mapping(self, connection):
        connection.execute('CREATE TABLE t ("x" VARCHAR(10), "y" DOUBLE)')
        connection.execute("INSERT INTO t VALUES ('a', 1.5)")
        loaded = sqlite_adapter.read_relation(connection, "t")
        assert loaded.schema.attribute("x").data_type is DataType.TEXT
        assert loaded.schema.attribute("y").data_type is DataType.FLOAT

    def test_write_candidate_table(self, connection):
        table = CandidateTable.from_rows(["R.a", "S.b"], [(1, 1), (1, 2)])
        sqlite_adapter.write_candidate_table(connection, table)
        rows = connection.execute('SELECT * FROM "candidates"').fetchall()
        assert len(rows) == 2


class TestExecuteJoin:
    def test_inferred_query_matches_candidate_table_evaluation(self, connection):
        instance = flights_hotels.travel_instance()
        table = flights_hotels.qualified_figure1_table()
        query = flights_hotels.qualified_query_q2()
        sqlite_adapter.write_instance(connection, instance)
        sql_rows = sqlite_adapter.execute_join(connection, query, table)
        expected = {table.row(tid) for tid in query.evaluate(table)}
        # The Discount ``None`` round-trips as SQL NULL.
        assert len(sql_rows) == len(expected)
        assert {tuple(row) for row in sql_rows} == expected

    def test_empty_query_returns_full_cross_product(self, connection):
        instance = flights_hotels.travel_instance()
        table = flights_hotels.qualified_figure1_table()
        sqlite_adapter.write_instance(connection, instance)
        from repro import JoinQuery

        rows = sqlite_adapter.execute_join(connection, JoinQuery.empty(), table)
        assert len(rows) == 12
