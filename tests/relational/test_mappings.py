"""Tests for GAV-mapping rendering of inferred join queries."""

from __future__ import annotations

import pytest

from repro import CandidateTable, GoalQueryOracle, JoinQuery, infer_join
from repro.datasets import flights_hotels
from repro.exceptions import CandidateTableError
from repro.relational.mappings import as_gav_mapping


@pytest.fixture
def qualified_table() -> CandidateTable:
    return flights_hotels.qualified_figure1_table()


class TestAsGavMapping:
    def test_requires_provenance(self, figure1_table):
        flat = CandidateTable.from_rows(
            flights_hotels.FIGURE1_COLUMNS, flights_hotels.FIGURE1_ROWS
        )
        with pytest.raises(CandidateTableError):
            as_gav_mapping(flights_hotels.query_q1(), flat)

    def test_source_relations_in_table_order(self, qualified_table):
        mapping = as_gav_mapping(flights_hotels.qualified_query_q2(), qualified_table)
        assert mapping.source_relations == ("Flights", "Hotels")
        assert mapping.target == "Target"

    def test_joined_attributes_share_a_variable(self, qualified_table):
        mapping = as_gav_mapping(flights_hotels.qualified_query_q2(), qualified_table)
        variables = mapping.attribute_variables
        assert variables["Flights.To"] == variables["Hotels.City"]
        assert variables["Flights.Airline"] == variables["Hotels.Discount"]
        assert variables["Flights.From"] not in (
            variables["Flights.To"],
            variables["Flights.Airline"],
        )

    def test_unjoined_attributes_have_distinct_variables(self, qualified_table):
        mapping = as_gav_mapping(JoinQuery.empty(), qualified_table)
        variables = list(mapping.attribute_variables.values())
        assert len(set(variables)) == len(variables)

    def test_datalog_rendering(self, qualified_table):
        mapping = as_gav_mapping(
            flights_hotels.qualified_query_q2(), qualified_table, target="Package"
        )
        rule = mapping.to_datalog()
        assert rule.startswith("Package(")
        assert ":- Flights(" in rule and "Hotels(" in rule
        assert rule.endswith(".")
        # The hotel atom reuses the flight variables for City and Discount.
        head, body = rule.split(":-")
        flights_part = body.split("Flights(")[1].split(")")[0]
        hotels_part = body.split("Hotels(")[1].split(")")[0]
        flight_vars = [v.strip() for v in flights_part.split(",")]
        hotel_vars = [v.strip() for v in hotels_part.split(",")]
        assert hotel_vars[0] == flight_vars[1]   # City = To
        assert hotel_vars[1] == flight_vars[2]   # Discount = Airline

    def test_sql_view_rendering(self, qualified_table):
        mapping = as_gav_mapping(
            flights_hotels.qualified_query_q1(), qualified_table, target="Packages"
        )
        view = mapping.to_sql_view()
        assert view.startswith('CREATE VIEW "Packages" AS SELECT')
        assert '"Flights"."To" = "Hotels"."City"' in view

    def test_evaluate_matches_query_evaluation(self, qualified_table):
        instance = flights_hotels.travel_instance()
        query = flights_hotels.qualified_query_q2()
        mapping = as_gav_mapping(query, qualified_table)
        rows = mapping.evaluate(instance)
        expected = [qualified_table.row(tid) for tid in sorted(query.evaluate(qualified_table))]
        assert rows == expected

    def test_mapping_from_inferred_query(self, qualified_table):
        goal = flights_hotels.qualified_query_q2()
        result = infer_join(qualified_table, GoalQueryOracle(goal), strategy="lookahead-minmax")
        mapping = as_gav_mapping(result.query, qualified_table, target="Package")
        assert "Package(" in mapping.to_datalog()
        assert str(mapping) == mapping.to_datalog()

    def test_target_attribute_list(self, qualified_table):
        mapping = as_gav_mapping(flights_hotels.qualified_query_q1(), qualified_table)
        assert mapping.target_attributes == qualified_table.attribute_names
