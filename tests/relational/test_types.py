"""Tests for data types, inference, compatibility and coercion."""

from __future__ import annotations

import datetime

import pytest

from repro.exceptions import DataTypeError
from repro.relational.types import (
    DataType,
    are_compatible,
    coerce,
    detect_and_coerce_column,
    infer_column_type,
    infer_type,
    parse_cell,
)


class TestInferType:
    def test_none_is_null(self):
        assert infer_type(None) is DataType.NULL

    def test_bool_is_boolean_not_integer(self):
        assert infer_type(True) is DataType.BOOLEAN

    def test_int_is_integer(self):
        assert infer_type(42) is DataType.INTEGER

    def test_float_is_float(self):
        assert infer_type(3.14) is DataType.FLOAT

    def test_str_is_text(self):
        assert infer_type("Paris") is DataType.TEXT

    def test_date_is_date(self):
        assert infer_type(datetime.date(2014, 9, 1)) is DataType.DATE

    def test_unsupported_type_raises(self):
        with pytest.raises(DataTypeError):
            infer_type([1, 2, 3])


class TestInferColumnType:
    def test_all_null_column_is_null(self):
        assert infer_column_type([None, None]) is DataType.NULL

    def test_empty_column_is_null(self):
        assert infer_column_type([]) is DataType.NULL

    def test_nulls_are_ignored(self):
        assert infer_column_type(["AF", None, "AA"]) is DataType.TEXT

    def test_mixed_int_float_widens_to_float(self):
        assert infer_column_type([1, 2.5, 3]) is DataType.FLOAT

    def test_incompatible_mix_raises(self):
        with pytest.raises(DataTypeError):
            infer_column_type([1, "two"])


class TestCompatibility:
    def test_same_type_compatible(self):
        assert are_compatible(DataType.TEXT, DataType.TEXT)

    def test_integer_and_float_compatible(self):
        assert are_compatible(DataType.INTEGER, DataType.FLOAT)

    def test_text_and_integer_incompatible(self):
        assert not are_compatible(DataType.TEXT, DataType.INTEGER)

    def test_null_compatible_with_everything(self):
        for data_type in DataType:
            assert are_compatible(DataType.NULL, data_type)

    def test_compatibility_is_symmetric(self):
        for left in DataType:
            for right in DataType:
                assert are_compatible(left, right) == are_compatible(right, left)


class TestCoerce:
    def test_none_stays_none(self):
        assert coerce(None, DataType.INTEGER) is None

    def test_string_to_integer(self):
        assert coerce("42", DataType.INTEGER) == 42

    def test_bad_integer_raises(self):
        with pytest.raises(DataTypeError):
            coerce("4.5", DataType.INTEGER)

    def test_string_to_float(self):
        assert coerce("2.5", DataType.FLOAT) == 2.5

    def test_nan_rejected(self):
        with pytest.raises(DataTypeError):
            coerce("nan", DataType.FLOAT)

    def test_boolean_spellings(self):
        assert coerce("yes", DataType.BOOLEAN) is True
        assert coerce("0", DataType.BOOLEAN) is False

    def test_bad_boolean_raises(self):
        with pytest.raises(DataTypeError):
            coerce("maybe", DataType.BOOLEAN)

    def test_iso_date(self):
        assert coerce("2014-09-01", DataType.DATE) == datetime.date(2014, 9, 1)

    def test_bad_date_raises(self):
        with pytest.raises(DataTypeError):
            coerce("01/09/2014", DataType.DATE)

    def test_anything_to_text(self):
        assert coerce(42, DataType.TEXT) == "42"


class TestCellParsingAndDetection:
    def test_parse_cell_null_token(self):
        assert parse_cell("", null_token="") is None
        assert parse_cell("x") == "x"

    def test_detect_integer_column(self):
        data_type, values = detect_and_coerce_column(["1", "2", None])
        assert data_type is DataType.INTEGER
        assert values == [1, 2, None]

    def test_detect_float_column(self):
        data_type, values = detect_and_coerce_column(["1.5", "2"])
        assert data_type is DataType.FLOAT
        assert values == [1.5, 2.0]

    def test_detect_text_fallback(self):
        data_type, values = detect_and_coerce_column(["Paris", "Lille"])
        assert data_type is DataType.TEXT
        assert values == ["Paris", "Lille"]

    def test_detect_date_column(self):
        data_type, values = detect_and_coerce_column(["2014-09-01", "2014-09-05"])
        assert data_type is DataType.DATE
        assert values[0] == datetime.date(2014, 9, 1)
