"""Tests for the result-table container."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.results import ResultTable


@pytest.fixture
def table() -> ResultTable:
    table = ResultTable(["strategy", "size", "interactions"])
    table.extend(
        [
            {"strategy": "random", "size": 10, "interactions": 8},
            {"strategy": "random", "size": 20, "interactions": 12},
            {"strategy": "lookahead", "size": 10, "interactions": 4},
            {"strategy": "lookahead", "size": 20, "interactions": 5},
        ]
    )
    return table


class TestConstruction:
    def test_columns_required(self):
        with pytest.raises(ExperimentError):
            ResultTable([])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ExperimentError):
            ResultTable(["a", "a"])

    def test_unknown_column_in_row_rejected(self, table):
        with pytest.raises(ExperimentError):
            table.add_row({"strategy": "x", "oops": 1})

    def test_missing_columns_become_none(self):
        table = ResultTable(["a", "b"])
        table.add_row({"a": 1})
        assert table.rows[0]["b"] is None

    def test_len_and_iter(self, table):
        assert len(table) == 4
        assert len(list(table)) == 4


class TestQueries:
    def test_column(self, table):
        assert table.column("interactions") == [8, 12, 4, 5]

    def test_unknown_column_rejected(self, table):
        with pytest.raises(ExperimentError):
            table.column("nope")

    def test_filter(self, table):
        filtered = table.filter(strategy="lookahead")
        assert len(filtered) == 2
        assert all(row["strategy"] == "lookahead" for row in filtered)

    def test_group_mean(self, table):
        means = table.group_mean(["strategy"], "interactions")
        assert means[("random",)] == pytest.approx(10.0)
        assert means[("lookahead",)] == pytest.approx(4.5)

    def test_group_mean_skips_none(self):
        table = ResultTable(["g", "v"])
        table.extend([{"g": "a", "v": 2}, {"g": "a", "v": None}])
        assert table.group_mean(["g"], "v")[("a",)] == pytest.approx(2.0)


class TestRendering:
    def test_to_text_alignment_and_truncation(self, table):
        text = table.to_text(max_rows=2)
        lines = text.splitlines()
        assert lines[0].startswith("strategy")
        assert "… 2 more row(s)" in lines[-1]

    def test_to_text_formats_floats_compactly(self):
        table = ResultTable(["v"])
        table.add_row({"v": 1.5})
        table.add_row({"v": 0.0})
        text = table.to_text()
        assert "1.5" in text and "0" in text

    def test_to_csv_roundtrip_header(self, table):
        csv_text = table.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "strategy,size,interactions"
        assert len(lines) == 5
