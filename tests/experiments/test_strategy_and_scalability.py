"""Tests for the strategy-comparison (E5) and scalability (E7) experiments."""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import SyntheticConfig
from repro.datasets.workloads import synthetic_workload
from repro.experiments.scalability import measure_scalability, scalability_workloads
from repro.experiments.strategy_comparison import (
    DEFAULT_STRATEGY_PANEL,
    compare_strategies,
    family_of,
    summarize_by_complexity,
    summarize_by_family,
    summarize_by_size,
    sweep_workloads,
)


@pytest.fixture(scope="module")
def small_sweep():
    workloads = sweep_workloads(
        tuples_per_relation=(5, 8), goal_atoms=(1, 2), domain_size=3, seeds=(0,)
    )
    return compare_strategies(workloads, strategies=("random", "local-most-specific", "lookahead-entropy"))


class TestSweep:
    def test_sweep_workload_grid_size(self):
        workloads = sweep_workloads(tuples_per_relation=(5,), goal_atoms=(1, 2), seeds=(0, 1))
        assert len(workloads) == 4

    def test_all_runs_converge_and_are_correct(self, small_sweep):
        assert len(small_sweep) == 2 * 2 * 3
        assert all(row["converged"] for row in small_sweep)
        assert all(row["correct"] for row in small_sweep)

    def test_default_panel_registered(self):
        from repro.core.strategies import available_strategies

        assert set(DEFAULT_STRATEGY_PANEL) <= set(available_strategies())


class TestSummaries:
    def test_summary_by_complexity_covers_all_cells(self, small_sweep):
        summary = summarize_by_complexity(small_sweep)
        assert len(summary) == 2 * 3  # goal_atoms × strategies
        assert all(row["mean_interactions"] > 0 for row in summary)

    def test_summary_by_size(self, small_sweep):
        summary = summarize_by_size(small_sweep)
        assert {row["candidates"] for row in summary} == {25, 64}

    def test_summary_by_family(self, small_sweep):
        summary = summarize_by_family(small_sweep)
        families = {row["family"] for row in summary}
        assert families == {"random", "local", "lookahead"}

    def test_lookahead_no_worse_than_random_on_average(self, small_sweep):
        means = {
            str(key[0]): value
            for key, value in small_sweep.group_mean(["strategy"], "interactions").items()
        }
        assert means["lookahead-entropy"] <= means["random"] + 1e-9

    def test_family_of(self):
        assert family_of("random") == "random"
        assert family_of("local-most-specific") == "local"
        assert family_of("lookahead-entropy") == "lookahead"
        assert family_of("optimal") == "optimal"


class TestScalability:
    def test_workload_sizes_grow(self):
        workloads = scalability_workloads(tuples_per_relation=(5, 10), seed=1)
        assert [w.num_candidates for w in workloads] == [25, 100]

    def test_measurement_table_shape(self):
        workloads = [
            synthetic_workload(
                SyntheticConfig(tuples_per_relation=5, domain_size=3, seed=0), goal_atoms=1
            ),
            synthetic_workload(
                SyntheticConfig(tuples_per_relation=8, domain_size=3, seed=0), goal_atoms=1
            ),
        ]
        table = measure_scalability(workloads, strategies=("random", "lookahead-entropy"))
        assert len(table) == 4
        assert all(row["total_seconds"] >= 0 for row in table)
        assert all(row["correct"] for row in table)
