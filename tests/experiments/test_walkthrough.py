"""Tests for the E1 walkthrough experiment."""

from __future__ import annotations

from repro.datasets import flights_hotels
from repro.experiments.walkthrough import run_walkthrough

tid = flights_hotels.paper_tuple_id


class TestWalkthrough:
    def test_every_paper_fact_is_reproduced(self):
        report = run_walkthrough()
        assert report.q1_selected == (tid(3), tid(4), tid(8), tid(10))
        assert report.q2_selected == (tid(3), tid(4))
        assert report.tuple4_uninformative_after_3
        assert report.q1_consistent_after_3
        assert report.q2_consistent_after_3
        assert report.tuple8_informative_after_3
        assert report.grayed_if_12_positive == (tid(3), tid(4), tid(7))
        assert report.grayed_if_12_negative == (tid(1), tid(5), tid(9))
        assert report.final_matches_q2

    def test_report_table_rendering(self):
        table = run_walkthrough().to_table()
        text = table.to_text()
        assert "tuples selected by Q1" in text
        assert "3, 4, 7" in text
        assert "1, 5, 9" in text
        assert len(table) == 10

    def test_replayed_interactions_recorded(self):
        report = run_walkthrough()
        assert report.interactions_replayed == (
            (tid(3), "+"),
            (tid(7), "-"),
            (tid(8), "-"),
        )
