"""Tests for the E2–E4 experiments (interactive effort, modes, strategy benefit)."""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import SyntheticConfig
from repro.datasets.workloads import figure1_workload, synthetic_workload
from repro.experiments.interactions import (
    default_e2_workloads,
    interaction_mode_effort,
    interactive_vs_label_all,
    strategy_benefit,
)


@pytest.fixture(scope="module")
def small_workloads():
    return [
        figure1_workload("q2"),
        synthetic_workload(
            SyntheticConfig(
                num_relations=2, attributes_per_relation=3, tuples_per_relation=6, domain_size=3, seed=0
            ),
            goal_atoms=2,
        ),
    ]


class TestInteractiveVsLabelAll:
    def test_default_workloads_cover_figure1_and_synthetic(self):
        workloads = default_e2_workloads(tuple_counts=(6,))
        assert any("figure1" in w.name for w in workloads)
        assert any("synthetic" in w.name for w in workloads)

    def test_interactive_needs_fewer_labels(self, small_workloads):
        table = interactive_vs_label_all(small_workloads)
        assert len(table) == len(small_workloads)
        for row in table:
            assert row["interactive_labels"] < row["label_all_labels"]
            assert row["saving_pct"] > 0
            assert row["correct"] is True


class TestInteractionModeEffort:
    def test_all_four_modes_reported_and_correct(self, small_workloads):
        table = interaction_mode_effort(small_workloads, k=3, seed=1)
        assert len(table) == 4 * len(small_workloads)
        modes = {row["mode"] for row in table}
        assert modes == {"1-manual", "2-manual+pruning", "3-top-3", "4-guided"}
        assert all(row["correct"] for row in table)

    def test_guided_mode_is_the_cheapest_on_average(self, small_workloads):
        table = interaction_mode_effort(small_workloads, k=3, seed=1)
        means = table.group_mean(["mode"], "labels_given")
        guided = means[("4-guided",)]
        manual = means[("1-manual",)]
        assert guided <= manual

    def test_pruning_helps_the_manual_user(self, small_workloads):
        table = interaction_mode_effort(small_workloads, k=3, seed=1)
        means = table.group_mean(["mode"], "labels_given")
        assert means[("2-manual+pruning",)] <= means[("1-manual",)]


class TestStrategyBenefit:
    def test_report_shape_and_savings(self, small_workloads):
        table = strategy_benefit(small_workloads, seeds=(0, 1))
        assert len(table) == 2 * len(small_workloads)
        for row in table:
            assert 0 <= row["saved_pct"] <= 100
            assert row["saved_interactions"] == max(
                0, row["user_interactions"] - row["strategy_interactions"]
            )
        # An individual random-order user can get lucky, but on average the
        # guided strategy saves effort (the Figure 4 message).
        mean_user = sum(row["user_interactions"] for row in table) / len(table)
        mean_strategy = sum(row["strategy_interactions"] for row in table) / len(table)
        assert mean_strategy <= mean_user
