"""Tests for the machine-readable benchmark trajectory files."""

from __future__ import annotations

import json

from repro.experiments.trajectory import (
    compare_results,
    compare_to_trajectory,
    config_hash,
    find_record,
    git_commit,
    latest_record,
    load_records,
    record_benchmark,
    trajectory_path,
)


class TestConfigHash:
    def test_stable_under_key_order(self):
        assert config_hash({"a": 1, "b": [2, 3]}) == config_hash({"b": [2, 3], "a": 1})

    def test_different_configs_differ(self):
        assert config_hash({"quick": True}) != config_hash({"quick": False})

    def test_short_hex(self):
        digest = config_hash({"quick": True})
        assert len(digest) == 12
        int(digest, 16)


class TestRecordBenchmark:
    def test_round_trip(self, tmp_path):
        path = record_benchmark(
            "demo",
            config={"size": 10},
            results={"speedup": 12.5},
            directory=tmp_path,
            commit="abc123",
            timestamp=1000.0,
        )
        assert path == trajectory_path("demo", tmp_path)
        records = load_records("demo", tmp_path)
        assert len(records) == 1
        assert records[0]["commit"] == "abc123"
        assert records[0]["config"] == {"size": 10}
        assert records[0]["results"] == {"speedup": 12.5}
        assert records[0]["timestamp"] == 1000.0
        document = json.loads(path.read_text())
        assert document["name"] == "demo"

    def test_same_commit_and_config_replaces_in_place(self, tmp_path):
        record_benchmark(
            "demo", {"size": 10}, {"speedup": 1.0}, tmp_path, commit="abc", timestamp=1.0
        )
        record_benchmark(
            "demo", {"size": 20}, {"speedup": 2.0}, tmp_path, commit="abc", timestamp=2.0
        )
        record_benchmark(
            "demo", {"size": 10}, {"speedup": 9.0}, tmp_path, commit="abc", timestamp=3.0
        )
        records = load_records("demo", tmp_path)
        assert [r["results"]["speedup"] for r in records] == [9.0, 2.0]

    def test_new_commit_appends(self, tmp_path):
        record_benchmark("demo", {"size": 10}, {"speedup": 1.0}, tmp_path, commit="one")
        record_benchmark("demo", {"size": 10}, {"speedup": 2.0}, tmp_path, commit="two")
        assert [r["commit"] for r in load_records("demo", tmp_path)] == ["one", "two"]

    def test_find_record(self, tmp_path):
        record_benchmark("demo", {"size": 10}, {"speedup": 1.0}, tmp_path, commit="one")
        hit = find_record("demo", tmp_path, "one", {"size": 10})
        assert hit is not None and hit["results"] == {"speedup": 1.0}
        assert find_record("demo", tmp_path, "one", {"size": 11}) is None
        assert find_record("demo", tmp_path, "two", {"size": 10}) is None

    def test_missing_file_loads_empty(self, tmp_path):
        assert load_records("never-recorded", tmp_path) == []

    def test_benchmarks_keep_separate_files(self, tmp_path):
        record_benchmark("alpha", {}, {"x": 1}, tmp_path, commit="c")
        record_benchmark("beta", {}, {"x": 2}, tmp_path, commit="c")
        assert trajectory_path("alpha", tmp_path).name == "BENCH_alpha.json"
        assert load_records("alpha", tmp_path) != load_records("beta", tmp_path)


class TestCompare:
    def test_latest_record_matches_config_across_commits(self, tmp_path):
        record_benchmark("demo", {"size": 10}, {"speedup": 1.0}, tmp_path, commit="old", timestamp=1.0)
        record_benchmark("demo", {"size": 10}, {"speedup": 2.0}, tmp_path, commit="new", timestamp=2.0)
        record_benchmark("demo", {"size": 99}, {"speedup": 9.0}, tmp_path, commit="new", timestamp=3.0)
        hit = latest_record("demo", tmp_path, {"size": 10})
        assert hit is not None and hit["commit"] == "new"
        assert hit["results"] == {"speedup": 2.0}
        assert latest_record("demo", tmp_path, {"size": 11}) is None
        assert latest_record("never-recorded", tmp_path, {"size": 10}) is None

    def test_within_tolerance_is_green(self):
        recorded = {"speedup": 10.0, "nested": {"ratio": 2.0}}
        fresh = {"speedup": 8.0, "nested": {"ratio": 1.9}}
        assert compare_results(recorded, fresh, ["speedup", "nested.ratio"], tolerance=0.25) == []

    def test_regression_beyond_tolerance_is_reported(self):
        regressions = compare_results(
            {"speedup": 10.0}, {"speedup": 5.0}, ["speedup"], tolerance=0.25
        )
        assert len(regressions) == 1
        assert "speedup" in regressions[0]

    def test_improvement_is_never_a_regression(self):
        assert compare_results({"speedup": 2.0}, {"speedup": 40.0}, ["speedup"]) == []

    def test_missing_metric_is_reported_not_crashed(self):
        regressions = compare_results({"speedup": 2.0}, {}, ["speedup"])
        assert len(regressions) == 1
        assert "missing" in regressions[0]

    def test_compare_to_trajectory_without_baseline_is_vacuously_green(self, tmp_path):
        regressions, baseline = compare_to_trajectory(
            "demo", tmp_path, {"size": 10}, {"speedup": 1.0}, ["speedup"]
        )
        assert regressions == [] and baseline is None

    def test_compare_to_trajectory_round_trip(self, tmp_path):
        record_benchmark("demo", {"size": 10}, {"speedup": 10.0}, tmp_path, commit="base")
        regressions, baseline = compare_to_trajectory(
            "demo", tmp_path, {"size": 10}, {"speedup": 4.0}, ["speedup"], tolerance=0.25
        )
        assert baseline is not None and baseline["commit"] == "base"
        assert len(regressions) == 1


class TestGitCommit:
    def test_inside_a_repository(self):
        commit = git_commit()
        assert commit == "unknown" or (len(commit) == 40 and int(commit, 16) >= 0)

    def test_outside_a_repository(self, tmp_path):
        assert git_commit(tmp_path) == "unknown"
