"""Tests for the generic experiment runner."""

from __future__ import annotations

from repro.datasets.workloads import figure1_workload
from repro.experiments.runner import (
    RUN_COLUMNS,
    mean_interactions_by_strategy,
    run_matrix,
    run_single,
)


class TestRunSingle:
    def test_record_has_all_columns(self):
        record = run_single(figure1_workload("q2"), "lookahead-entropy")
        assert set(record) == set(RUN_COLUMNS)

    def test_correct_and_converged_on_figure1(self):
        record = run_single(figure1_workload("q2"), "lookahead-entropy")
        assert record["converged"] is True
        assert record["correct"] is True
        assert 1 <= record["interactions"] <= 12

    def test_max_interactions_propagates(self):
        record = run_single(figure1_workload("q2"), "local-lexicographic", max_interactions=1)
        assert record["interactions"] == 1
        assert record["converged"] is False

    def test_timing_fields_consistent(self):
        record = run_single(figure1_workload("q1"), "random", seed=1)
        assert record["total_seconds"] >= 0
        assert record["seconds_per_interaction"] <= record["total_seconds"]


class TestRunMatrix:
    def test_matrix_size(self):
        workloads = [figure1_workload("q1"), figure1_workload("q2")]
        table = run_matrix(workloads, ["random", "lookahead-entropy"], seeds=(0, 1))
        assert len(table) == 2 * 2 * 2

    def test_mean_interactions_by_strategy(self):
        workloads = [figure1_workload("q1"), figure1_workload("q2")]
        table = run_matrix(workloads, ["random", "lookahead-entropy"], seeds=(0,))
        means = mean_interactions_by_strategy(table)
        assert set(means) == {"random", "lookahead-entropy"}
        assert all(value > 0 for value in means.values())
