"""Tests for the TPC-H (E8), crowdsourcing-cost (E9) and ablation (E10) experiments."""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import SyntheticConfig
from repro.datasets.tpch import TPCHConfig
from repro.datasets.workloads import figure1_workload, synthetic_workload
from repro.experiments.ablation import (
    ablate_atom_scope,
    ablate_lookahead_depth,
    ablate_pruning,
    default_ablation_workloads,
)
from repro.experiments.crowd import compare_crowd_cost, crowd_workloads
from repro.experiments.tpch_experiment import (
    discovered_foreign_keys,
    run_tpch_experiment,
    tpch_workload_suite,
)


class TestTPCHExperiment:
    def test_suite_and_runs(self):
        config = TPCHConfig(customers=5, orders_per_customer=2, lineitems_per_order=1)
        table = run_tpch_experiment(
            joins=("orders-customer", "customer-nation"),
            strategies=("lookahead-entropy",),
            config=config,
            max_rows=400,
        )
        assert len(table) == 2
        assert all(row["converged"] for row in table)
        assert all(row["correct"] for row in table)
        assert all(row["interactions"] < row["candidates"] for row in table)

    def test_workload_suite_names(self):
        suite = tpch_workload_suite(("orders-customer",), config=TPCHConfig(customers=4))
        assert suite[0].name == "tpch-orders-customer"

    def test_discovered_foreign_keys_contains_classics(self):
        table = discovered_foreign_keys(TPCHConfig(customers=6))
        pairs = {(row["dependent"], row["referenced"]) for row in table}
        assert ("orders.o_custkey", "customer.c_custkey") in pairs


class TestCrowdCost:
    def test_jim_asks_far_fewer_questions(self):
        workloads = crowd_workloads(tuples_per_relation=(6, 10), goal_atoms=1, seed=0)
        table = compare_crowd_cost(workloads)
        assert len(table) == 2
        for row in table:
            assert row["pairwise_questions"] == row["candidate_pairs"]
            assert row["jim_questions"] < row["pairwise_questions"]
            assert row["reduction_factor"] > 1
            assert row["correct"] is True

    def test_analytic_mode_skips_the_oracle(self):
        workloads = crowd_workloads(tuples_per_relation=(6,), goal_atoms=1, seed=1)
        table = compare_crowd_cost(workloads, run_pairwise_oracle=False)
        assert table.rows[0]["pairwise_questions"] == table.rows[0]["candidate_pairs"]


@pytest.fixture(scope="module")
def tiny_workloads():
    return [
        figure1_workload("q2"),
        synthetic_workload(
            SyntheticConfig(
                num_relations=2, attributes_per_relation=2, tuples_per_relation=5, domain_size=3, seed=0
            ),
            goal_atoms=1,
        ),
    ]


class TestAblations:
    def test_default_ablation_workloads_are_small(self):
        for workload in default_ablation_workloads():
            assert workload.num_candidates <= 100

    def test_pruning_ablation_shows_guided_is_cheaper(self, tiny_workloads):
        table = ablate_pruning(tiny_workloads, seeds=(0, 1))
        means = table.group_mean(["variant"], "interactions")
        assert means[("with-pruning (guided)",)] <= means[("no-pruning (random order)",)]

    def test_atom_scope_ablation(self, tiny_workloads):
        table = ablate_atom_scope(tiny_workloads)
        assert len(table) == 2 * len(tiny_workloads)
        by_scope = table.group_mean(["scope"], "universe_size")
        assert by_scope[("all-pairs",)] > by_scope[("cross-relation",)]
        assert all(row["correct"] for row in table)

    def test_lookahead_depth_ablation_includes_optimal(self, tiny_workloads):
        table = ablate_lookahead_depth(tiny_workloads, depths=(1, 2), include_optimal=True)
        strategies = {row["strategy"] for row in table}
        assert "optimal" in strategies
        assert "lookahead-minmax" in strategies
        assert any(name.startswith("lookahead-kstep") for name in strategies)
        # Every variant converges to the goal in at most as many questions as
        # there are candidate tuples (the optimal one being a lower-bound probe,
        # not necessarily the best on any single goal).
        for row in table:
            assert 1 <= row["interactions"] <= row["candidates"]
