"""Integration tests: every example script runs successfully end to end."""

from __future__ import annotations

import pathlib
import subprocess
import sys

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def run_example(name: str) -> str:
    script = EXAMPLES_DIR / name
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
        check=True,
    )
    return completed.stdout


class TestExampleScripts:
    def test_there_are_at_least_three_examples(self):
        assert len(EXAMPLE_SCRIPTS) >= 3

    def test_quickstart_infers_q2(self):
        output = run_example("quickstart.py")
        assert "Inferred join query : Airline ≍ Discount ∧ City ≍ To" in output
        assert "Matches the goal    : True" in output

    def test_travel_packages_reports_all_modes_and_benefit(self):
        output = run_example("travel_packages.py")
        for marker in ("[mode 1]", "[mode 2]", "[mode 3]", "[mode 4]", "saving"):
            assert marker in output
        assert "Flight&hotel packages produced by the inferred query" in output

    def test_setgame_example_infers_feature_joins(self):
        output = run_example("setgame_pictures.py")
        assert "correct  : True" in output
        assert "Left.color ≍ Right.color" in output

    def test_tpch_example_reports_joins_and_fks(self):
        output = run_example("tpch_fk_discovery.py")
        assert "orders-customer" in output
        assert "correct=True" in output
        assert "orders.o_custkey ⊆ customer.c_custkey" in output

    def test_crowdsourcing_example_shows_savings(self):
        output = run_example("crowdsourcing_cost.py")
        assert "JIM questions" in output
        assert "%" in output
