"""Integration tests: the whole pipeline, from raw data to executed SQL."""

from __future__ import annotations

from repro import (
    CandidateTable,
    GoalQueryOracle,
    JoinInferenceEngine,
    JoinQuery,
    NoisyOracle,
    infer_join,
)
from repro.datasets import flights_hotels, setgame
from repro.datasets.tpch import TPCHConfig, fk_join_goal, generate_tpch, tpch_candidate_table
from repro.relational import sqlite_adapter
from repro.relational.csv_io import read_relation_csv, write_relation_csv
from repro.relational.integrity import foreign_key_candidates
from repro.sessions import GuidedSession
from repro.ui import run_scripted_demo


class TestCsvToInferredSQL:
    def test_csv_roundtrip_then_inference_then_sqlite(self, tmp_path):
        # 1. The user's raw data arrives as CSV files.
        instance = flights_hotels.travel_instance()
        for relation in instance:
            write_relation_csv(relation, tmp_path / f"{relation.name}.csv")
        # 2. Reload them as a database instance and build the candidate table.
        from repro.relational import DatabaseInstance

        reloaded = DatabaseInstance(
            "travel",
            [read_relation_csv(tmp_path / "Flights.csv"), read_relation_csv(tmp_path / "Hotels.csv")],
        )
        table = CandidateTable.cross_product(reloaded)
        assert len(table) == 12
        # 3. Infer the join from membership queries.
        goal = flights_hotels.qualified_query_q2()
        result = infer_join(table, GoalQueryOracle(goal), strategy="lookahead-entropy")
        assert result.converged and result.matches_goal(goal)
        # 4. Execute the inferred query in SQLite and compare with the in-memory evaluation.
        connection = sqlite_adapter.connect()
        sqlite_adapter.write_instance(connection, reloaded)
        sql_rows = sqlite_adapter.execute_join(connection, result.query, table)
        expected_rows = {table.row(tid) for tid in result.query.evaluate(table)}
        assert {tuple(row) for row in sql_rows} == expected_rows
        connection.close()


class TestTPCHPipeline:
    def test_discovered_fk_used_as_goal_and_inferred(self):
        config = TPCHConfig(customers=8, orders_per_customer=2, seed=3)
        instance = generate_tpch(config)
        fks = foreign_key_candidates(instance)
        target = next(
            dep
            for dep in fks
            if dep.as_equality == ("orders.o_custkey", "customer.c_custkey")
        )
        goal = JoinQuery.of(target.as_equality)
        table = tpch_candidate_table("orders-customer", config=config, max_rows=None, instance=instance)
        result = infer_join(table, GoalQueryOracle(goal), strategy="lookahead-minmax")
        assert result.converged
        assert result.matches_goal(fk_join_goal("orders-customer"))


class TestRobustnessAndScale:
    def test_noisy_user_with_non_strict_state(self, figure1_table, query_q2):
        # A noisy user may produce inconsistent labels; with strict=False the
        # engine still terminates (everything eventually becomes uninformative).
        engine = JoinInferenceEngine(figure1_table, strategy="random", strict=False)
        oracle = NoisyOracle(GoalQueryOracle(query_q2), error_rate=0.3, seed=5)
        result = engine.run(oracle, max_interactions=30)
        assert result.num_interactions <= 30

    def test_larger_setgame_space_stays_interactive(self):
        table = setgame.pair_table(deck_size=20, seed=1)  # 400 pairs
        goal = setgame.same_feature_query("color", "shading")
        result = infer_join(table, GoalQueryOracle(goal), strategy="lookahead-entropy")
        assert result.converged and result.matches_goal(goal)
        assert result.num_interactions <= 15
        assert result.trace.total_seconds < 10.0

    def test_scripted_console_demo_end_to_end(self, figure1_table, query_q1):
        query, transcript = run_scripted_demo(
            figure1_table, GoalQueryOracle(query_q1), strategy="lookahead-minmax"
        )
        assert query.instance_equivalent(query_q1, figure1_table)
        assert "inferred join query" in transcript

    def test_guided_session_statistics_consistent_with_trace(self, figure1_table, query_q2):
        session = GuidedSession(figure1_table, strategy="lookahead-entropy")
        session.run(GoalQueryOracle(query_q2))
        stats = session.statistics()
        assert stats.labeled == session.num_interactions
        assert stats.labeled + stats.grayed_out == len(figure1_table)


class TestPublicAPI:
    def test_top_level_exports_exist(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), f"missing top-level export {name}"

    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2
