"""Tests for textual reports and the console demo driver."""

from __future__ import annotations

from repro import BenefitReport, GoalQueryOracle
from repro.core.oracle import FixedLabelsOracle
from repro.datasets import flights_hotels
from repro.ui.console import run_console_demo, run_scripted_demo
from repro.ui.report import render_benefit_report, render_strategy_comparison

tid = flights_hotels.paper_tuple_id


class TestReports:
    def test_benefit_report_rendering(self, query_q2):
        report = BenefitReport(
            user_interactions=12,
            strategy_interactions=3,
            strategy_name="lookahead-entropy",
            inferred_query=query_q2,
        )
        rendered = render_benefit_report(report)
        assert "your interactions" in rendered
        assert "with lookahead-entropy" in rendered
        assert "saving" in rendered
        assert query_q2.describe() in rendered

    def test_strategy_comparison_rendering(self):
        rendered = render_strategy_comparison(
            {"random": 9.0, "local": 6.0, "lookahead": 4.0}, title="Figure: comparison"
        )
        assert rendered.startswith("Figure: comparison")
        assert "random" in rendered and "lookahead" in rendered


class TestScriptedDemo:
    def test_transcript_contains_question_answers_and_result(self, figure1_table, query_q2):
        query, transcript = run_scripted_demo(
            figure1_table, GoalQueryOracle(query_q2), strategy="lookahead-entropy"
        )
        assert query.instance_equivalent(query_q2, figure1_table)
        assert "JIM: interactive join query inference" in transcript
        assert "inferred join query:" in transcript
        assert "membership queries asked:" in transcript
        assert "label tuple" in transcript

    def test_transcript_with_per_step_tables(self, figure1_table, query_q1):
        _, transcript = run_scripted_demo(
            figure1_table,
            GoalQueryOracle(query_q1),
            strategy="local-most-specific",
            show_table_every_step=True,
        )
        assert "current candidate query:" in transcript

    def test_interaction_cap_reported(self, figure1_table, query_q2):
        _, transcript = run_scripted_demo(
            figure1_table,
            GoalQueryOracle(query_q2),
            strategy="local-lexicographic",
            max_interactions=1,
        )
        assert "stopping after 1 interactions" in transcript


class TestConsoleDemo:
    def test_console_demo_reads_answers_from_stdin(self, figure1_table, query_q2, monkeypatch, capsys):
        oracle = GoalQueryOracle(query_q2)

        def fake_input(prompt: str = "") -> str:
            # The console oracle prints the tuple before asking; recover the id
            # from the printed line is fragile, so instead answer based on the
            # last tuple mentioned in stdout.
            out = capsys.readouterr().out
            lines = [line for line in out.splitlines() if line.startswith("Tuple #")]
            assert lines, "the console oracle should print the tuple before asking"
            tuple_id = int(lines[-1].split("#")[1].split(":")[0])
            return "y" if oracle.label(figure1_table, tuple_id).is_positive else "n"

        monkeypatch.setattr("builtins.input", fake_input)
        inferred = run_console_demo(figure1_table, strategy="lookahead-entropy")
        assert inferred.instance_equivalent(query_q2, figure1_table)

    def test_scripted_demo_with_all_negative_answers(self, figure1_table):
        oracle = FixedLabelsOracle({tuple_id: "-" for tuple_id in figure1_table.tuple_ids})
        query, transcript = run_scripted_demo(figure1_table, oracle, strategy="local-lexicographic")
        assert "inferred join query:" in transcript
        # A user who rejects everything ends with a query selecting no tuple.
        assert query.evaluate(figure1_table) == frozenset()
