"""Tests for the ASCII table renderer and bar charts."""

from __future__ import annotations

from repro import InferenceState, Label, TupleStatus
from repro.datasets import flights_hotels
from repro.ui.renderer import STATUS_MARKERS, render_bar_chart, render_state, render_table

tid = flights_hotels.paper_tuple_id


class TestRenderTable:
    def test_header_contains_all_attributes(self, figure1_table):
        rendered = render_table(figure1_table)
        header = rendered.splitlines()[0]
        for name in figure1_table.attribute_names:
            assert name in header

    def test_all_rows_rendered_by_default(self, figure1_table):
        rendered = render_table(figure1_table, max_rows=None)
        assert "(12)" in rendered
        assert "NYC" in rendered

    def test_truncation_notice(self, figure1_table):
        rendered = render_table(figure1_table, max_rows=5)
        assert "more tuple(s) not shown" in rendered
        assert "(12)" not in rendered

    def test_status_markers_rendered(self, figure1_table):
        statuses = {
            tid(3): TupleStatus.LABELED_POSITIVE,
            tid(8): TupleStatus.LABELED_NEGATIVE,
            tid(4): TupleStatus.CERTAIN_POSITIVE,
        }
        rendered = render_table(figure1_table, statuses=statuses)
        lines = rendered.splitlines()
        row3 = next(line for line in lines if "(3)" in line)
        row8 = next(line for line in lines if "(8)" in line)
        row4 = next(line for line in lines if "(4)" in line)
        assert row3.startswith("+")
        assert row8.startswith("-")
        assert row4.startswith("(+)")

    def test_grayed_out_rows_can_be_hidden(self, figure1_table):
        statuses = {tid(4): TupleStatus.CERTAIN_POSITIVE}
        rendered = render_table(
            figure1_table, statuses=statuses, show_grayed_out=False, max_rows=None
        )
        assert "(4)" not in rendered
        assert "(5)" in rendered

    def test_none_rendered_as_null_symbol(self, figure1_table):
        rendered = render_table(figure1_table, max_rows=None)
        assert "∅" in rendered

    def test_restricted_tuple_ids(self, figure1_table):
        rendered = render_table(figure1_table, tuple_ids=[tid(3), tid(8)])
        assert "(3)" in rendered and "(8)" in rendered
        assert "(5)" not in rendered

    def test_every_status_has_a_marker(self):
        assert set(STATUS_MARKERS) == set(TupleStatus)


class TestRenderState:
    def test_contains_statistics_and_query(self, figure1_table):
        state = InferenceState(figure1_table)
        state.add_label(tid(3), Label.POSITIVE)
        rendered = render_state(state)
        assert "labeled: 1" in rendered
        assert "current candidate query:" in rendered
        assert "Airline ≍ Discount" in rendered


class TestRenderBarChart:
    def test_bars_scale_with_values(self):
        chart = render_bar_chart({"user": 10.0, "strategy": 5.0}, width=10)
        lines = chart.splitlines()
        user_bar = lines[0].count("█")
        strategy_bar = lines[1].count("█")
        assert user_bar == 10
        assert strategy_bar == 5

    def test_unit_suffix(self):
        chart = render_bar_chart({"a": 3.0}, unit=" labels")
        assert "3 labels" in chart

    def test_empty_chart(self):
        assert render_bar_chart({}) == "(no data)"

    def test_zero_values_do_not_crash(self):
        chart = render_bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in chart and "b" in chart
