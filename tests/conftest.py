"""Shared fixtures: the paper's Figure 1 dataset and small synthetic tables."""

from __future__ import annotations

import pytest

from repro import AtomUniverse, CandidateTable, InferenceState, JoinQuery
from repro.datasets import flights_hotels
from repro.relational import DatabaseInstance, Relation


@pytest.fixture
def figure1_table() -> CandidateTable:
    """The denormalised candidate table of Figure 1 (12 tuples)."""
    return flights_hotels.figure1_table()


@pytest.fixture
def figure1_universe(figure1_table: CandidateTable) -> AtomUniverse:
    """The default (cross-relation) atom universe over the Figure 1 table."""
    return AtomUniverse.from_table(figure1_table)


@pytest.fixture
def figure1_state(figure1_table: CandidateTable) -> InferenceState:
    """A fresh inference state over the Figure 1 table."""
    return InferenceState(figure1_table)


@pytest.fixture
def query_q1() -> JoinQuery:
    """Q1: To ≍ City."""
    return flights_hotels.query_q1()


@pytest.fixture
def query_q2() -> JoinQuery:
    """Q2: To ≍ City ∧ Airline ≍ Discount."""
    return flights_hotels.query_q2()


@pytest.fixture
def travel_instance() -> DatabaseInstance:
    """The two-relation instance (Flights, Hotels) behind Figure 1."""
    return flights_hotels.travel_instance()


@pytest.fixture
def two_column_table() -> CandidateTable:
    """A tiny flat table with two comparable columns (single-atom universe)."""
    return CandidateTable.from_rows(
        ["a", "b"],
        [(1, 1), (1, 2), (2, 2), (3, 4)],
        name="tiny",
    )


@pytest.fixture
def people_pets_instance() -> DatabaseInstance:
    """A small two-relation instance used across relational-layer tests."""
    people = Relation.build(
        "people",
        ["pid", "name", "city"],
        [
            (1, "Ada", "Paris"),
            (2, "Bob", "Lille"),
            (3, "Cleo", "NYC"),
        ],
    )
    pets = Relation.build(
        "pets",
        ["owner", "animal"],
        [
            (1, "cat"),
            (1, "dog"),
            (3, "fish"),
        ],
    )
    return DatabaseInstance("people_pets", [people, pets])


def paper_id(number: int) -> int:
    """The 0-based tuple id of the paper's tuple ``(number)``."""
    return flights_hotels.paper_tuple_id(number)
