"""Property-based tests: ``ShardedTypeTable`` ≡ the flat ``TypeTable``.

The sharded table (PR 8) is a drop-in replacement for the flat type tables:
partition the masks into K contiguous shards, run every kernel per shard,
merge.  Its whole correctness argument is *"the merge reproduces the flat
result bit for bit, for any K"* — so that is exactly what this suite pins:

* every observable (certain labels, unlabeled counts, informative snapshot,
  prune counts) must match a flat reference table through arbitrary
  refresh/decrement/copy sequences, for shard counts 1, 2, 7 and
  K > len(masks), on every available backend;
* shard boundaries from :func:`~repro.core.parallel.even_ranges` are
  deliberately uneven whenever K ∤ len(masks) — the suite draws sizes that
  hit those cases;
* masks past the int64 lane must take the exact pure-Python path inside
  every shard even when numpy was requested;
* copy-on-write clones of a sharded table must be isolated from their
  parents, exactly like flat clones;
* the thread-mode fan (shared executor) must not change any of the above.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import parallel
from repro.core.kernels import (
    HAVE_NUMPY,
    ShardedTypeTable,
    available_backends,
    make_type_table,
)

SETTINGS = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@pytest.fixture(autouse=True, scope="module")
def _release_pools():
    # The thread-mode test warms the shared executor; release its workers
    # once the module is done (pools are persistent by design).
    yield
    parallel.shutdown_executors()

NARROW_MASKS = st.integers(min_value=0, max_value=(1 << 12) - 1)
WIDE_MASKS = st.integers(min_value=1 << 63, max_value=(1 << 70) - 1)

#: The shard counts the issue calls out: trivial (1), even-ish (2), prime
#: (7, uneven boundaries over most table sizes), and far more shards than
#: rows (64 > the 12-mask cap, so even_ranges must clamp).
SHARD_COUNTS = (1, 2, 7, 64)


def _observables(table, masks):
    return (
        [table.certain_of(mask) for mask in masks],
        [table.unlabeled_of(mask) for mask in masks],
        table.informative_items(),
        table.informative_count(),
        table.has_informative(),
    )


@st.composite
def table_inputs(draw, mask_strategy=NARROW_MASKS, max_masks: int = 12):
    masks = draw(st.lists(mask_strategy, min_size=1, max_size=max_masks, unique=True))
    sizes = draw(
        st.lists(
            st.integers(min_value=0, max_value=20),
            min_size=len(masks),
            max_size=len(masks),
        )
    )
    return masks, sizes


def _drive(flat, sharded, masks, data) -> tuple[object, object]:
    """One random op sequence applied to both tables; flips must agree."""
    for _ in range(data.draw(st.integers(min_value=0, max_value=6))):
        action = data.draw(st.sampled_from(("refresh", "refresh_all", "decrement", "copy")))
        if action in ("refresh", "refresh_all"):
            positive_mask = data.draw(NARROW_MASKS)
            negative_masks = data.draw(st.lists(NARROW_MASKS, min_size=0, max_size=3))
            only_unknown = action == "refresh"
            flat_flips = flat.refresh_certain(positive_mask, negative_masks, only_unknown)
            sharded_flips = sharded.refresh_certain(positive_mask, negative_masks, only_unknown)
            # Same flips in the same (table) order: shard-order concatenation
            # must be invisible.
            assert sharded_flips == flat_flips
        elif action == "decrement":
            decrementable = [mask for mask in masks if flat.unlabeled_of(mask) > 0]
            if not decrementable:
                continue
            mask = data.draw(st.sampled_from(decrementable))
            flat.decrement_unlabeled(mask)
            sharded.decrement_unlabeled(mask)
        else:
            flat, sharded = flat.copy(), sharded.copy()
    return flat, sharded


class TestShardedEquivalence:
    @SETTINGS
    @given(
        inputs=table_inputs(),
        shards=st.sampled_from(SHARD_COUNTS),
        backend=st.sampled_from(available_backends()),
        data=st.data(),
    )
    def test_observables_match_flat_reference(self, inputs, shards, backend, data):
        masks, sizes = inputs
        flat = make_type_table(masks, sizes, backend=backend)
        sharded = make_type_table(masks, sizes, backend=backend, shards=shards)
        assert isinstance(sharded, ShardedTypeTable)
        assert len(sharded.shards) == min(shards, len(masks))
        flat, sharded = _drive(flat, sharded, masks, data)
        assert _observables(sharded, masks) == _observables(flat, masks)

    @SETTINGS
    @given(
        inputs=table_inputs(),
        shards=st.sampled_from(SHARD_COUNTS),
        backend=st.sampled_from(available_backends()),
        candidates=st.lists(NARROW_MASKS, min_size=0, max_size=8),
        data=st.data(),
    )
    def test_prune_counts_match_flat_reference(self, inputs, shards, backend, candidates, data):
        masks, sizes = inputs
        flat = make_type_table(masks, sizes, backend=backend)
        sharded = make_type_table(masks, sizes, backend=backend, shards=shards)
        positive_mask = data.draw(NARROW_MASKS)
        negative_masks = data.draw(st.lists(NARROW_MASKS, min_size=0, max_size=3))
        flat.refresh_certain(positive_mask, negative_masks)
        sharded.refresh_certain(positive_mask, negative_masks)
        restricted = [candidate & positive_mask for candidate in candidates]
        expected = flat.prune_counts_informative(restricted, positive_mask, negative_masks)
        got = sharded.prune_counts_informative(restricted, positive_mask, negative_masks)
        assert got == expected

    @SETTINGS
    @given(
        inputs=table_inputs(mask_strategy=WIDE_MASKS, max_masks=8),
        shards=st.sampled_from(SHARD_COUNTS),
        data=st.data(),
    )
    def test_wide_masks_fall_back_to_pure_python_per_shard(self, inputs, shards, data):
        # Masks past bit 62 cannot ride the int64 lane; a numpy request must
        # silently build pure-Python shards and still match the flat result.
        masks, sizes = inputs
        flat = make_type_table(masks, sizes, backend="numpy")
        sharded = make_type_table(masks, sizes, backend="numpy", shards=shards)
        assert all(type(shard).__name__ == "PyTypeTable" for shard in sharded.shards)
        positive_mask = data.draw(WIDE_MASKS)
        negative_masks = data.draw(st.lists(WIDE_MASKS, min_size=0, max_size=3))
        assert sharded.refresh_certain(positive_mask, negative_masks) == flat.refresh_certain(
            positive_mask, negative_masks
        )
        candidates = data.draw(st.lists(WIDE_MASKS, min_size=0, max_size=5))
        restricted = [candidate & positive_mask for candidate in candidates]
        assert sharded.prune_counts_informative(
            restricted, positive_mask, negative_masks
        ) == flat.prune_counts_informative(restricted, positive_mask, negative_masks)

    @SETTINGS
    @given(
        inputs=table_inputs(),
        shards=st.sampled_from(SHARD_COUNTS),
        backend=st.sampled_from(available_backends()),
        data=st.data(),
    )
    def test_copy_on_write_isolation(self, inputs, shards, backend, data):
        masks, sizes = inputs
        sizes = [max(1, size) for size in sizes]  # keep every mask decrementable
        table = make_type_table(masks, sizes, backend=backend, shards=shards)
        table.refresh_certain(data.draw(NARROW_MASKS), data.draw(st.lists(NARROW_MASKS, max_size=3)))
        before = _observables(table, masks)

        clone = table.copy()
        assert clone.fingerprint == table.fingerprint  # shared mask column
        assert _observables(clone, masks) == before
        clone.decrement_unlabeled(data.draw(st.sampled_from(masks)))
        clone.refresh_certain(data.draw(NARROW_MASKS), [], only_unknown=False)
        assert _observables(table, masks) == before
        snapshot = _observables(clone, masks)
        table.decrement_unlabeled(data.draw(st.sampled_from(masks)))
        assert _observables(clone, masks) == snapshot

    @pytest.mark.skipif(not HAVE_NUMPY, reason="thread fan needs the GIL-releasing kernels")
    @SETTINGS
    @given(
        inputs=table_inputs(),
        candidates=st.lists(NARROW_MASKS, min_size=2, max_size=6),
        data=st.data(),
    )
    def test_thread_mode_fan_is_invisible(self, inputs, candidates, data):
        masks, sizes = inputs
        positive_mask = data.draw(NARROW_MASKS)
        negative_masks = data.draw(st.lists(NARROW_MASKS, min_size=0, max_size=3))
        restricted = [candidate & positive_mask for candidate in candidates]
        flat = make_type_table(masks, sizes, backend="numpy")
        expected_flips = flat.refresh_certain(positive_mask, negative_masks)
        expected_counts = flat.prune_counts_informative(restricted, positive_mask, negative_masks)
        with parallel.parallel_scope("thread", shards=7):
            # make_type_table auto-shards because a parallel mode is active.
            sharded = make_type_table(masks, sizes, backend="numpy")
            assert isinstance(sharded, ShardedTypeTable)
            assert sharded.refresh_certain(positive_mask, negative_masks) == expected_flips
            got = sharded.prune_counts_informative(restricted, positive_mask, negative_masks)
        assert got == expected_counts


class TestEvenRanges:
    @SETTINGS
    @given(
        total=st.integers(min_value=0, max_value=500),
        parts=st.integers(min_value=1, max_value=64),
    )
    def test_spans_partition_the_range_evenly(self, total, parts):
        bounds = parallel.even_ranges(total, parts)
        # Contiguous cover of range(total), in order.
        assert bounds[0][0] == 0
        assert bounds[-1][1] == max(0, total)
        for (_, stop), (next_start, _) in zip(bounds, bounds[1:], strict=False):
            assert stop == next_start
        if total > 0:
            sizes = [stop - start for start, stop in bounds]
            assert sum(sizes) == total
            assert len(bounds) == min(parts, total)
            assert max(sizes) - min(sizes) <= 1
