"""Property-based tests (hypothesis) for the core inference invariants.

Random candidate tables are generated with small integer domains (so that
equalities occur often); random goal queries over their atom universes drive
the interactive loop.  The properties checked are the ones the paper's
correctness rests on:

* a query selects a tuple iff its atom set is included in the tuple's
  equality type;
* uninformative classification is sound: the certain label matches what the
  goal query would answer, for every goal consistent with the examples;
* the interactive loop always converges to a query instance-equivalent to the
  goal and never asks more membership queries than there are tuples;
* labels produced by a consistent user never make the example set inconsistent.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    AtomUniverse,
    CandidateTable,
    GoalQueryOracle,
    InferenceState,
    JoinInferenceEngine,
    JoinQuery,
    Label,
)
from repro.core.equality_types import EqualityTypeIndex

SETTINGS = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def candidate_tables(draw, max_columns: int = 4, max_rows: int = 12) -> CandidateTable:
    """Random flat candidate tables over a small integer domain."""
    num_columns = draw(st.integers(min_value=2, max_value=max_columns))
    num_rows = draw(st.integers(min_value=1, max_value=max_rows))
    domain = draw(st.integers(min_value=2, max_value=4))
    rows = draw(
        st.lists(
            st.tuples(*[st.integers(min_value=0, max_value=domain - 1)] * num_columns),
            min_size=num_rows,
            max_size=num_rows,
        )
    )
    names = [f"c{i}" for i in range(num_columns)]
    return CandidateTable.from_rows(names, rows)


@st.composite
def tables_with_goals(draw) -> tuple[CandidateTable, JoinQuery]:
    """A random table together with a random goal query over its universe."""
    table = draw(candidate_tables())
    universe = AtomUniverse.from_table(table)
    num_atoms = draw(st.integers(min_value=0, max_value=min(3, universe.size)))
    atoms = draw(
        st.lists(st.sampled_from(list(universe.atoms)), min_size=num_atoms, max_size=num_atoms)
    )
    return table, JoinQuery(atoms)


class TestSelectionSemantics:
    @SETTINGS
    @given(data=tables_with_goals())
    def test_query_selects_iff_atoms_subset_of_equality_type(self, data):
        table, goal = data
        universe = AtomUniverse.from_table(table)
        index = EqualityTypeIndex(universe)
        goal_mask = goal.mask(universe)
        selected = goal.evaluate(table)
        for tuple_id in table.tuple_ids:
            assert (tuple_id in selected) == (goal_mask & ~index.mask(tuple_id) == 0)

    @SETTINGS
    @given(data=tables_with_goals())
    def test_adding_atoms_never_selects_more(self, data):
        table, goal = data
        universe = AtomUniverse.from_table(table)
        extra_atom = universe.atoms[0]
        larger = JoinQuery(set(goal.atoms) | {extra_atom})
        assert larger.evaluate(table) <= goal.evaluate(table)

    @SETTINGS
    @given(table=candidate_tables())
    def test_equality_type_index_consistent_with_universe(self, table):
        universe = AtomUniverse.from_table(table)
        index = EqualityTypeIndex(universe)
        positions = {name: pos for pos, name in enumerate(table.attribute_names)}
        for tuple_id, row in enumerate(table.rows):
            mask = index.mask(tuple_id)
            for bit, atom in enumerate(universe.atoms):
                assert bool(mask >> bit & 1) == atom.holds_on(row, positions)


class TestInformativenessSoundness:
    @SETTINGS
    @given(data=tables_with_goals(), labels=st.data())
    def test_certain_labels_agree_with_every_consistent_goal(self, data, labels):
        table, goal = data
        state = InferenceState(table)
        oracle = GoalQueryOracle(goal)
        # Answer a random prefix of membership queries with the goal oracle.
        steps = labels.draw(st.integers(min_value=0, max_value=min(5, len(table))))
        for _ in range(steps):
            informative = state.informative_ids()
            if not informative:
                break
            tuple_id = labels.draw(st.sampled_from(informative))
            state.add_label(tuple_id, oracle.label(table, tuple_id))
        # Soundness: any certain tuple's implied label matches the goal's answer,
        # because the goal is one of the still-consistent queries.
        goal_selected = goal.evaluate(table)
        for tuple_id, status in state.statuses().items():
            if status.is_certain:
                implied = status.implied_label
                actual = Label.POSITIVE if tuple_id in goal_selected else Label.NEGATIVE
                assert implied == actual

    @SETTINGS
    @given(data=tables_with_goals())
    def test_goal_query_always_remains_consistent(self, data):
        table, goal = data
        state = InferenceState(table)
        oracle = GoalQueryOracle(goal)
        while state.has_informative_tuple():
            tuple_id = state.informative_ids()[0]
            state.add_label(tuple_id, oracle.label(table, tuple_id))
            assert state.is_consistent()
            assert state.space.admits_mask(goal.mask(state.universe))


class TestConvergenceProperties:
    @SETTINGS
    @given(data=tables_with_goals())
    def test_engine_converges_to_an_instance_equivalent_query(self, data):
        table, goal = data
        engine = JoinInferenceEngine(table, strategy="lookahead-entropy")
        result = engine.run(GoalQueryOracle(goal))
        assert result.converged
        assert result.matches_goal(goal)
        assert result.num_interactions <= len(table)

    @SETTINGS
    @given(data=tables_with_goals())
    def test_all_strategies_agree_on_the_selected_tuples(self, data):
        table, goal = data
        target = goal.evaluate(table)
        for strategy in ("random", "local-most-specific", "lookahead-minmax"):
            result = JoinInferenceEngine(table, strategy=strategy).run(GoalQueryOracle(goal))
            assert result.query.evaluate(table) == target

    @SETTINGS
    @given(table=candidate_tables())
    def test_prune_counts_match_simulation_on_random_tables(self, table):
        state = InferenceState(table)
        informative = state.informative_ids()
        for tuple_id in informative[:5]:
            before = set(state.informative_ids())
            plus, minus = state.prune_counts(tuple_id)
            after_plus = set(state.simulate_label(tuple_id, Label.POSITIVE).informative_ids())
            after_minus = set(state.simulate_label(tuple_id, Label.NEGATIVE).informative_ids())
            assert plus == len(before - after_plus)
            assert minus == len(before - after_minus)


class TestQueryAlgebraProperties:
    @SETTINGS
    @given(data=tables_with_goals())
    def test_normalisation_preserves_selection(self, data):
        table, goal = data
        assert goal.normalized().evaluate(table) == goal.evaluate(table)

    @SETTINGS
    @given(data=tables_with_goals())
    def test_closure_preserves_selection(self, data):
        table, goal = data
        assert goal.closure().evaluate(table) == goal.evaluate(table)

    @SETTINGS
    @given(left=tables_with_goals(), extra=st.data())
    def test_union_selects_intersection_of_selections(self, left, extra):
        table, first = left
        universe = AtomUniverse.from_table(table)
        atoms = extra.draw(
            st.lists(st.sampled_from(list(universe.atoms)), min_size=0, max_size=2)
        )
        second = JoinQuery(atoms)
        combined = first | second
        assert combined.evaluate(table) == first.evaluate(table) & second.evaluate(table)
