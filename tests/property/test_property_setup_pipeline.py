"""Property-based tests: columnar/factorized setup ≡ row-at-a-time setup.

The columnar pipeline (value-interned code arrays, factorized equality-type
construction for unsampled cross products, lazy row reconstruction) must be
*observationally equivalent* to the seed's row-at-a-time path: over random
instances — including ``None`` values, sampled cross products and
single-relation tables — the masks, the distinct-type histogram, the per-type
tuple-id groups, ``selected_by`` and the reconstructed rows must all match
what evaluating every atom on every materialised row produces.
"""

from __future__ import annotations

import itertools
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import CandidateTable
from repro.core.atoms import AtomScope, AtomUniverse
from repro.core.equality_types import EqualityTypeIndex
from repro.core.queries import JoinQuery
from repro.exceptions import AtomUniverseError
from repro.relational.candidate import CandidateAttribute
from repro.relational.instance import DatabaseInstance
from repro.relational.relation import Relation
from repro.relational.types import infer_column_type

SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

# Small mixed domains; None appears in every pool so null semantics (an atom
# never holds on a null) are exercised throughout.
_INT_POOL = [0, 1, 2, None]
_TEXT_POOL = ["a", "b", "c", None]


@st.composite
def instances(draw, max_relations: int = 3) -> DatabaseInstance:
    """Random multi-relation instances over small shared domains."""
    num_relations = draw(st.integers(min_value=1, max_value=max_relations))
    relations = []
    for index in range(num_relations):
        arity = draw(st.integers(min_value=1, max_value=3))
        num_rows = draw(st.integers(min_value=1, max_value=5))
        columns = []
        for _ in range(arity):
            pool = draw(st.sampled_from([_INT_POOL, _TEXT_POOL]))
            columns.append(
                draw(st.lists(st.sampled_from(pool), min_size=num_rows, max_size=num_rows))
            )
        rows = list(zip(*columns, strict=True))
        names = [f"a{j + 1}" for j in range(arity)]
        relations.append(Relation.build(f"R{index + 1}", names, rows))
    return DatabaseInstance("random", relations)


def _seed_rows(instance: DatabaseInstance) -> list[tuple]:
    """The eagerly materialised cross product, exactly as the seed built it."""
    return [
        tuple(itertools.chain.from_iterable(combo))
        for combo in itertools.product(*(relation.rows for relation in instance.relations))
    ]


def _universe(table: CandidateTable, scope: AtomScope) -> AtomUniverse:
    try:
        return AtomUniverse.from_table(table, scope=scope)
    except AtomUniverseError:
        return None


def _seed_masks(universe: AtomUniverse) -> list[int]:
    return [universe.equality_mask(row) for row in universe.table.rows]


def _seed_groups(masks: list[int]) -> dict[int, tuple[int, ...]]:
    grouped: dict[int, list[int]] = {}
    for tuple_id, mask in enumerate(masks):
        grouped.setdefault(mask, []).append(tuple_id)
    return {mask: tuple(ids) for mask, ids in grouped.items()}


def _assert_index_matches_seed(index: EqualityTypeIndex, universe: AtomUniverse) -> None:
    """The index agrees with per-row atom evaluation on every observable."""
    masks = _seed_masks(universe)
    groups = _seed_groups(masks)
    assert tuple(index.masks) == tuple(masks)
    assert [index.mask(tid) for tid in range(len(masks))] == masks
    assert set(index.distinct_masks) == set(groups)
    assert dict(index.type_sizes()) == {mask: len(ids) for mask, ids in groups.items()}
    for mask, ids in groups.items():
        assert index.tuples_with_mask(mask) == ids
    assert index.tuples_with_mask(universe.full_mask + (1 << universe.size)) == ()
    # selected_by / count_selected_by for the empty query, each atom, and Ω.
    query_masks = [0, universe.full_mask] + [1 << pos for pos in range(universe.size)]
    for query_mask in query_masks:
        expected = frozenset(
            tid for tid, mask in enumerate(masks) if query_mask & ~mask == 0
        )
        assert index.selected_by(query_mask) == expected
        assert index.count_selected_by(query_mask) == len(expected)


class TestFactorizedConstruction:
    @SETTINGS
    @given(instance=instances())
    def test_cross_product_index_matches_row_at_a_time(self, instance):
        table = CandidateTable.cross_product(instance)
        scope = (
            AtomScope.CROSS_RELATION if len(instance.relations) > 1 else AtomScope.ALL_PAIRS
        )
        universe = _universe(table, scope)
        if universe is None:
            return
        _assert_index_matches_seed(EqualityTypeIndex(universe), universe)

    @SETTINGS
    @given(instance=instances())
    def test_lazy_rows_match_seed_materialisation(self, instance):
        table = CandidateTable.cross_product(instance)
        expected = _seed_rows(instance)
        assert len(table) == len(expected)
        assert [table.row(tid) for tid in table.tuple_ids] == expected
        assert list(iter(table)) == expected
        for position, name in enumerate(table.attribute_names):
            assert table.column(name) == [row[position] for row in expected]
        # The cached flat tuple (materialised last) agrees too.
        assert list(table.rows) == expected

    @SETTINGS
    @given(instance=instances(), data=st.data())
    def test_query_evaluation_matches_row_loop(self, instance, data):
        table = CandidateTable.cross_product(instance)
        scope = (
            AtomScope.CROSS_RELATION if len(instance.relations) > 1 else AtomScope.ALL_PAIRS
        )
        universe = _universe(table, scope)
        if universe is None:
            return
        num_atoms = data.draw(
            st.integers(min_value=0, max_value=min(3, universe.size)), label="num_atoms"
        )
        atoms = data.draw(
            st.permutations(list(universe.atoms)).map(lambda order: order[:num_atoms]),
            label="atoms",
        )
        query = JoinQuery(atoms)
        position_of = {name: pos for pos, name in enumerate(table.attribute_names)}
        expected = frozenset(
            tid
            for tid, row in enumerate(_seed_rows(instance))
            if query.selects_row(row, position_of)
        )
        assert query.evaluate(table) == expected
        assert query.count_selected(table) == len(expected)

    @SETTINGS
    @given(instance=instances())
    def test_fingerprint_matches_flat_equivalent_and_is_memoised(self, instance):
        table = CandidateTable.cross_product(instance)
        flat = CandidateTable(table.attributes, _seed_rows(instance), name=table.name)
        assert table.fingerprint() == flat.fingerprint()
        assert table.fingerprint() is table.fingerprint()  # cached, not recomputed


class TestFlatAndSampledConstruction:
    @SETTINGS
    @given(instance=instances(max_relations=2), data=st.data())
    def test_sampled_cross_product_index_matches_row_at_a_time(self, instance, data):
        max_rows = data.draw(st.integers(min_value=1, max_value=8), label="max_rows")
        table = CandidateTable.cross_product(
            instance, max_rows=max_rows, rng=random.Random(7)
        )
        scope = (
            AtomScope.CROSS_RELATION if len(instance.relations) > 1 else AtomScope.ALL_PAIRS
        )
        universe = _universe(table, scope)
        if universe is None:
            return
        _assert_index_matches_seed(EqualityTypeIndex(universe), universe)

    @SETTINGS
    @given(instance=instances(max_relations=1))
    def test_single_relation_table_index_matches_row_at_a_time(self, instance):
        relation = instance.relations[0]
        table = CandidateTable.from_relation(relation)
        universe = _universe(table, AtomScope.ALL_PAIRS)
        if universe is None:
            return
        _assert_index_matches_seed(EqualityTypeIndex(universe), universe)

    @SETTINGS
    @given(instance=instances())
    def test_from_rows_single_pass_inference_matches_per_column(self, instance):
        rows = _seed_rows(instance)
        names = [f"c{i}" for i in range(len(rows[0]))] if rows else ["c0"]
        table = CandidateTable.from_rows(names, rows)
        for position, name in enumerate(names):
            expected = infer_column_type(row[position] for row in rows)
            assert table.attribute(name).data_type is expected


class TestUnencodableFallback:
    def test_unhashable_cells_fall_back_to_row_at_a_time(self):
        class Weird:
            """Equal-by-payload but unhashable — cannot be interned."""

            __hash__ = None

            def __init__(self, payload):
                self.payload = payload

            def __eq__(self, other):
                return isinstance(other, Weird) and self.payload == other.payload

        rows = [
            (Weird(1), Weird(1)),
            (Weird(1), Weird(2)),
            (None, Weird(2)),
        ]
        table = CandidateTable(
            [CandidateAttribute("left"), CandidateAttribute("right")], rows
        )
        universe = AtomUniverse.from_table(
            table, scope=AtomScope.ALL_PAIRS, require_type_compatible=False
        )
        index = EqualityTypeIndex(universe)
        assert list(index.masks) == [1, 0, 0]
        assert dict(index.type_sizes()) == {1: 1, 0: 2}
