"""Property-based tests: save → resume round-trips the *full* session kind.

A saved session document (v3) records everything that makes a session the
session it is — interaction mode, strategy, ``k``, strictness, labels — so
resuming it in a completely fresh service must produce a session that is
*observationally identical* to the original from the save point on: the same
descriptor, and the same wire-event trace for the identical remaining
command sequence.  This pins the strict-mode lifecycle bug (a lenient
session used to resume strict) against every combination of
mode × strategy × k × strict.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import CandidateTable, GoalQueryOracle, SessionService
from repro.datasets import flights_hotels
from repro.service import (
    ClusterSessionService,
    Converged,
    QuestionAsked,
    event_to_wire,
)

SETTINGS = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

#: Deterministic strategies only: a resumed session rebuilds its strategy
#: from the recorded name, so a seeded-RNG strategy would legitimately
#: diverge after resume.
GUIDED_STRATEGIES = ("lookahead-entropy", "local-lexicographic", "local-largest-type")
MODES = ("manual", "manual-with-pruning", "top-k", "guided")


def session_kwargs(mode: str, strategy: str, k: int) -> dict:
    """The mode-appropriate creation options (others must stay unset)."""
    if mode == "guided":
        return {"mode": mode, "strategy": strategy}
    if mode == "top-k":
        return {"mode": mode, "k": k}
    return {"mode": mode}


def apply_one_label(service: SessionService, session_id: str, table, oracle) -> bool:
    """Advance the session by exactly one label; False once converged."""
    event = service.next_question(session_id)
    if isinstance(event, Converged):
        return False
    if isinstance(event, QuestionAsked):
        service.answer(session_id, oracle.label(table, event.tuple_id))
    else:
        tuple_id = event.tuple_ids[0]
        service.answer(session_id, oracle.label(table, tuple_id), tuple_id=tuple_id)
    return True


def drive_to_convergence(service: SessionService, session_id: str, table, oracle) -> list[dict]:
    """The remaining wire trace of a session, driven one label at a time."""
    events: list[dict] = []
    while True:
        event = service.next_question(session_id)
        events.append(event_to_wire(event))
        if isinstance(event, Converged):
            return events
        if isinstance(event, QuestionAsked):
            applied = service.answer(session_id, oracle.label(table, event.tuple_id))
        else:
            tuple_id = event.tuple_ids[0]
            applied = service.answer(
                session_id, oracle.label(table, tuple_id), tuple_id=tuple_id
            )
        events.append(event_to_wire(applied))


@given(
    mode=st.sampled_from(MODES),
    strategy=st.sampled_from(GUIDED_STRATEGIES),
    k=st.integers(min_value=1, max_value=4),
    strict=st.booleans(),
    prefix=st.integers(min_value=0, max_value=4),
)
@SETTINGS
def test_save_resume_roundtrips_the_full_session_kind(mode, strategy, k, strict, prefix):
    table = flights_hotels.figure1_table()
    oracle = GoalQueryOracle(flights_hotels.query_q2())
    kwargs = session_kwargs(mode, strategy, k)

    service = SessionService()
    descriptor = service.create(table, strict=strict, **kwargs)
    sid = descriptor.session_id
    for _ in range(prefix):
        if not apply_one_label(service, sid, table, oracle):
            break
    document = service.save(sid)
    snapshot = service.describe(sid)

    fresh = SessionService()
    resumed = fresh.resume(document, table=flights_hotels.figure1_table())

    # The resumed session is the same *kind* of session...
    assert resumed.mode == snapshot.mode == mode
    assert resumed.strategy == snapshot.strategy
    assert resumed.k == snapshot.k
    assert resumed.strict is strict
    assert resumed.num_labels == snapshot.num_labels
    assert resumed.converged == snapshot.converged
    assert resumed.table_fingerprint == snapshot.table_fingerprint

    # ... and behaves identically from the save point on.
    original_rest = drive_to_convergence(service, sid, table, oracle)
    resumed_rest = drive_to_convergence(fresh, resumed.session_id, table, oracle)
    assert resumed_rest == original_rest


@given(
    mode=st.sampled_from(MODES),
    strategy=st.sampled_from(GUIDED_STRATEGIES),
    k=st.integers(min_value=1, max_value=4),
)
@SETTINGS
def test_lenient_sessions_accept_contradictions_before_and_after_resume(
    mode, strategy, k
):
    """The headline bug, across every mode: strict=False survives save/resume.

    ``(1,1)`` is certain-positive on the tiny table once nothing rules out
    ``a ≍ b``; after labeling it "+", ``(2,2)`` is certain-positive too, so
    labeling ``(2,2)`` "-" contradicts.  A lenient session accepts that
    label before a save — and, resumed, must accept it identically after.
    """
    table = CandidateTable.from_rows(
        ["a", "b"], [(1, 1), (1, 2), (2, 2), (3, 4)], name="tiny"
    )
    service = SessionService()
    descriptor = service.create(table, strict=False, **session_kwargs(mode, strategy, k))
    sid = descriptor.session_id
    assert descriptor.strict is False
    service.answer(sid, "+", tuple_id=0)
    document_before = service.save(sid)

    contradiction = service.answer(sid, "-", tuple_id=2)  # tolerated
    document_after = service.save(sid)
    assert document_after["strict"] is False

    # Resume the pre-contradiction snapshot in a fresh service: the same
    # contradicting label is tolerated and produces the identical event.
    fresh = SessionService()
    resumed = fresh.resume(document_before, table=table)
    assert resumed.strict is False
    assert fresh.answer(resumed.session_id, "-", tuple_id=2) == contradiction

    # The post-contradiction snapshot replays at all (a strict replay used
    # to raise InconsistentLabelError) and stays lenient.
    fresh = SessionService()
    resumed = fresh.resume(document_after, table=table)
    assert resumed.strict is False
    assert resumed.num_labels == 2


# --------------------------------------------------------------------------- #
# Crash-recovery equivalence on the supervised cluster
# --------------------------------------------------------------------------- #

#: Label steps are capped so a contradicting (never-converging) lenient
#: session still terminates; both runs share the cap, so traces compare.
MAX_STEPS = 40


@pytest.fixture(scope="module")
def cluster():
    """One supervised 2-worker in-process cluster shared by all examples."""
    with ClusterSessionService(
        num_workers=2, backend="thread", heartbeat_interval=None
    ) as service:
        yield service


def _trace_with_flips(
    service, session_id, table, oracle, flips, *, kill_step=None, cluster=None
):
    """The wire trace of a session driven with an optionally perturbed oracle.

    ``flips[i % len(flips)]`` inverts the oracle's label at step ``i``; at
    ``kill_step`` the session's worker is killed *before* the next command,
    so recovery replays mid-conversation.
    """
    events: list[dict] = []
    step = 0
    while step < MAX_STEPS:
        if cluster is not None and kill_step == step:
            cluster.kill_worker(cluster.worker_index(session_id))
        event = service.next_question(session_id)
        events.append(event_to_wire(event))
        if isinstance(event, Converged):
            break
        if isinstance(event, QuestionAsked):
            tuple_id = event.tuple_id
        else:
            tuple_id = event.tuple_ids[0]
        label = oracle.label(table, tuple_id)
        if flips and flips[step % len(flips)]:
            label = "-" if label == "+" else "+"
        applied = service.answer(session_id, label, tuple_id=tuple_id)
        events.append(event_to_wire(applied))
        step += 1
    return events


@given(
    mode=st.sampled_from(MODES),
    strategy=st.sampled_from(GUIDED_STRATEGIES),
    k=st.integers(min_value=1, max_value=4),
    strict=st.booleans(),
    kill_step=st.integers(min_value=0, max_value=6),
    flips=st.lists(st.booleans(), min_size=0, max_size=6),
)
@SETTINGS
def test_crash_recovery_is_equivalent_to_an_uninterrupted_run(
    cluster, mode, strategy, k, strict, kill_step, flips
):
    """Kill-and-replay at a random step ≡ the same run never disturbed.

    A random session kind drives a random label sequence (oracle labels,
    perturbed by ``flips`` when lenient — a strict session would reject the
    contradiction rather than record it); its worker is SIGKILL-equivalently
    severed at a random step.  The supervised cluster must respawn, replay
    the session from its write-through document, and produce a wire trace
    identical to a single-process :class:`SessionService` run of the very
    same command sequence with no crash at all.
    """
    table = flights_hotels.figure1_table()
    oracle = GoalQueryOracle(flights_hotels.query_q2())
    kwargs = session_kwargs(mode, strategy, k)
    effective_flips = [] if strict else flips

    baseline_service = SessionService()
    baseline_sid = baseline_service.create(table, strict=strict, **kwargs).session_id
    baseline = _trace_with_flips(
        baseline_service, baseline_sid, table, oracle, effective_flips
    )

    fingerprint = cluster.register_table(table)
    session_id = cluster.create(fingerprint, strict=strict, **kwargs).session_id
    try:
        trace = _trace_with_flips(
            cluster,
            session_id,
            table,
            oracle,
            effective_flips,
            kill_step=kill_step,
            cluster=cluster,
        )
    finally:
        cluster.close(session_id)
    assert trace == baseline
