"""Property-based tests: the incremental engine ≡ rebuild-from-scratch.

The incremental machinery (delta updates of the consistent space, the
per-type status cache, the batched prune counts) must be *observationally
equivalent* to the seed's from-scratch path: after any randomised sequence of
labels, an :class:`InferenceState` that applied them one delta at a time must
agree with a :class:`ConsistentQuerySpace` rebuilt from the full example set
on every question the interactive scenario asks — masks, statuses,
informative tuples, the loop guard, prune counts and propagation results.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    CandidateTable,
    ConsistentQuerySpace,
    InferenceState,
    Label,
    TupleStatus,
)
from repro.core.informativeness import classify_all
from repro.core.informativeness import has_informative_tuple as has_informative_reference
from repro.exceptions import InconsistentLabelError

SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def candidate_tables(draw, max_columns: int = 4, max_rows: int = 12) -> CandidateTable:
    """Random flat candidate tables over a small integer domain."""
    num_columns = draw(st.integers(min_value=2, max_value=max_columns))
    num_rows = draw(st.integers(min_value=1, max_value=max_rows))
    domain = draw(st.integers(min_value=2, max_value=4))
    rows = draw(
        st.lists(
            st.tuples(*[st.integers(min_value=0, max_value=domain - 1)] * num_columns),
            min_size=num_rows,
            max_size=num_rows,
        )
    )
    names = [f"c{i}" for i in range(num_columns)]
    return CandidateTable.from_rows(names, rows)


def _rebuilt_space(state: InferenceState) -> ConsistentQuerySpace:
    """The from-scratch reference: a fresh space over the same examples."""
    return ConsistentQuerySpace(state.type_index, state.examples.copy())


def _assert_equivalent(state: InferenceState) -> None:
    """The incremental state agrees with a full rebuild on every observable."""
    reference = _rebuilt_space(state)
    assert state.space.positive_mask == reference.positive_mask
    assert sorted(state.space.negative_masks) == sorted(reference.negative_masks)
    assert state.space.is_consistent() == reference.is_consistent()

    reference_statuses = classify_all(reference, state.examples)
    assert state.statuses() == reference_statuses
    assert state.informative_ids() == [
        tid for tid, status in reference_statuses.items() if status is TupleStatus.INFORMATIVE
    ]
    assert state.certain_ids() == [
        tid for tid, status in reference_statuses.items() if status.is_certain
    ]
    assert state.has_informative_tuple() == has_informative_reference(
        reference, state.examples
    )
    for tuple_id in state.table.tuple_ids:
        assert state.status(tuple_id) is reference_statuses[tuple_id]


def _apply_random_labels(state: InferenceState, labels: st.DataObject, steps: int) -> list:
    """Label random unlabeled tuples; returns the propagation results."""
    propagations = []
    for _ in range(steps):
        unlabeled = [tid for tid in state.table.tuple_ids if tid not in state.labeled_ids()]
        if not unlabeled:
            break
        tuple_id = labels.draw(st.sampled_from(unlabeled))
        positive = labels.draw(st.booleans())
        try:
            propagations.append(
                state.add_label(tuple_id, Label.POSITIVE if positive else Label.NEGATIVE)
            )
        except InconsistentLabelError:
            # Strict mode rejected a contradicting label; the state must be
            # untouched, which the equivalence check after the loop verifies.
            pass
    return propagations


class TestIncrementalEquivalence:
    @SETTINGS
    @given(table=candidate_tables(), labels=st.data())
    def test_state_matches_rebuild_after_every_label(self, table, labels):
        state = InferenceState(table)
        _assert_equivalent(state)
        steps = labels.draw(st.integers(min_value=0, max_value=min(8, len(table))))
        for _ in range(steps):
            unlabeled = [tid for tid in table.tuple_ids if tid not in state.labeled_ids()]
            if not unlabeled:
                break
            tuple_id = labels.draw(st.sampled_from(unlabeled))
            positive = labels.draw(st.booleans())
            try:
                state.add_label(tuple_id, Label.POSITIVE if positive else Label.NEGATIVE)
            except InconsistentLabelError:
                pass
            _assert_equivalent(state)

    @SETTINGS
    @given(table=candidate_tables(), labels=st.data())
    def test_non_strict_state_matches_rebuild(self, table, labels):
        # Non-strict mode can go inconsistent; the cache must then fall back
        # to full recomputation and still match the from-scratch reference.
        state = InferenceState(table, strict=False)
        steps = labels.draw(st.integers(min_value=0, max_value=min(8, len(table))))
        for _ in range(steps):
            unlabeled = [tid for tid in table.tuple_ids if tid not in state.labeled_ids()]
            if not unlabeled:
                break
            tuple_id = labels.draw(st.sampled_from(unlabeled))
            positive = labels.draw(st.booleans())
            state.add_label(tuple_id, Label.POSITIVE if positive else Label.NEGATIVE)
            _assert_equivalent(state)

    @SETTINGS
    @given(table=candidate_tables(), labels=st.data())
    def test_propagation_results_match_diff_of_rebuilt_statuses(self, table, labels):
        state = InferenceState(table)
        steps = labels.draw(st.integers(min_value=1, max_value=min(6, len(table))))
        for _ in range(steps):
            unlabeled = [tid for tid in table.tuple_ids if tid not in state.labeled_ids()]
            if not unlabeled:
                break
            tuple_id = labels.draw(st.sampled_from(unlabeled))
            positive = labels.draw(st.booleans())
            before = classify_all(_rebuilt_space(state), state.examples)
            try:
                result = state.add_label(
                    tuple_id, Label.POSITIVE if positive else Label.NEGATIVE
                )
            except InconsistentLabelError:
                continue
            after = classify_all(_rebuilt_space(state), state.examples)
            newly_positive = sorted(
                tid
                for tid, status in after.items()
                if tid != tuple_id
                and before[tid] is TupleStatus.INFORMATIVE
                and status is TupleStatus.CERTAIN_POSITIVE
            )
            newly_negative = sorted(
                tid
                for tid, status in after.items()
                if tid != tuple_id
                and before[tid] is TupleStatus.INFORMATIVE
                and status is TupleStatus.CERTAIN_NEGATIVE
            )
            assert list(result.newly_certain_positive) == newly_positive
            assert list(result.newly_certain_negative) == newly_negative
            assert result.informative_before == sum(
                1 for status in before.values() if status is TupleStatus.INFORMATIVE
            )
            assert result.informative_after == sum(
                1 for status in after.values() if status is TupleStatus.INFORMATIVE
            )

    @SETTINGS
    @given(table=candidate_tables(), labels=st.data())
    def test_prune_counts_all_matches_per_tuple_counts(self, table, labels):
        state = InferenceState(table)
        _apply_random_labels(state, labels, labels.draw(st.integers(min_value=0, max_value=3)))
        informative = state.informative_ids()
        batched = state.prune_counts_all(informative)
        assert set(batched) == set(informative)
        for tuple_id in informative:
            assert batched[tuple_id] == state.prune_counts(tuple_id)
        # ... and the counts agree with full simulation, as in the seed.
        for tuple_id in informative[:4]:
            before = set(state.informative_ids())
            plus = set(state.simulate_label(tuple_id, Label.POSITIVE).informative_ids())
            minus = set(state.simulate_label(tuple_id, Label.NEGATIVE).informative_ids())
            assert batched[tuple_id] == (len(before - plus), len(before - minus))

    @SETTINGS
    @given(table=candidate_tables(), labels=st.data())
    def test_copy_is_independent_and_equivalent(self, table, labels):
        state = InferenceState(table)
        _apply_random_labels(state, labels, labels.draw(st.integers(min_value=0, max_value=3)))
        clone = state.copy()
        _assert_equivalent(clone)
        # Mutating the clone must not leak into the original.
        unlabeled = [tid for tid in table.tuple_ids if tid not in clone.labeled_ids()]
        if unlabeled:
            snapshot = state.statuses()
            try:
                clone.add_label(unlabeled[0], Label.NEGATIVE)
            except InconsistentLabelError:
                pass
            assert state.statuses() == snapshot
            _assert_equivalent(state)
