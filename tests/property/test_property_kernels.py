"""Property-based tests: the array-backed kernels ≡ the scalar reference.

The kernels of :mod:`repro.core.kernels` are the storage and math layer of
the whole hot loop, so they get their own equivalence suite:

* the batch classification (:func:`certain_codes`) and the lookahead kernel
  (:func:`prune_counts_batch`) must agree with an independent scalar
  re-implementation of the seed's formulas on *every* backend, including
  masks past the int64 lane (where a numpy request must silently take the
  exact pure-Python path);
* the two :class:`TypeTable` implementations must stay observationally
  identical through arbitrary refresh/decrement/copy sequences, and their
  copy-on-write clones must be isolated from their parents;
* a full :class:`InferenceState` driven through randomised label sequences —
  over tables with ``None``/NaN cells and over sampled cross products — must
  produce identical statuses, prune counts and propagation results on the
  pure-Python and numpy backends.

When numpy is not installed the numpy-vs-python comparisons are skipped and
the remaining assertions pin the pure-Python path against the scalar
reference — the suite is part of the no-numpy CI job for exactly that reason.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import CandidateTable, InferenceState, Label
from repro.core.atoms import is_subset
from repro.core.informativeness import classify_all
from repro.core.kernels import (
    CERTAIN_NEGATIVE,
    CERTAIN_POSITIVE,
    HAVE_NUMPY,
    UNKNOWN,
    available_backends,
    certain_codes,
    make_type_table,
    prune_counts_batch,
    use_backend,
)
from repro.datasets.synthetic import SyntheticConfig, generate_instance
from repro.exceptions import InconsistentLabelError

SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

#: Narrow masks exercise the numpy int64 fast path; wide ones force the
#: pure-Python fallback even when numpy was requested.
NARROW_MASKS = st.integers(min_value=0, max_value=(1 << 12) - 1)
WIDE_MASKS = st.integers(min_value=0, max_value=(1 << 70) - 1)


# --------------------------------------------------------------------------- #
# Scalar reference: the seed's formulas, re-implemented independently
# --------------------------------------------------------------------------- #
def _reference_code(mask: int, positive_mask: int, negative_masks: list[int]) -> int:
    """Certain-label code per the seed's ``certain_label_for`` logic."""
    if is_subset(positive_mask, mask):
        return CERTAIN_POSITIVE
    restricted = positive_mask & mask
    if any(is_subset(restricted, neg) for neg in negative_masks):
        return CERTAIN_NEGATIVE
    return UNKNOWN


def _reference_prune_counts(
    snapshot: list[tuple[int, int]],
    candidate_type: int,
    positive_mask: int,
    negative_masks: list[int],
) -> tuple[int, int]:
    """Prune counts per the seed's per-candidate scalar loop."""
    new_positive_mask = positive_mask & candidate_type
    resolved_if_positive = 0
    resolved_if_negative = 0
    for mask, count in snapshot:
        restricted = new_positive_mask & mask
        certain_positive = is_subset(new_positive_mask, mask)
        certain_negative = any(is_subset(restricted, neg) for neg in negative_masks)
        if certain_positive or certain_negative:
            resolved_if_positive += count
        if is_subset(positive_mask & mask, candidate_type):
            resolved_if_negative += count
    return resolved_if_positive, resolved_if_negative


@st.composite
def kernel_inputs(draw, mask_strategy=NARROW_MASKS):
    """Random (masks, counts, M, N) quadruples for the batch kernels."""
    masks = draw(st.lists(mask_strategy, min_size=0, max_size=10, unique=True))
    counts = draw(
        st.lists(
            st.integers(min_value=1, max_value=50),
            min_size=len(masks),
            max_size=len(masks),
        )
    )
    positive_mask = draw(mask_strategy)
    negative_masks = draw(st.lists(mask_strategy, min_size=0, max_size=4))
    return masks, counts, positive_mask, negative_masks


# --------------------------------------------------------------------------- #
# Batch kernels vs the scalar reference
# --------------------------------------------------------------------------- #
class TestBatchKernels:
    @SETTINGS
    @given(inputs=kernel_inputs(), backend=st.sampled_from(("python", "numpy")))
    def test_certain_codes_match_reference(self, inputs, backend):
        masks, _, positive_mask, negative_masks = inputs
        expected = [_reference_code(mask, positive_mask, negative_masks) for mask in masks]
        got = list(certain_codes(masks, positive_mask, negative_masks, backend=backend))
        assert got == expected

    @SETTINGS
    @given(inputs=kernel_inputs(mask_strategy=WIDE_MASKS))
    def test_certain_codes_wide_masks_fall_back_exactly(self, inputs):
        # Masks past bit 62 must never be squeezed into the int64 lane; a
        # numpy request silently takes the exact pure-Python path.
        masks, _, positive_mask, negative_masks = inputs
        expected = [_reference_code(mask, positive_mask, negative_masks) for mask in masks]
        assert list(certain_codes(masks, positive_mask, negative_masks, backend="numpy")) == expected

    @SETTINGS
    @given(
        inputs=kernel_inputs(),
        candidate_types=st.lists(NARROW_MASKS, min_size=0, max_size=8),
        backend=st.sampled_from(("python", "numpy")),
    )
    def test_prune_counts_batch_matches_seed_formula(self, inputs, candidate_types, backend):
        masks, counts, positive_mask, negative_masks = inputs
        snapshot = list(zip(masks, counts, strict=True))
        restricted = [candidate & positive_mask for candidate in candidate_types]
        got = prune_counts_batch(
            masks, counts, restricted, positive_mask, negative_masks, backend=backend
        )
        expected = [
            _reference_prune_counts(snapshot, candidate, positive_mask, negative_masks)
            for candidate in candidate_types
        ]
        assert got == expected

    @SETTINGS
    @given(
        inputs=kernel_inputs(mask_strategy=WIDE_MASKS),
        candidate_types=st.lists(WIDE_MASKS, min_size=0, max_size=6),
    )
    def test_prune_counts_wide_masks_fall_back_exactly(self, inputs, candidate_types):
        masks, counts, positive_mask, negative_masks = inputs
        snapshot = list(zip(masks, counts, strict=True))
        restricted = [candidate & positive_mask for candidate in candidate_types]
        got = prune_counts_batch(
            masks, counts, restricted, positive_mask, negative_masks, backend="numpy"
        )
        expected = [
            _reference_prune_counts(snapshot, candidate, positive_mask, negative_masks)
            for candidate in candidate_types
        ]
        assert got == expected


# --------------------------------------------------------------------------- #
# The two TypeTable implementations stay in lock-step
# --------------------------------------------------------------------------- #
def _table_observables(table, masks):
    return (
        [table.certain_of(mask) for mask in masks],
        [table.unlabeled_of(mask) for mask in masks],
        table.informative_items(),
        table.informative_count(),
        table.has_informative(),
    )


def _random_table_ops(tables, masks, ops):
    """Drive every table through one random op sequence; flips must agree."""
    for _ in range(ops.draw(st.integers(min_value=0, max_value=6))):
        action = ops.draw(st.sampled_from(("refresh", "refresh_all", "decrement", "copy")))
        if action in ("refresh", "refresh_all"):
            positive_mask = ops.draw(NARROW_MASKS)
            negative_masks = ops.draw(st.lists(NARROW_MASKS, min_size=0, max_size=3))
            flips = [
                table.refresh_certain(
                    positive_mask, negative_masks, only_unknown=action == "refresh"
                )
                for table in tables
            ]
            assert all(flip == flips[0] for flip in flips), (
                "backends reported different flips"
            )
        elif action == "decrement":
            decrementable = [mask for mask in masks if tables[0].unlabeled_of(mask) > 0]
            if not decrementable:
                continue
            mask = ops.draw(st.sampled_from(decrementable))
            for table in tables:
                table.decrement_unlabeled(mask)
        else:
            # Copy-on-write: replace each table by its clone mid-sequence;
            # the discarded parents must not haunt the clones.
            tables = [table.copy() for table in tables]
    return tables


class TestTypeTableEquivalence:
    @pytest.mark.skipif(not HAVE_NUMPY, reason="requires the numpy backend")
    @SETTINGS
    @given(
        masks=st.lists(NARROW_MASKS, min_size=1, max_size=10, unique=True),
        sizes_seed=st.data(),
    )
    def test_python_and_numpy_tables_agree(self, masks, sizes_seed):
        sizes = sizes_seed.draw(
            st.lists(
                st.integers(min_value=0, max_value=20),
                min_size=len(masks),
                max_size=len(masks),
            )
        )
        py_table = make_type_table(masks, sizes, backend="python")
        np_table = make_type_table(masks, sizes, backend="numpy")
        assert type(py_table) is not type(np_table)
        tables = _random_table_ops([py_table, np_table], masks, sizes_seed)
        observables = {
            (tuple(c), tuple(u), tuple(items), count, has)
            for c, u, items, count, has in (
                _table_observables(table, masks) for table in tables
            )
        }
        assert len(observables) == 1, "backends diverged after the op sequence"

    @SETTINGS
    @given(
        masks=st.lists(NARROW_MASKS, min_size=1, max_size=8, unique=True),
        data=st.data(),
        backend=st.sampled_from(available_backends()),
    )
    def test_copy_on_write_isolation(self, masks, data, backend):
        sizes = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=10),
                min_size=len(masks),
                max_size=len(masks),
            )
        )
        table = make_type_table(masks, sizes, backend=backend)
        positive_mask = data.draw(NARROW_MASKS)
        negative_masks = data.draw(st.lists(NARROW_MASKS, min_size=0, max_size=3))
        table.refresh_certain(positive_mask, negative_masks)
        before = _table_observables(table, masks)

        clone = table.copy()
        assert _table_observables(clone, masks) == before
        # Mutate the clone every way there is; the parent must not move.
        clone.decrement_unlabeled(data.draw(st.sampled_from(masks)))
        clone.refresh_certain(data.draw(NARROW_MASKS), [], only_unknown=False)
        assert _table_observables(table, masks) == before
        # ... and mutating the parent must not leak into a fresh clone.
        snapshot = _table_observables(clone, masks)
        table.decrement_unlabeled(data.draw(st.sampled_from(masks)))
        assert _table_observables(clone, masks) == snapshot


# --------------------------------------------------------------------------- #
# End-to-end: inference over both backends, byte-identical
# --------------------------------------------------------------------------- #
@st.composite
def candidate_tables(draw, max_columns: int = 4, max_rows: int = 10) -> CandidateTable:
    """Random flat tables whose cells may be ``None`` or NaN."""
    num_columns = draw(st.integers(min_value=2, max_value=max_columns))
    num_rows = draw(st.integers(min_value=1, max_value=max_rows))
    domain = draw(st.integers(min_value=2, max_value=4))
    cell = st.one_of(
        st.integers(min_value=0, max_value=domain - 1),
        st.none(),
        st.just(float("nan")),
    )
    rows = draw(
        st.lists(
            st.tuples(*[cell] * num_columns),
            min_size=num_rows,
            max_size=num_rows,
        )
    )
    names = [f"c{i}" for i in range(num_columns)]
    return CandidateTable.from_rows(names, rows)


@st.composite
def sampled_tables(draw) -> CandidateTable:
    """Sampled cross products: the flat columnar path over factorized input."""
    tuples = draw(st.integers(min_value=3, max_value=8))
    config = SyntheticConfig(
        num_relations=2,
        attributes_per_relation=2,
        tuples_per_relation=tuples,
        domain_size=3,
        seed=draw(st.integers(min_value=0, max_value=5)),
    )
    import random

    max_rows = draw(st.integers(min_value=2, max_value=tuples * tuples - 1))
    return CandidateTable.cross_product(
        generate_instance(config),
        max_rows=max_rows,
        rng=random.Random(draw(st.integers(min_value=0, max_value=5))),
    )


def _state_observables(state: InferenceState):
    return (
        state.statuses(),
        state.informative_ids(),
        state.certain_ids(),
        state.has_informative_tuple(),
        state.prune_counts_all(),
        state.space.positive_mask,
        sorted(state.space.negative_masks),
    )


def _propagation_signature(result):
    return (
        tuple(result.newly_certain_positive),
        tuple(result.newly_certain_negative),
        result.informative_before,
        result.informative_after,
    )


def _run_label_sequence(table: CandidateTable, script: list[tuple[int, bool]]):
    """Replay one label script per backend; return the per-step observables."""
    per_backend = []
    for backend in available_backends():
        with use_backend(backend):
            state = InferenceState(table)
            steps = [_state_observables(state)]
            for index, positive in script:
                unlabeled = [
                    tid for tid in table.tuple_ids if tid not in state.labeled_ids()
                ]
                if not unlabeled:
                    break
                tuple_id = unlabeled[index % len(unlabeled)]
                try:
                    result = state.add_label(
                        tuple_id, Label.POSITIVE if positive else Label.NEGATIVE
                    )
                    steps.append(_propagation_signature(result))
                except InconsistentLabelError:
                    steps.append("rejected")
                steps.append(_state_observables(state))
            # The scalar classification reference must agree with the final state.
            assert state.statuses() == classify_all(state.space, state.examples)
            per_backend.append((backend, steps))
    return per_backend


LABEL_SCRIPTS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=200), st.booleans()),
    min_size=0,
    max_size=6,
)


class TestEndToEndBackendEquivalence:
    @SETTINGS
    @given(table=candidate_tables(), script=LABEL_SCRIPTS)
    def test_flat_tables_with_null_and_nan_cells(self, table, script):
        runs = _run_label_sequence(table, script)
        reference_backend, reference = runs[0]
        for backend, steps in runs[1:]:
            assert steps == reference, f"{backend} diverged from {reference_backend}"

    @SETTINGS
    @given(table=sampled_tables(), script=LABEL_SCRIPTS)
    def test_sampled_cross_products(self, table, script):
        runs = _run_label_sequence(table, script)
        reference_backend, reference = runs[0]
        for backend, steps in runs[1:]:
            assert steps == reference, f"{backend} diverged from {reference_backend}"
