"""Property-based tests for the relational substrate and the session layer."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import CandidateTable, GoalQueryOracle, JoinQuery
from repro.baselines.label_all import exhaustive_inference
from repro.baselines.random_order import RandomOrderBaseline
from repro.core.atoms import AtomUniverse
from repro.relational import DatabaseInstance, Relation
from repro.relational.csv_io import read_relation_csv_text, write_relation_csv
from repro.sessions.modes import GuidedSession, TopKSession

SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

value_columns = st.lists(
    st.integers(min_value=0, max_value=3), min_size=1, max_size=6
)


@st.composite
def small_instances(draw) -> DatabaseInstance:
    """Instances of two relations with small integer domains."""
    arity_left = draw(st.integers(min_value=1, max_value=3))
    arity_right = draw(st.integers(min_value=1, max_value=3))
    rows_left = draw(st.integers(min_value=1, max_value=5))
    rows_right = draw(st.integers(min_value=1, max_value=5))
    left = Relation.build(
        "L",
        [f"a{i}" for i in range(arity_left)],
        [
            tuple(draw(st.integers(min_value=0, max_value=3)) for _ in range(arity_left))
            for _ in range(rows_left)
        ],
    )
    right = Relation.build(
        "R",
        [f"b{i}" for i in range(arity_right)],
        [
            tuple(draw(st.integers(min_value=0, max_value=3)) for _ in range(arity_right))
            for _ in range(rows_right)
        ],
    )
    return DatabaseInstance("db", [left, right])


class TestCrossProductProperties:
    @SETTINGS
    @given(instance=small_instances())
    def test_cross_product_size_is_product_of_relation_sizes(self, instance):
        table = CandidateTable.cross_product(instance)
        assert len(table) == instance.cross_product_size()

    @SETTINGS
    @given(instance=small_instances())
    def test_cross_product_columns_are_all_base_columns(self, instance):
        table = CandidateTable.cross_product(instance)
        expected = sum(relation.arity for relation in instance)
        assert len(table.attributes) == expected
        assert table.has_provenance()

    @SETTINGS
    @given(instance=small_instances(), max_rows=st.integers(min_value=1, max_value=10))
    def test_sampling_never_invents_rows(self, instance, max_rows):
        full = CandidateTable.cross_product(instance)
        sampled = CandidateTable.cross_product(instance, max_rows=max_rows)
        assert len(sampled) == min(max_rows, len(full))
        assert set(sampled.rows) <= set(full.rows)


class TestCsvRoundTripProperties:
    @SETTINGS
    @given(
        rows=st.lists(
            st.tuples(
                st.integers(min_value=-1000, max_value=1000),
                st.text(
                    alphabet=st.characters(whitelist_categories=("Lu", "Ll"), min_codepoint=32),
                    min_size=0,
                    max_size=8,
                    # A leading marker keeps non-empty values unambiguously textual
                    # (so CSV type detection cannot reinterpret them as booleans).
                ).map(lambda s: f"x{s}" if s else s),
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_relation_csv_roundtrip(self, rows, tmp_path_factory):
        relation = Relation.build("R", ["num", "text"], rows)
        path = tmp_path_factory.mktemp("csv") / "relation.csv"
        write_relation_csv(relation, path)
        loaded = read_relation_csv_text(path.read_text(encoding="utf-8"), "R")
        # Empty strings round-trip as NULL; numbers and non-empty text survive.
        for original, reloaded in zip(relation.rows, loaded.rows, strict=True):
            assert reloaded[0] == original[0]
            assert reloaded[1] == (original[1] if original[1] != "" else None)


class TestSessionEquivalenceProperties:
    @SETTINGS
    @given(instance=small_instances(), data=st.data())
    def test_all_access_paths_agree_on_the_selected_tuples(self, instance, data):
        table = CandidateTable.cross_product(instance)
        try:
            universe = AtomUniverse.from_table(table)
        except Exception:
            return  # single-column relations may yield an empty universe
        atoms = data.draw(
            st.lists(st.sampled_from(list(universe.atoms)), min_size=1, max_size=2)
        )
        goal = JoinQuery(atoms)
        target = goal.evaluate(table)

        guided = GuidedSession(table, strategy="lookahead-minmax")
        guided.run(GoalQueryOracle(goal))
        top_k = TopKSession(table, k=2)
        top_k.run(GoalQueryOracle(goal))
        exhaustive = exhaustive_inference(table, GoalQueryOracle(goal))
        unguided = RandomOrderBaseline(seed=0).run(table, GoalQueryOracle(goal))

        assert guided.inferred_query().evaluate(table) == target
        assert top_k.inferred_query().evaluate(table) == target
        assert exhaustive.query.evaluate(table) == target
        assert unguided.query.evaluate(table) == target

    @SETTINGS
    @given(instance=small_instances(), data=st.data())
    def test_guided_session_never_asks_more_than_table_size(self, instance, data):
        table = CandidateTable.cross_product(instance)
        try:
            universe = AtomUniverse.from_table(table)
        except Exception:
            return
        atom = data.draw(st.sampled_from(list(universe.atoms)))
        goal = JoinQuery([atom])
        session = GuidedSession(table, strategy="lookahead-entropy")
        session.run(GoalQueryOracle(goal))
        assert session.num_interactions <= len(table)
        assert session.is_converged()
