"""Tests for the ``jim`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, default_goal, load_table, main, parse_goal
from repro.core.strategies import available_strategies
from repro.datasets import flights_hotels
from repro.exceptions import ReproError
from repro.relational.csv_io import write_candidate_table_csv


class TestParseGoal:
    def test_single_atom(self):
        assert parse_goal("To=City") == flights_hotels.query_q1()

    def test_multiple_atoms_and_whitespace(self):
        assert parse_goal(" To = City , Airline=Discount ") == flights_hotels.query_q2()

    @pytest.mark.parametrize("bad", ["", "To", "=City", "To=", ","])
    def test_malformed_goals_rejected(self, bad):
        with pytest.raises(ReproError):
            parse_goal(bad)


class TestLoadingAndDefaults:
    def test_builtin_datasets_load(self):
        assert len(load_table("flights", None)) == 12
        assert len(load_table("setgame", None)) == 144
        assert len(load_table("tpch", None)) > 0
        assert len(load_table("synthetic", None)) == 100

    def test_csv_overrides_dataset(self, tmp_path):
        path = tmp_path / "table.csv"
        write_candidate_table_csv(flights_hotels.figure1_table(), path)
        table = load_table("flights", str(path))
        assert len(table) == 12
        assert not table.has_provenance()

    def test_default_goals_are_well_formed(self):
        for dataset in ("flights", "setgame", "tpch", "synthetic"):
            assert len(default_goal(dataset)) >= 1

    def test_parser_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_strategies_command_lists_registry(self, capsys):
        assert main(["strategies"]) == 0
        printed = capsys.readouterr().out.split()
        assert set(printed) == set(available_strategies())

    def test_infer_with_default_goal(self, capsys):
        assert main(["infer", "--dataset", "flights"]) == 0
        out = capsys.readouterr().out
        assert "goal query" in out
        assert "inferred join query : Airline ≍ Discount ∧ City ≍ To" in out
        assert "membership queries" in out
        assert "SQL" in out

    def test_infer_with_explicit_goal_and_strategy(self, capsys):
        assert main(
            ["infer", "--dataset", "flights", "--goal", "To=City", "--strategy", "lookahead-minmax"]
        ) == 0
        out = capsys.readouterr().out
        assert "inferred join query : City ≍ To" in out

    def test_infer_on_setgame_prints_gav_mapping(self, capsys):
        assert main(
            ["infer", "--dataset", "setgame", "--goal", "Left.color=Right.color"]
        ) == 0
        out = capsys.readouterr().out
        assert "GAV mapping" in out
        assert ":- Left(" in out

    def test_infer_from_csv(self, tmp_path, capsys):
        path = tmp_path / "table.csv"
        write_candidate_table_csv(flights_hotels.figure1_table(), path)
        assert main(["infer", "--csv", str(path), "--goal", "To=City"]) == 0
        out = capsys.readouterr().out
        assert "City ≍ To" in out

    def test_max_interactions_cap(self, capsys):
        assert main(
            ["infer", "--dataset", "flights", "--goal", "To=City,Airline=Discount",
             "--strategy", "local-lexicographic", "--max-interactions", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "membership queries  : 1" in out
        assert "converged           : False" in out

    def test_unknown_strategy_reports_error(self, capsys):
        assert main(["infer", "--dataset", "flights", "--strategy", "nope"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_goal_reports_error(self, capsys):
        assert main(["infer", "--dataset", "flights", "--goal", "nonsense"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_scripted_demo_with_goal(self, capsys):
        assert main(["demo", "--dataset", "flights", "--goal", "To=City"]) == 0
        out = capsys.readouterr().out
        assert "inferred join query : City ≍ To" in out

    def test_interactive_demo_reads_stdin(self, monkeypatch, capsys):
        goal = flights_hotels.query_q2()
        table = flights_hotels.figure1_table()
        selected = goal.evaluate(table)

        def fake_input(prompt: str = "") -> str:
            out = capsys.readouterr().out
            lines = [line for line in out.splitlines() if line.startswith("Tuple #")]
            tuple_id = int(lines[-1].split("#")[1].split(":")[0])
            return "y" if tuple_id in selected else "n"

        monkeypatch.setattr("builtins.input", fake_input)
        assert main(["demo", "--dataset", "flights"]) == 0
        out = capsys.readouterr().out
        assert "inferred join query : Airline ≍ Discount ∧ City ≍ To" in out
