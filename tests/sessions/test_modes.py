"""Tests for the four interaction modes of the demonstration scenario."""

from __future__ import annotations

import pytest

from repro import (
    GoalQueryOracle,
    GuidedSession,
    InteractionMode,
    ManualSession,
    TopKSession,
)
from repro.core.strategies import LexicographicStrategy
from repro.datasets import flights_hotels
from repro.exceptions import StrategyError
from repro.sessions.modes import create_session

tid = flights_hotels.paper_tuple_id


class TestManualSessionMode1:
    def test_mode_and_no_visible_graying(self, figure1_table):
        session = ManualSession(figure1_table, gray_out=False)
        assert session.mode is InteractionMode.MANUAL
        session.label(tid(3), "+")
        assert session.visible_grayed_out() == []
        # The state still knows internally, it is just not surfaced.
        assert session.state.certain_ids()

    def test_labelable_ids_exclude_only_labeled_tuples(self, figure1_table):
        session = ManualSession(figure1_table, gray_out=False)
        session.label(tid(3), "+")
        labelable = session.labelable_ids()
        assert tid(3) not in labelable
        assert tid(4) in labelable  # uninformative but still offered in mode 1

    def test_run_labels_in_given_order_until_convergence(self, figure1_table, query_q2):
        session = ManualSession(figure1_table, gray_out=False)
        inferred = session.run(GoalQueryOracle(query_q2), order=list(figure1_table.tuple_ids))
        assert inferred.instance_equivalent(query_q2, figure1_table)
        assert session.is_converged()
        assert session.num_interactions <= len(figure1_table)


class TestManualSessionMode2:
    def test_mode_and_visible_graying(self, figure1_table):
        session = ManualSession(figure1_table, gray_out=True)
        assert session.mode is InteractionMode.MANUAL_WITH_PRUNING
        session.label(tid(12), "+")
        assert set(session.visible_grayed_out()) >= {tid(3), tid(4), tid(7)}

    def test_labelable_ids_hide_grayed_out_tuples(self, figure1_table):
        session = ManualSession(figure1_table, gray_out=True)
        session.label(tid(12), "+")
        labelable = set(session.labelable_ids())
        assert tid(3) not in labelable
        assert labelable == set(session.state.informative_ids())

    def test_graying_saves_labels_compared_to_mode_1(self, figure1_table, query_q2):
        order = list(figure1_table.tuple_ids)
        plain = ManualSession(figure1_table, gray_out=False)
        plain.run(GoalQueryOracle(query_q2), order=order)
        assisted = ManualSession(figure1_table, gray_out=True)
        assisted.run(GoalQueryOracle(query_q2), order=order)
        assert assisted.num_interactions <= plain.num_interactions
        assert assisted.inferred_query().instance_equivalent(query_q2, figure1_table)


class TestTopKSession:
    def test_propose_returns_at_most_k_informative_tuples(self, figure1_table):
        session = TopKSession(figure1_table, k=3)
        proposed = session.propose()
        assert len(proposed) == 3
        assert set(proposed) <= set(session.state.informative_ids())

    def test_propose_with_override(self, figure1_table):
        session = TopKSession(figure1_table, k=3)
        assert len(session.propose(k=5)) == 5

    def test_invalid_k_rejected(self, figure1_table):
        with pytest.raises(StrategyError):
            TopKSession(figure1_table, k=0)

    def test_run_converges_and_matches_goal(self, figure1_table, query_q2):
        session = TopKSession(figure1_table, k=3)
        inferred = session.run(GoalQueryOracle(query_q2))
        assert session.is_converged()
        assert inferred.instance_equivalent(query_q2, figure1_table)

    def test_max_rounds_cap(self, figure1_table, query_q2):
        session = TopKSession(figure1_table, k=1)
        session.run(GoalQueryOracle(query_q2), max_rounds=1)
        assert session.num_interactions == 1


class TestGuidedSession:
    def test_next_tuple_is_stable_until_answered(self, figure1_table):
        session = GuidedSession(figure1_table, strategy=LexicographicStrategy())
        first = session.next_tuple()
        assert session.next_tuple() == first
        session.answer("-")
        assert not session.is_converged()
        assert session.next_tuple() != first

    def test_step_by_step_equivalent_to_run(self, figure1_table, query_q2):
        oracle = GoalQueryOracle(query_q2)
        stepped = GuidedSession(figure1_table, strategy="lookahead-entropy")
        while not stepped.is_converged():
            tuple_id = stepped.next_tuple()
            stepped.answer(oracle.label(figure1_table, tuple_id))
        ran = GuidedSession(figure1_table, strategy="lookahead-entropy")
        ran.run(GoalQueryOracle(query_q2))
        assert stepped.num_interactions == ran.num_interactions
        assert stepped.inferred_query() == ran.inferred_query()

    def test_run_with_interaction_cap(self, figure1_table, query_q2):
        session = GuidedSession(figure1_table, strategy=LexicographicStrategy())
        session.run(GoalQueryOracle(query_q2), max_interactions=2)
        assert session.num_interactions == 2

    def test_statistics_and_benefit_available(self, figure1_table, query_q2):
        session = GuidedSession(figure1_table)
        session.run(GoalQueryOracle(query_q2))
        stats = session.statistics()
        assert stats.is_complete
        report = session.benefit_report()
        assert report.user_interactions == session.num_interactions

    def test_guided_uses_fewer_labels_than_manual(self, figure1_table, query_q2):
        manual = ManualSession(figure1_table, gray_out=False)
        manual.run(GoalQueryOracle(query_q2), order=list(figure1_table.tuple_ids))
        guided = GuidedSession(figure1_table)
        guided.run(GoalQueryOracle(query_q2))
        assert guided.num_interactions <= manual.num_interactions


class TestCreateSession:
    @pytest.mark.parametrize(
        "mode, expected_type",
        [
            (InteractionMode.MANUAL, ManualSession),
            ("manual-with-pruning", ManualSession),
            (InteractionMode.TOP_K, TopKSession),
            ("guided", GuidedSession),
        ],
    )
    def test_factory_builds_the_right_session(self, figure1_table, mode, expected_type):
        session = create_session(mode, figure1_table)
        assert isinstance(session, expected_type)

    def test_factory_mode_flags(self, figure1_table):
        assert create_session("manual", figure1_table).mode is InteractionMode.MANUAL
        assert (
            create_session("manual-with-pruning", figure1_table).mode
            is InteractionMode.MANUAL_WITH_PRUNING
        )

    def test_interactions_recorded_with_steps(self, figure1_table, query_q2):
        session = GuidedSession(figure1_table)
        session.run(GoalQueryOracle(query_q2))
        assert [interaction.step for interaction in session.interactions] == list(
            range(1, session.num_interactions + 1)
        )


class TestCreateSessionValidation:
    def test_unknown_mode_names_the_known_modes(self, figure1_table):
        with pytest.raises(ValueError, match="unknown interaction mode"):
            create_session("telepathy", figure1_table)

    def test_k_rejected_for_guided_session(self, figure1_table):
        with pytest.raises(ValueError, match="'guided' does not accept 'k'"):
            create_session("guided", figure1_table, k=3)

    def test_strategy_rejected_for_top_k_session(self, figure1_table):
        with pytest.raises(ValueError, match="'top-k' does not accept 'strategy'"):
            create_session("top-k", figure1_table, strategy="random")

    def test_unknown_kwarg_names_the_mode(self, figure1_table):
        with pytest.raises(ValueError, match="'manual' does not accept 'gray_out'"):
            create_session("manual", figure1_table, gray_out=True)

    def test_invalid_k_value_raises_strategy_error(self, figure1_table):
        with pytest.raises(StrategyError):
            create_session("top-k", figure1_table, k=0)
        with pytest.raises(StrategyError, match="positive integer"):
            create_session("top-k", figure1_table, k="five")

    def test_non_state_state_rejected(self, figure1_table):
        with pytest.raises(ValueError, match="'state' must be an InferenceState"):
            create_session("guided", figure1_table, state="not-a-state")

    def test_valid_kwargs_still_accepted(self, figure1_table):
        assert create_session("top-k", figure1_table, k=2).k == 2
        session = create_session("guided", figure1_table, strategy="random")
        assert session.strategy.name == "random"
