"""Tests for session progress statistics."""

from __future__ import annotations

import pytest

from repro import Label, SessionStatistics
from repro.datasets import flights_hotels

tid = flights_hotels.paper_tuple_id


class TestSessionStatistics:
    def test_fresh_state_has_everything_informative(self, figure1_state):
        stats = SessionStatistics.from_state(figure1_state)
        assert stats.total_tuples == 12
        assert stats.labeled == 0
        assert stats.grayed_out == 0
        assert stats.informative_remaining == 12
        assert not stats.is_complete

    def test_counts_after_one_label(self, figure1_state):
        figure1_state.add_label(tid(3), Label.POSITIVE)
        stats = SessionStatistics.from_state(figure1_state)
        assert stats.labeled_positive == 1
        assert stats.labeled_negative == 0
        assert stats.grayed_out >= 1  # at least tuple (4)
        assert stats.labeled + stats.grayed_out + stats.informative_remaining == 12

    def test_percentages_sum_to_one_hundred(self, figure1_state):
        figure1_state.add_label(tid(3), Label.POSITIVE)
        stats = SessionStatistics.from_state(figure1_state)
        assert stats.labeled_pct + stats.grayed_out_pct + stats.informative_pct == pytest.approx(
            100.0
        )

    def test_complete_after_convergence(self, figure1_state):
        figure1_state.add_label(tid(3), Label.POSITIVE)
        figure1_state.add_label(tid(7), Label.NEGATIVE)
        figure1_state.add_label(tid(8), Label.NEGATIVE)
        stats = SessionStatistics.from_state(figure1_state)
        assert stats.is_complete
        assert stats.resolved == 12

    def test_as_dict_and_summary(self, figure1_state):
        figure1_state.add_label(tid(3), Label.POSITIVE)
        stats = SessionStatistics.from_state(figure1_state)
        payload = stats.as_dict()
        assert payload["total_tuples"] == 12
        assert payload["labeled"] == 1
        assert "grayed out" in stats.summary()

    def test_empty_table_percentages_are_zero(self):
        stats = SessionStatistics(
            total_tuples=0,
            labeled_positive=0,
            labeled_negative=0,
            grayed_out=0,
            informative_remaining=0,
        )
        assert stats.labeled_pct == 0.0
        assert stats.grayed_out_pct == 0.0
        assert stats.informative_pct == 0.0
