"""Tests for saving and resuming labeling sessions."""

from __future__ import annotations

import json

import pytest

from repro import GoalQueryOracle, InferenceState, Label
from repro.datasets import flights_hotels
from repro.sessions.persistence import (
    SessionPersistenceError,
    load_session,
    resume_guided_session,
    save_session,
    serialize_state,
    table_fingerprint,
)

tid = flights_hotels.paper_tuple_id


class TestFingerprint:
    def test_same_table_same_fingerprint(self, figure1_table):
        assert table_fingerprint(figure1_table) == table_fingerprint(
            flights_hotels.figure1_table()
        )

    def test_different_rows_different_fingerprint(self, figure1_table, two_column_table):
        assert table_fingerprint(figure1_table) != table_fingerprint(two_column_table)


class TestSaveAndLoad:
    def test_roundtrip_preserves_labels_and_convergence(self, figure1_table, tmp_path):
        state = InferenceState(figure1_table)
        state.add_label(tid(3), Label.POSITIVE)
        state.add_label(tid(8), Label.NEGATIVE)
        path = tmp_path / "session.json"
        save_session(state, path)

        restored = load_session(path, flights_hotels.figure1_table())
        assert restored.examples.as_dict() == state.examples.as_dict()
        assert restored.is_converged() == state.is_converged()
        assert restored.inferred_query() == state.inferred_query()

    def test_serialized_document_is_self_describing(self, figure1_table):
        state = InferenceState(figure1_table)
        state.add_label(tid(3), Label.POSITIVE)
        payload = serialize_state(state)
        assert payload["format"] == "jim-session"
        assert payload["num_candidates"] == 12
        assert payload["labels"] == {str(tid(3)): "+"}
        json.dumps(payload)  # must be JSON-serialisable as-is

    def test_wrong_table_is_rejected(self, figure1_table, two_column_table, tmp_path):
        state = InferenceState(figure1_table)
        state.add_label(tid(3), Label.POSITIVE)
        path = tmp_path / "session.json"
        save_session(state, path)
        with pytest.raises(SessionPersistenceError):
            load_session(path, two_column_table)

    def test_fingerprint_check_can_be_disabled(self, figure1_table, tmp_path):
        state = InferenceState(figure1_table)
        state.add_label(tid(3), Label.POSITIVE)
        path = tmp_path / "session.json"
        save_session(state, path)
        reordered = flights_hotels.figure1_table().subset(list(range(12)))
        restored = load_session(path, reordered, verify_fingerprint=False)
        assert len(restored.examples) == 1

    def test_malformed_documents_rejected(self, figure1_table, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("not json", encoding="utf-8")
        with pytest.raises(SessionPersistenceError):
            load_session(path, figure1_table)
        path.write_text(json.dumps(["a", "list"]), encoding="utf-8")
        with pytest.raises(SessionPersistenceError):
            load_session(path, figure1_table)
        path.write_text(json.dumps({"format": "other"}), encoding="utf-8")
        with pytest.raises(SessionPersistenceError):
            load_session(path, figure1_table)

    def test_unsupported_version_rejected(self, figure1_table, tmp_path):
        state = InferenceState(figure1_table)
        payload = serialize_state(state)
        payload["version"] = 99
        path = tmp_path / "session.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(SessionPersistenceError):
            load_session(path, figure1_table)

    def test_bad_tuple_id_rejected(self, figure1_table, tmp_path):
        state = InferenceState(figure1_table)
        payload = serialize_state(state)
        payload["labels"] = {"not-a-number": "+"}
        path = tmp_path / "session.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(SessionPersistenceError):
            load_session(path, figure1_table)


class TestIntegrityCheck:
    """The stored convergence summary is verified against the replayed labels."""

    def _saved_payload(self, figure1_table):
        state = InferenceState(figure1_table)
        state.add_label(tid(3), Label.POSITIVE)
        state.add_label(tid(8), Label.NEGATIVE)
        return serialize_state(state)

    def test_tampered_canonical_query_rejected(self, figure1_table, tmp_path):
        payload = self._saved_payload(figure1_table)
        payload["canonical_query"] = [["Airline", "City"]]
        path = tmp_path / "session.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(SessionPersistenceError, match="canonical query"):
            load_session(path, figure1_table)

    def test_tampered_convergence_flag_rejected(self, figure1_table, tmp_path):
        payload = self._saved_payload(figure1_table)
        payload["converged"] = not payload["converged"]
        path = tmp_path / "session.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(SessionPersistenceError, match="converged"):
            load_session(path, figure1_table)

    def test_malformed_canonical_query_rejected(self, figure1_table, tmp_path):
        payload = self._saved_payload(figure1_table)
        payload["canonical_query"] = "To=City"
        path = tmp_path / "session.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(SessionPersistenceError, match="canonical_query"):
            load_session(path, figure1_table)

    def test_integrity_check_can_be_disabled(self, figure1_table, tmp_path):
        payload = self._saved_payload(figure1_table)
        payload["canonical_query"] = [["Airline", "City"]]
        path = tmp_path / "session.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        state = load_session(path, figure1_table, verify_integrity=False)
        assert len(state.examples) == 2

    def test_v1_documents_still_load_and_are_verified(self, figure1_table, tmp_path):
        # A v1 document: same fields, no "session" object or "strict" flag,
        # version 1.
        payload = self._saved_payload(figure1_table)
        payload["version"] = 1
        payload.pop("session", None)
        payload.pop("strict", None)
        path = tmp_path / "session.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        state = load_session(path, figure1_table)
        assert len(state.examples) == 2
        # Pre-v3 documents read as strict — the historical behaviour.
        assert state.strict is True
        from repro.sessions.persistence import session_options

        assert session_options(payload) == {
            "mode": "guided",
            "strategy": None,
            "k": None,
            "strict": True,
        }

    def test_malformed_session_metadata_rejected(self, figure1_table):
        from repro.sessions.persistence import session_options

        with pytest.raises(SessionPersistenceError, match="session.strategy"):
            session_options({"session": {"mode": "guided", "strategy": 5}})
        with pytest.raises(SessionPersistenceError, match="session.k"):
            session_options({"session": {"mode": "top-k", "k": "three"}})
        with pytest.raises(SessionPersistenceError, match="session.mode"):
            session_options({"session": {"mode": 7}})
        with pytest.raises(SessionPersistenceError, match="must be an object"):
            session_options({"session": ["guided"]})

    def test_v3_documents_record_the_session_kind_and_strictness(
        self, figure1_table, tmp_path
    ):
        state = InferenceState(figure1_table, strict=False)
        path = tmp_path / "session.json"
        save_session(state, path, mode="top-k", strategy=None, k=3)
        from repro.sessions.persistence import read_session_document, session_options

        document = read_session_document(path)
        assert document["version"] == 3
        assert document["strict"] is False
        assert session_options(document) == {
            "mode": "top-k",
            "strategy": None,
            "k": 3,
            "strict": False,
        }

    def test_v2_documents_still_load_as_strict(self, figure1_table, tmp_path):
        # A v2 document: session metadata but no "strict" flag, version 2.
        state = InferenceState(figure1_table)
        payload = serialize_state(state, mode="guided", strategy="lookahead-entropy")
        payload["version"] = 2
        payload.pop("strict", None)
        path = tmp_path / "session.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        restored = load_session(path, figure1_table)
        assert restored.strict is True
        from repro.sessions.persistence import session_options

        assert session_options(payload)["strict"] is True
        assert session_options(payload)["strategy"] == "lookahead-entropy"

    def test_malformed_strict_flag_rejected(self, figure1_table):
        from repro.sessions.persistence import document_strict

        with pytest.raises(SessionPersistenceError, match="strict"):
            document_strict({"strict": "yes"})

    def test_lenient_state_roundtrips_lenient(self, figure1_table, tmp_path):
        state = InferenceState(figure1_table, strict=False)
        state.add_label(tid(3), Label.POSITIVE)
        path = tmp_path / "session.json"
        save_session(state, path)
        restored = load_session(path, flights_hotels.figure1_table())
        assert restored.strict is False
        # An explicit override still wins.
        assert load_session(path, flights_hotels.figure1_table(), strict=True).strict is True


class TestResume:
    def test_resumed_guided_session_finishes_the_inference(self, figure1_table, query_q2, tmp_path):
        # First sitting: two answers, then the session is saved.
        state = InferenceState(figure1_table)
        oracle = GoalQueryOracle(query_q2)
        state.add_label(tid(3), oracle.label(figure1_table, tid(3)))
        state.add_label(tid(8), oracle.label(figure1_table, tid(8)))
        path = tmp_path / "session.json"
        save_session(state, path)

        # Second sitting: resume and run to convergence.
        session = resume_guided_session(path, flights_hotels.figure1_table(), strategy="lookahead-entropy")
        already_labeled = len(session.state.examples)
        session.run(GoalQueryOracle(query_q2))
        assert session.is_converged()
        assert session.inferred_query().instance_equivalent(query_q2, figure1_table)
        # The resumed session does not re-ask the stored labels.
        assert already_labeled == 2
        assert all(
            interaction.tuple_id not in (tid(3), tid(8)) for interaction in session.interactions
        )

    def test_resume_uses_the_recorded_strategy_by_default(self, figure1_table, tmp_path):
        state = InferenceState(figure1_table)
        path = tmp_path / "session.json"
        save_session(state, path, mode="guided", strategy="local-lexicographic")
        session = resume_guided_session(path, flights_hotels.figure1_table())
        assert session.strategy.name == "local-lexicographic"
        # An explicit strategy still wins.
        session = resume_guided_session(
            path, flights_hotels.figure1_table(), strategy="random"
        )
        assert session.strategy.name == "random"
