"""Tests for the Figure 4 "benefit of using a strategy" report."""

from __future__ import annotations

import pytest

from repro import BenefitReport, GoalQueryOracle, InferenceState
from repro.datasets import flights_hotels
from repro.sessions.benefit import compute_benefit
from repro.sessions.modes import ManualSession

tid = flights_hotels.paper_tuple_id


class TestBenefitReport:
    def test_saved_interactions_and_pct(self, query_q2):
        report = BenefitReport(
            user_interactions=10, strategy_interactions=4, strategy_name="s", inferred_query=query_q2
        )
        assert report.saved_interactions == 6
        assert report.saved_pct == pytest.approx(60.0)
        assert report.speedup == pytest.approx(2.5)

    def test_saving_never_negative(self, query_q2):
        report = BenefitReport(
            user_interactions=2, strategy_interactions=5, strategy_name="s", inferred_query=query_q2
        )
        assert report.saved_interactions == 0

    def test_degenerate_counts(self, query_q2):
        report = BenefitReport(
            user_interactions=0, strategy_interactions=0, strategy_name="s", inferred_query=query_q2
        )
        assert report.saved_pct == 0.0
        assert report.speedup == 0.0

    def test_as_dict_and_summary(self, query_q2):
        report = BenefitReport(
            user_interactions=8, strategy_interactions=3, strategy_name="lookahead-entropy",
            inferred_query=query_q2,
        )
        payload = report.as_dict()
        assert payload["saved_interactions"] == 5
        assert "lookahead-entropy" in report.summary()


class TestComputeBenefit:
    def test_replay_against_the_users_inferred_query(self, figure1_table, query_q2):
        # Simulate a user who labeled everything in table order (12 labels).
        session = ManualSession(figure1_table, gray_out=False)
        session.run(GoalQueryOracle(query_q2), order=list(figure1_table.tuple_ids))
        report = session.benefit_report(strategy="lookahead-entropy")
        assert report.user_interactions == session.num_interactions
        assert report.strategy_interactions <= report.user_interactions
        assert report.saved_interactions >= 0

    def test_explicit_goal_overrides_inferred_query(self, figure1_table, query_q1, query_q2):
        state = InferenceState(figure1_table)
        state.add_label(tid(3), "+")
        report = compute_benefit(state, user_interactions=1, goal=query_q2)
        assert report.inferred_query == query_q2

    def test_strategy_object_accepted(self, figure1_table, query_q2):
        from repro.core.strategies import MinMaxPruneStrategy

        state = InferenceState(figure1_table)
        state.add_label(tid(3), "+")
        state.add_label(tid(7), "-")
        state.add_label(tid(8), "-")
        report = compute_benefit(state, user_interactions=3, strategy=MinMaxPruneStrategy())
        assert report.strategy_name == "lookahead-minmax"
        assert report.strategy_interactions >= 1
