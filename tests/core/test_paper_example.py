"""Pin every claim of the paper's Section 2 worked example (Figure 1).

These tests are the reproduction's ground truth: each assertion corresponds to
a sentence of the paper's motivating example, so any change to the inference
model that breaks the paper's semantics fails here first.
"""

from __future__ import annotations

import pytest

from repro import (
    EqualityAtom,
    GoalQueryOracle,
    InferenceState,
    JoinInferenceEngine,
    Label,
    TupleStatus,
)
from repro.core.strategies import available_strategies
from repro.datasets import flights_hotels

tid = flights_hotels.paper_tuple_id


class TestFigure1Data:
    def test_twelve_candidate_tuples(self, figure1_table):
        assert len(figure1_table) == 12

    def test_columns_in_paper_order(self, figure1_table):
        assert figure1_table.attribute_names == ("From", "To", "Airline", "City", "Discount")

    def test_tuple_3_is_paris_lille_af_lille_af(self, figure1_table):
        assert figure1_table.row(tid(3)) == ("Paris", "Lille", "AF", "Lille", "AF")

    def test_tuple_8_is_nyc_paris_aa_paris_none(self, figure1_table):
        assert figure1_table.row(tid(8)) == ("NYC", "Paris", "AA", "Paris", None)

    def test_cross_product_of_flights_and_hotels(self, figure1_table, travel_instance):
        assert len(figure1_table) == travel_instance.cross_product_size()


class TestGoalQueries:
    def test_q1_selects_tuples_3_4_8_10(self, figure1_table, query_q1):
        assert sorted(query_q1.evaluate(figure1_table)) == [tid(3), tid(4), tid(8), tid(10)]

    def test_q2_selects_tuples_3_and_4(self, figure1_table, query_q2):
        assert sorted(query_q2.evaluate(figure1_table)) == [tid(3), tid(4)]

    def test_q2_contained_in_q1(self, query_q1, query_q2):
        # "query Q2 is contained in Q1": every tuple selected by Q2 is selected by Q1.
        assert query_q2.implies(query_q1)
        assert not query_q1.implies(query_q2)

    def test_q1_and_q2_both_select_tuple_3(self, figure1_table, query_q1, query_q2):
        assert query_q1.selects(figure1_table, tid(3))
        assert query_q2.selects(figure1_table, tid(3))

    def test_tuple_8_distinguishes_q1_from_q2(self, figure1_table, query_q1, query_q2):
        # "a tuple whose labeling can distinguish between Q1 and Q2 is the tuple (8)
        #  because Q1 selects it and Q2 does not"
        assert query_q1.selects(figure1_table, tid(8))
        assert not query_q2.selects(figure1_table, tid(8))


class TestLabelingTuple3:
    """Claims made after the user labels tuple (3) positively."""

    @pytest.fixture
    def state(self, figure1_table):
        state = InferenceState(figure1_table)
        state.add_label(tid(3), Label.POSITIVE)
        return state

    def test_both_queries_remain_consistent(self, state, query_q1, query_q2):
        assert state.space.admits(query_q1)
        assert state.space.admits(query_q2)

    def test_tuple_4_becomes_uninformative(self, state):
        # "the labeling of the tuple (4) does not contribute any new information"
        assert state.status(tid(4)) is TupleStatus.CERTAIN_POSITIVE

    def test_labeling_tuple_4_would_keep_both_queries(self, state, query_q1, query_q2):
        follow_up = state.simulate_label(tid(4), Label.POSITIVE)
        assert follow_up.space.admits(query_q1)
        assert follow_up.space.admits(query_q2)

    def test_tuple_8_still_informative(self, state):
        assert state.status(tid(8)) is TupleStatus.INFORMATIVE

    def test_negative_label_on_8_returns_q2(self, state, query_q2, figure1_table):
        # "If the user labels the tuple (8) with −, then the query Q2 is returned"
        state.add_label(tid(8), Label.NEGATIVE)
        # The canonical query may contain extra implied atoms; what matters is
        # instance-equivalence with Q2 (and that Q1 is no longer consistent).
        assert state.inferred_query().instance_equivalent(query_q2, figure1_table)

    def test_positive_label_on_8_returns_q1(self, state, query_q1, figure1_table):
        # "otherwise Q1 is returned"
        state.add_label(tid(8), Label.POSITIVE)
        assert state.inferred_query().instance_equivalent(query_q1, figure1_table)

    def test_positive_examples_alone_cannot_distinguish(self, state, query_q1, query_q2):
        # "the use of only positive examples is not sufficient": after any
        # further positive label both Q1 and Q2 would still be consistent as
        # long as Q2 selects the labeled tuple.
        for tuple_id in state.informative_ids():
            if query_q2.selects(state.table, tuple_id):
                follow_up = state.simulate_label(tuple_id, Label.POSITIVE)
                assert follow_up.space.admits(query_q1)
                assert follow_up.space.admits(query_q2)


class TestLabelingTuple12:
    """The pruning example: the effect of labeling tuple (12) on the fresh instance."""

    def test_positive_label_grays_out_3_4_7(self, figure1_table):
        state = InferenceState(figure1_table)
        propagation = state.add_label(tid(12), Label.POSITIVE)
        assert set(propagation.newly_uninformative) == {tid(3), tid(4), tid(7)}

    def test_negative_label_grays_out_1_5_9(self, figure1_table):
        state = InferenceState(figure1_table)
        propagation = state.add_label(tid(12), Label.NEGATIVE)
        assert set(propagation.newly_uninformative) == {tid(1), tid(5), tid(9)}

    def test_positive_branch_marks_them_certain_positive(self, figure1_table):
        state = InferenceState(figure1_table)
        state.add_label(tid(12), Label.POSITIVE)
        for number in (3, 4, 7):
            assert state.status(tid(number)) is TupleStatus.CERTAIN_POSITIVE

    def test_negative_branch_marks_them_certain_negative(self, figure1_table):
        state = InferenceState(figure1_table)
        state.add_label(tid(12), Label.NEGATIVE)
        for number in (1, 5, 9):
            assert state.status(tid(number)) is TupleStatus.CERTAIN_NEGATIVE


class TestConvergenceOnQ2:
    def test_labels_3_7_8_identify_q2(self, figure1_table, query_q2):
        # "assuming that (3) is a positive example, and (7) and (8) are negative
        #  examples, there is only one consistent join predicate (i.e., Q2)"
        state = InferenceState(figure1_table)
        state.add_label(tid(3), Label.POSITIVE)
        state.add_label(tid(7), Label.NEGATIVE)
        state.add_label(tid(8), Label.NEGATIVE)
        assert state.is_converged()
        assert state.inferred_query().instance_equivalent(query_q2, figure1_table)

    def test_all_remaining_consistent_queries_are_instance_equivalent(
        self, figure1_table, query_q2
    ):
        state = InferenceState(figure1_table)
        state.add_label(tid(3), Label.POSITIVE)
        state.add_label(tid(7), Label.NEGATIVE)
        state.add_label(tid(8), Label.NEGATIVE)
        selected_by_q2 = query_q2.evaluate(figure1_table)
        for query in state.space.consistent_queries():
            assert query.evaluate(figure1_table) == selected_by_q2

    @pytest.mark.parametrize("strategy", sorted(available_strategies()))
    def test_every_strategy_infers_q2(self, figure1_table, query_q2, strategy):
        engine = JoinInferenceEngine(figure1_table, strategy=strategy)
        result = engine.run(GoalQueryOracle(query_q2))
        assert result.converged
        assert result.matches_goal(query_q2)
        assert result.num_interactions <= len(figure1_table)

    @pytest.mark.parametrize("strategy", sorted(available_strategies()))
    def test_every_strategy_infers_q1(self, figure1_table, query_q1, strategy):
        engine = JoinInferenceEngine(figure1_table, strategy=strategy)
        result = engine.run(GoalQueryOracle(query_q1))
        assert result.converged
        assert result.matches_goal(query_q1)

    def test_guided_inference_needs_few_interactions(self, figure1_table, query_q2):
        engine = JoinInferenceEngine(figure1_table, strategy="lookahead-minmax")
        result = engine.run(GoalQueryOracle(query_q2))
        # The paper's point: a handful of membership queries instead of 12 labels.
        assert result.num_interactions <= 5


class TestAtomUniverseOfFigure1:
    def test_six_cross_relation_atoms(self, figure1_universe):
        assert figure1_universe.size == 6

    def test_contains_the_atoms_of_q1_and_q2(self, figure1_universe):
        assert EqualityAtom.of("To", "City") in figure1_universe
        assert EqualityAtom.of("Airline", "Discount") in figure1_universe

    def test_no_intra_relation_atoms(self, figure1_universe):
        assert EqualityAtom.of("From", "To") not in figure1_universe
        assert EqualityAtom.of("City", "Discount") not in figure1_universe
