"""Tests for label propagation results."""

from __future__ import annotations

from repro import InferenceState, Label, PropagationResult, TupleStatus
from repro.core import diff_statuses
from repro.datasets import flights_hotels

tid = flights_hotels.paper_tuple_id


class TestPropagationResult:
    def test_newly_uninformative_merges_and_sorts(self):
        result = PropagationResult(
            tuple_id=0,
            label=Label.POSITIVE,
            newly_certain_positive=(5, 1),
            newly_certain_negative=(3,),
        )
        assert result.newly_uninformative == (1, 3, 5)
        assert result.pruned_count == 3

    def test_resolved_count(self):
        result = PropagationResult(
            tuple_id=0,
            label=Label.NEGATIVE,
            informative_before=10,
            informative_after=6,
        )
        assert result.resolved_count == 4

    def test_summary_mentions_label_and_counts(self):
        result = PropagationResult(tuple_id=2, label=Label.POSITIVE, informative_after=7)
        summary = result.summary()
        assert "tuple 2" in summary
        assert "+" in summary
        assert "7" in summary


class TestDiffStatuses:
    def test_only_previously_informative_tuples_counted(self):
        before = {0: TupleStatus.INFORMATIVE, 1: TupleStatus.CERTAIN_POSITIVE, 2: TupleStatus.INFORMATIVE}
        after = {0: TupleStatus.LABELED_POSITIVE, 1: TupleStatus.CERTAIN_POSITIVE, 2: TupleStatus.CERTAIN_POSITIVE}
        result = diff_statuses(before, after, labeled_tuple_id=0, label=Label.POSITIVE)
        assert result.newly_certain_positive == (2,)
        assert result.newly_certain_negative == ()
        assert result.informative_before == 2
        assert result.informative_after == 0

    def test_labeled_tuple_excluded_from_pruned(self):
        before = {0: TupleStatus.INFORMATIVE}
        after = {0: TupleStatus.LABELED_NEGATIVE}
        result = diff_statuses(before, after, labeled_tuple_id=0, label=Label.NEGATIVE)
        assert result.pruned_count == 0
        assert result.resolved_count == 1


class TestEndToEndPropagation:
    def test_figure1_positive_branch(self, figure1_table):
        state = InferenceState(figure1_table)
        result = state.add_label(tid(12), Label.POSITIVE)
        assert result.label is Label.POSITIVE
        assert set(result.newly_certain_positive) == {tid(3), tid(4), tid(7)}
        assert result.newly_certain_negative == ()
        assert result.consistent
        assert result.informative_before == 12
        assert result.informative_after == 12 - 4  # the labeled tuple + 3 pruned

    def test_figure1_negative_branch(self, figure1_table):
        state = InferenceState(figure1_table)
        result = state.add_label(tid(12), Label.NEGATIVE)
        assert set(result.newly_certain_negative) == {tid(1), tid(5), tid(9)}
        assert result.newly_certain_positive == ()

    def test_pruned_counts_accumulate_to_full_resolution(self, figure1_table, query_q2):
        from repro import GoalQueryOracle, JoinInferenceEngine

        engine = JoinInferenceEngine(figure1_table, strategy="lookahead-entropy")
        result = engine.run(GoalQueryOracle(query_q2))
        resolved = sum(p.resolved_count for p in result.trace.propagations)
        assert resolved == len(figure1_table)
