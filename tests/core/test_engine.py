"""Tests for the interactive inference engine (the Figure 2 loop)."""

from __future__ import annotations

import time

import pytest

from repro import (
    CandidateTable,
    GoalQueryOracle,
    InferenceState,
    JoinInferenceEngine,
    JoinQuery,
    Label,
    infer_join,
)
from repro.core.oracle import Oracle
from repro.core.strategies import LexicographicStrategy, RandomStrategy
from repro.datasets import flights_hotels
from repro.exceptions import ConvergenceError

tid = flights_hotels.paper_tuple_id


class TestEngineRuns:
    def test_converges_and_matches_goal(self, figure1_table, query_q2):
        result = JoinInferenceEngine(figure1_table, strategy="lookahead-entropy").run(
            GoalQueryOracle(query_q2)
        )
        assert result.converged
        assert result.matches_goal(query_q2)
        assert result.strategy_name == "lookahead-entropy"

    def test_oracle_only_asked_about_informative_tuples(self, figure1_table, query_q2):
        engine = JoinInferenceEngine(figure1_table, strategy="lookahead-minmax")
        oracle = GoalQueryOracle(query_q2)
        result = engine.run(oracle)
        assert oracle.questions_answered == result.num_interactions

    def test_interactions_never_exceed_table_size(self, figure1_table, query_q1):
        for strategy in ("random", "local-most-specific", "lookahead-entropy"):
            result = JoinInferenceEngine(figure1_table, strategy=strategy).run(
                GoalQueryOracle(query_q1)
            )
            assert 1 <= result.num_interactions <= len(figure1_table)

    def test_selected_tuples_match_goal_selection(self, figure1_table, query_q2):
        result = infer_join(figure1_table, GoalQueryOracle(query_q2))
        assert result.selected_tuples() == query_q2.evaluate(figure1_table)

    def test_empty_goal_query_inferrable(self, figure1_table):
        empty_goal = JoinQuery.empty()
        result = infer_join(figure1_table, GoalQueryOracle(empty_goal))
        assert result.converged
        assert result.matches_goal(empty_goal)

    def test_trace_records_every_interaction(self, figure1_table, query_q2):
        result = infer_join(figure1_table, GoalQueryOracle(query_q2))
        trace = result.trace
        assert trace.num_interactions == len(trace.interactions) == len(trace.propagations)
        assert [i.step for i in trace.interactions] == list(range(1, trace.num_interactions + 1))
        assert trace.total_seconds >= 0.0
        assert set(trace.labels()) <= set(figure1_table.tuple_ids)

    def test_interaction_as_dict(self, figure1_table, query_q2):
        result = infer_join(figure1_table, GoalQueryOracle(query_q2))
        record = result.trace.interactions[0].as_dict()
        assert {"step", "tuple_id", "label", "pruned", "informative_remaining"} <= set(record)

    def test_summary_mentions_strategy_and_query(self, figure1_table, query_q2):
        result = infer_join(figure1_table, GoalQueryOracle(query_q2), strategy="random")
        summary = result.summary()
        assert "random" in summary
        assert "interaction" in summary


class TestInterruption:
    def test_max_interactions_stops_early(self, figure1_table, query_q2):
        engine = JoinInferenceEngine(figure1_table, strategy=LexicographicStrategy())
        result = engine.run(GoalQueryOracle(query_q2), max_interactions=1)
        assert not result.converged
        assert result.num_interactions == 1

    def test_require_convergence_raises(self, figure1_table, query_q2):
        engine = JoinInferenceEngine(figure1_table, strategy=LexicographicStrategy())
        with pytest.raises(ConvergenceError):
            engine.run(GoalQueryOracle(query_q2), max_interactions=1, require_convergence=True)

    def test_initial_state_is_continued(self, figure1_table, query_q2):
        engine = JoinInferenceEngine(figure1_table, strategy="lookahead-entropy")
        state = InferenceState(figure1_table)
        state.add_label(tid(3), Label.POSITIVE)
        result = engine.run(GoalQueryOracle(query_q2), initial_state=state)
        assert result.converged
        assert result.matches_goal(query_q2)
        # The pre-labeled example is not re-asked.
        assert tid(3) not in result.trace.labels()

    def test_initial_state_over_equal_reloaded_table_accepted(self, figure1_table, query_q2):
        # Resuming a persisted session reloads an equal (but distinct) table
        # object; structural equality must be enough.
        reloaded = CandidateTable(
            figure1_table.attributes, [list(row) for row in figure1_table.rows]
        )
        engine = JoinInferenceEngine(figure1_table, strategy="lookahead-entropy")
        state = InferenceState(reloaded)
        state.add_label(tid(3), Label.POSITIVE)
        result = engine.run(GoalQueryOracle(query_q2), initial_state=state)
        assert result.converged
        assert result.matches_goal(query_q2)

    def test_initial_state_over_other_table_rejected(self, figure1_table, query_q2):
        # Regression: a state built over a different table used to be accepted
        # silently, making the oracle answer about the wrong tuples.
        engine = JoinInferenceEngine(figure1_table, strategy="lookahead-entropy")
        other_table = CandidateTable.from_rows(["a", "b"], [(1, 1), (1, 2)])
        foreign_state = InferenceState(other_table)
        with pytest.raises(ValueError):
            engine.run(GoalQueryOracle(query_q2), initial_state=foreign_state)

    def test_initial_state_with_other_universe_rejected(self, figure1_table, query_q2):
        from repro import AtomUniverse

        engine = JoinInferenceEngine(figure1_table, strategy="lookahead-entropy")
        narrow = AtomUniverse.from_table(figure1_table, include_attributes=["To", "City"])
        foreign_state = InferenceState(figure1_table, universe=narrow)
        with pytest.raises(ValueError):
            engine.run(GoalQueryOracle(query_q2), initial_state=foreign_state)


class _SlowOracle(Oracle):
    """Wraps a goal oracle and sleeps before answering (simulated think-time)."""

    def __init__(self, goal: JoinQuery, delay: float) -> None:
        self._inner = GoalQueryOracle(goal)
        self.delay = delay

    def label(self, table: CandidateTable, tuple_id: int) -> Label:
        time.sleep(self.delay)
        return self._inner.label(table, tuple_id)


class TestTimingSeparation:
    def test_oracle_think_time_not_counted_as_engine_time(self, figure1_table, query_q2):
        # Regression: elapsed_seconds used to wrap oracle.label(), so human
        # think-time silently inflated every timing experiment.
        delay = 0.05
        engine = JoinInferenceEngine(figure1_table, strategy="lookahead-entropy")
        result = engine.run(_SlowOracle(query_q2, delay))
        trace = result.trace
        assert trace.num_interactions >= 1
        for interaction in trace.interactions:
            assert interaction.oracle_seconds >= delay
            assert interaction.elapsed_seconds < delay
        assert trace.total_oracle_seconds >= delay * trace.num_interactions
        assert trace.total_seconds < delay * trace.num_interactions

    def test_interaction_dict_exposes_oracle_seconds(self, figure1_table, query_q2):
        result = infer_join(figure1_table, GoalQueryOracle(query_q2))
        record = result.trace.interactions[0].as_dict()
        assert "oracle_seconds" in record
        assert record["oracle_seconds"] >= 0.0


class TestEngineConfiguration:
    def test_default_strategy_is_entropy_lookahead(self, figure1_table):
        assert JoinInferenceEngine(figure1_table).strategy.name == "lookahead-entropy"

    def test_strategy_instance_used_verbatim(self, figure1_table):
        strategy = RandomStrategy(seed=3)
        engine = JoinInferenceEngine(figure1_table, strategy=strategy)
        assert engine.strategy is strategy

    def test_single_row_full_type_converges_without_questions(self):
        # The sole tuple satisfies the only atom, so every query agrees on it.
        table = CandidateTable.from_rows(["x", "y"], [(1, 1)])
        result = infer_join(table, GoalQueryOracle(JoinQuery.of(("x", "y"))))
        assert result.converged
        assert result.num_interactions == 0
        assert result.matches_goal(JoinQuery.of(("x", "y")))

    def test_single_row_table_needs_one_question(self):
        table = CandidateTable.from_rows(["x", "y"], [(1, 2)])
        result = infer_join(table, GoalQueryOracle(JoinQuery.of(("x", "y"))))
        assert result.converged
        assert result.num_interactions == 1

    def test_deterministic_given_seeded_random_strategy(self, figure1_table, query_q2):
        first = JoinInferenceEngine(figure1_table, strategy=RandomStrategy(seed=11)).run(
            GoalQueryOracle(query_q2)
        )
        second = JoinInferenceEngine(figure1_table, strategy=RandomStrategy(seed=11)).run(
            GoalQueryOracle(query_q2)
        )
        assert [i.tuple_id for i in first.trace.interactions] == [
            i.tuple_id for i in second.trace.interactions
        ]
