"""Tests for the executor layer: mode resolution, pool lifecycle, worker tasks."""

from __future__ import annotations

import pytest

from repro.core import parallel
from repro.core.kernels import HAVE_NUMPY


@pytest.fixture(autouse=True)
def _clean_executors():
    yield
    parallel.shutdown_executors()


class TestModeResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        assert parallel.parallel_mode() == "serial"
        assert not parallel.parallel_enabled()

    def test_environment_variable_selects_the_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "thread")
        assert parallel.parallel_mode() == "thread"
        assert parallel.parallel_enabled()

    def test_invalid_environment_mode_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "gpu")
        with pytest.raises(ValueError, match="unknown parallel mode"):
            parallel.parallel_mode()

    def test_scope_overrides_environment_and_restores(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "thread")
        with parallel.parallel_scope("process"):
            assert parallel.parallel_mode() == "process"
            with parallel.parallel_scope("serial"):
                assert parallel.parallel_mode() == "serial"
            assert parallel.parallel_mode() == "process"
        assert parallel.parallel_mode() == "thread"

    def test_scope_rejects_unknown_modes(self):
        with pytest.raises(ValueError, match="unknown parallel mode"):
            parallel.parallel_scope("fibers")

    def test_auto_resolves_by_numpy_availability(self):
        with parallel.parallel_scope("auto"):
            assert parallel.parallel_mode() == ("thread" if HAVE_NUMPY else "process")

    def test_shard_count_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL_SHARDS", raising=False)
        assert parallel.shard_count() == parallel.available_cpus()
        monkeypatch.setenv("REPRO_PARALLEL_SHARDS", "6")
        assert parallel.shard_count() == 6
        with parallel.parallel_scope("serial", shards=3):
            assert parallel.shard_count() == 3
        assert parallel.shard_count() == 6


class TestParallelExecutor:
    def test_pool_starts_lazily_and_single_payloads_skip_it(self):
        with parallel.ParallelExecutor("thread", max_workers=2) as executor:
            assert not executor.started
            assert executor.map(lambda x: x + 1, []) == []
            assert executor.map(lambda x: x + 1, [41]) == [42]
            assert not executor.started  # one payload cannot fan out
            assert executor.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]
            assert executor.started

    def test_closed_executor_refuses_work(self):
        executor = parallel.ParallelExecutor("thread", max_workers=2)
        executor.close()
        executor.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            executor.map(lambda x: x, [1, 2])

    def test_rejects_serial_mode(self):
        with pytest.raises(ValueError, match="'thread' or 'process'"):
            parallel.ParallelExecutor("serial")

    def test_get_executor_is_shared_per_mode_and_rejects_serial(self):
        first = parallel.get_executor("thread")
        assert parallel.get_executor("thread") is first
        with pytest.raises(ValueError, match="serial"):
            parallel.get_executor("serial")
        parallel.shutdown_executors()
        assert parallel.get_executor("thread") is not first


class TestWorkerTask:
    def _payload(self, **overrides):
        payload = {
            "fingerprint": "f" * 12,
            "shard": 0,
            "span": (0, 2),
            "info_local": [0, 1],
            "info_counts": [3, 5],
            "candidates": [0b01, 0b11],
            "positive_mask": 0b11,
            "negative_masks": (),
            "backend": "python",
        }
        payload.update(overrides)
        return payload

    def test_cache_miss_then_resend_with_masks(self):
        payload = self._payload(fingerprint="never-shipped")
        assert parallel.prune_shard_task(payload) == ("miss", None)
        status, counts = parallel.prune_shard_task(self._payload(
            fingerprint="never-shipped", masks=(0b01, 0b11)
        ))
        assert status == "ok"
        # Cached now: the same call without the column succeeds.
        status_again, counts_again = parallel.prune_shard_task(payload)
        assert status_again == "ok" and counts_again == counts

    def test_merge_partial_counts_sums_elementwise(self):
        assert parallel.merge_partial_counts([]) == []
        assert parallel.merge_partial_counts([[(1, 2), (3, 4)]]) == [(1, 2), (3, 4)]
        assert parallel.merge_partial_counts(
            [[(1, 2), (3, 4)], [(10, 20), (30, 40)]]
        ) == [(11, 22), (33, 44)]
