"""Tests for the exponential optimal strategy."""

from __future__ import annotations

import pytest

from repro import (
    AtomUniverse,
    GoalQueryOracle,
    InferenceState,
    JoinInferenceEngine,
)
from repro.core.strategies import MinMaxPruneStrategy, OptimalStrategy, create_strategy
from repro.datasets import flights_hotels
from repro.datasets.synthetic import SyntheticConfig, all_goal_queries, generate_candidate_table
from repro.exceptions import StrategyError


class TestValueFunction:
    def test_value_zero_when_converged(self, figure1_table, query_q2):
        state = InferenceState(figure1_table)
        tid = flights_hotels.paper_tuple_id
        state.add_label(tid(3), "+")
        state.add_label(tid(7), "-")
        state.add_label(tid(8), "-")
        assert OptimalStrategy().value(state) == 0

    def test_value_positive_on_fresh_figure1(self, figure1_state):
        strategy = OptimalStrategy()
        value = strategy.value(figure1_state)
        assert 1 <= value <= len(figure1_state.table)

    def test_worst_case_of_heuristics_never_beats_optimal(self, figure1_table):
        """No goal query can force the optimal tree deeper than its value."""
        optimal_value = OptimalStrategy().value(InferenceState(figure1_table))
        universe = AtomUniverse.from_table(figure1_table)
        worst = 0
        for goal in all_goal_queries(figure1_table, 1, universe) + all_goal_queries(
            figure1_table, 2, universe
        ):
            engine = JoinInferenceEngine(figure1_table, strategy=OptimalStrategy())
            result = engine.run(GoalQueryOracle(goal))
            worst = max(worst, result.num_interactions)
        assert worst <= optimal_value

    def test_state_budget_enforced(self, figure1_state):
        with pytest.raises(StrategyError):
            OptimalStrategy(max_states=1).value(figure1_state)

    def test_invalid_budget_rejected(self):
        with pytest.raises(StrategyError):
            OptimalStrategy(max_states=0)


class TestOptimalChoice:
    def test_choice_is_informative(self, figure1_state):
        assert OptimalStrategy().choose(figure1_state) in figure1_state.informative_ids()

    def test_optimal_never_worse_than_minmax_on_tiny_instance(self):
        table = generate_candidate_table(
            SyntheticConfig(
                num_relations=2, attributes_per_relation=2, tuples_per_relation=4, domain_size=2, seed=2
            )
        )
        universe = AtomUniverse.from_table(table)
        for goal in all_goal_queries(table, 1, universe):
            if not goal.evaluate(table):
                continue
            optimal_run = JoinInferenceEngine(table, strategy=OptimalStrategy()).run(
                GoalQueryOracle(goal)
            )
            assert optimal_run.matches_goal(goal)
            # The optimal *worst case* bounds the heuristic's worst case; on any
            # single goal the heuristic may tie but the optimal may not be
            # beaten by more than the minmax run on the same goal... the robust
            # check is on the maxima, done below.
        optimal_worst = max(
            JoinInferenceEngine(table, strategy=OptimalStrategy())
            .run(GoalQueryOracle(goal))
            .num_interactions
            for goal in all_goal_queries(table, 1, universe)
        )
        minmax_worst = max(
            JoinInferenceEngine(table, strategy=MinMaxPruneStrategy())
            .run(GoalQueryOracle(goal))
            .num_interactions
            for goal in all_goal_queries(table, 1, universe)
        )
        assert optimal_worst <= minmax_worst

    def test_registry_builds_optimal(self):
        assert isinstance(create_strategy("optimal"), OptimalStrategy)

    def test_reset_clears_memoisation(self, figure1_state):
        strategy = OptimalStrategy()
        strategy.value(figure1_state)
        assert strategy._memo
        strategy.reset()
        assert not strategy._memo

    def test_two_column_table_needs_at_most_two_questions(self, two_column_table):
        strategy = OptimalStrategy()
        state = InferenceState(two_column_table)
        assert strategy.value(state) <= 2

    def test_converges_on_figure1_for_q2(self, figure1_table, query_q2):
        result = JoinInferenceEngine(figure1_table, strategy=OptimalStrategy()).run(
            GoalQueryOracle(query_q2)
        )
        assert result.converged
        assert result.matches_goal(query_q2)
