"""Tests for the random strategy and the strategy registry."""

from __future__ import annotations

import pytest

from repro import GoalQueryOracle, JoinInferenceEngine, Label
from repro.core.strategies import (
    LOCAL_STRATEGIES,
    LOOKAHEAD_STRATEGIES,
    RandomStrategy,
    Strategy,
    available_strategies,
    create_strategy,
    register_strategy,
)
from repro.core.strategies.registry import _REGISTRY
from repro.datasets import flights_hotels
from repro.exceptions import StrategyError

tid = flights_hotels.paper_tuple_id


class TestRandomStrategy:
    def test_chooses_only_informative_tuples(self, figure1_state):
        figure1_state.add_label(tid(12), Label.NEGATIVE)
        informative = set(figure1_state.informative_ids())
        strategy = RandomStrategy(seed=5)
        for _ in range(20):
            assert strategy.choose(figure1_state) in informative

    def test_seed_makes_choices_reproducible(self, figure1_state):
        first = RandomStrategy(seed=7)
        second = RandomStrategy(seed=7)
        assert [first.choose(figure1_state) for _ in range(5)] == [
            second.choose(figure1_state) for _ in range(5)
        ]

    def test_reset_restores_the_sequence(self, figure1_state):
        strategy = RandomStrategy(seed=3)
        sequence = [strategy.choose(figure1_state) for _ in range(5)]
        strategy.reset()
        assert [strategy.choose(figure1_state) for _ in range(5)] == sequence

    def test_raises_when_converged(self, figure1_state):
        figure1_state.add_label(tid(3), Label.POSITIVE)
        figure1_state.add_label(tid(7), Label.NEGATIVE)
        figure1_state.add_label(tid(8), Label.NEGATIVE)
        with pytest.raises(StrategyError):
            RandomStrategy(seed=0).choose(figure1_state)

    def test_converges_on_figure1(self, figure1_table, query_q2):
        result = JoinInferenceEngine(figure1_table, strategy=RandomStrategy(seed=1)).run(
            GoalQueryOracle(query_q2)
        )
        assert result.converged
        assert result.matches_goal(query_q2)


class TestRegistry:
    def test_all_registered_names_instantiable(self):
        for name in available_strategies():
            strategy = create_strategy(name, seed=0)
            assert isinstance(strategy, Strategy)
            assert strategy.name == name

    def test_families_are_registered(self):
        names = set(available_strategies())
        assert set(LOCAL_STRATEGIES) <= names
        assert set(LOOKAHEAD_STRATEGIES) <= names
        assert "random" in names
        assert "optimal" in names

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(StrategyError, match="known strategies"):
            create_strategy("does-not-exist")

    def test_seed_is_forwarded_to_random(self, figure1_state):
        first = create_strategy("random", seed=9)
        second = create_strategy("random", seed=9)
        assert first.choose(figure1_state) == second.choose(figure1_state)

    def test_kwargs_forwarded_to_factory(self):
        strategy = create_strategy("lookahead-kstep", depth=3, beam_width=2)
        assert strategy.depth == 3
        assert strategy.beam_width == 2

    def test_register_custom_strategy(self, figure1_state):
        class FirstInformative(Strategy):
            name = "first-informative"

            def choose(self, state):
                return self._informative_or_raise(state)[0]

        try:
            register_strategy("first-informative", FirstInformative)
            strategy = create_strategy("first-informative")
            assert strategy.choose(figure1_state) == 0
            with pytest.raises(StrategyError):
                register_strategy("first-informative", FirstInformative)
            register_strategy("first-informative", FirstInformative, overwrite=True)
        finally:
            _REGISTRY.pop("first-informative", None)
