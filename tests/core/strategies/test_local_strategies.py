"""Tests for the local strategy family."""

from __future__ import annotations

import pytest

from repro import GoalQueryOracle, JoinInferenceEngine, Label
from repro.core.atoms import popcount
from repro.core.strategies import (
    LargestTypeStrategy,
    LexicographicStrategy,
    LocalMostGeneralStrategy,
    LocalMostSpecificStrategy,
)
from repro.datasets import flights_hotels
from repro.exceptions import StrategyError

tid = flights_hotels.paper_tuple_id


class TestLexicographic:
    def test_picks_smallest_informative_id(self, figure1_state):
        assert LexicographicStrategy().choose(figure1_state) == 0

    def test_skips_uninformative_tuples(self, figure1_state):
        figure1_state.add_label(tid(12), Label.NEGATIVE)  # grays out (1), (5), (9)
        choice = LexicographicStrategy().choose(figure1_state)
        assert choice == tid(2)

    def test_raises_after_convergence(self, figure1_state):
        figure1_state.add_label(tid(3), Label.POSITIVE)
        figure1_state.add_label(tid(7), Label.NEGATIVE)
        figure1_state.add_label(tid(8), Label.NEGATIVE)
        with pytest.raises(StrategyError):
            LexicographicStrategy().choose(figure1_state)


class TestMostSpecificAndGeneral:
    def test_most_specific_maximises_overlap_with_m(self, figure1_state):
        choice = LocalMostSpecificStrategy().choose(figure1_state)
        overlap = popcount(
            figure1_state.type_index.mask(choice) & figure1_state.space.positive_mask
        )
        best = max(
            popcount(figure1_state.type_index.mask(t) & figure1_state.space.positive_mask)
            for t in figure1_state.informative_ids()
        )
        assert overlap == best

    def test_most_general_minimises_overlap_with_m(self, figure1_state):
        choice = LocalMostGeneralStrategy().choose(figure1_state)
        overlap = popcount(
            figure1_state.type_index.mask(choice) & figure1_state.space.positive_mask
        )
        smallest = min(
            popcount(figure1_state.type_index.mask(t) & figure1_state.space.positive_mask)
            for t in figure1_state.informative_ids()
        )
        assert overlap == smallest

    def test_deterministic_tie_break(self, figure1_state):
        first = LocalMostSpecificStrategy().choose(figure1_state)
        second = LocalMostSpecificStrategy().choose(figure1_state)
        assert first == second

    def test_choices_are_informative(self, figure1_state):
        figure1_state.add_label(tid(3), Label.POSITIVE)
        informative = set(figure1_state.informative_ids())
        for strategy in (
            LocalMostSpecificStrategy(),
            LocalMostGeneralStrategy(),
            LargestTypeStrategy(),
            LexicographicStrategy(),
        ):
            assert strategy.choose(figure1_state) in informative


class TestLargestType:
    def test_prefers_most_frequent_restricted_type(self, figure1_state):
        choice = LargestTypeStrategy().choose(figure1_state)
        type_index = figure1_state.type_index
        positive_mask = figure1_state.space.positive_mask
        frequency: dict[int, int] = {}
        for tuple_id in figure1_state.informative_ids():
            key = type_index.mask(tuple_id) & positive_mask
            frequency[key] = frequency.get(key, 0) + 1
        chosen_key = type_index.mask(choice) & positive_mask
        assert frequency[chosen_key] == max(frequency.values())


class TestLocalStrategiesEndToEnd:
    @pytest.mark.parametrize(
        "strategy_cls",
        [LexicographicStrategy, LocalMostSpecificStrategy, LocalMostGeneralStrategy, LargestTypeStrategy],
    )
    def test_each_local_strategy_converges_to_goal(self, figure1_table, query_q2, strategy_cls):
        engine = JoinInferenceEngine(figure1_table, strategy=strategy_cls())
        result = engine.run(GoalQueryOracle(query_q2))
        assert result.converged
        assert result.matches_goal(query_q2)
