"""Tests for the lookahead strategy family."""

from __future__ import annotations

import math

import pytest

from repro import GoalQueryOracle, JoinInferenceEngine, Label
from repro.core.strategies import (
    EntropyStrategy,
    ExpectedPruneStrategy,
    KStepLookaheadStrategy,
    MinMaxPruneStrategy,
    binary_entropy,
)
from repro.datasets import flights_hotels
from repro.exceptions import StrategyError

tid = flights_hotels.paper_tuple_id


class TestBinaryEntropy:
    def test_extremes_are_zero(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0

    def test_maximum_at_half(self):
        assert binary_entropy(0.5) == pytest.approx(1.0)

    def test_symmetry(self):
        assert binary_entropy(0.2) == pytest.approx(binary_entropy(0.8))

    def test_monotone_towards_half(self):
        assert binary_entropy(0.1) < binary_entropy(0.3) < binary_entropy(0.5)


class TestScores:
    def test_expected_prune_score(self):
        assert ExpectedPruneStrategy().score(4, 2) == 3.0

    def test_minmax_score(self):
        assert MinMaxPruneStrategy().score(4, 2) == 2.0

    def test_entropy_score_prefers_balanced_splits(self):
        strategy = EntropyStrategy()
        assert strategy.score(3, 3) > strategy.score(5, 1)

    def test_entropy_score_prefers_larger_balanced_splits(self):
        strategy = EntropyStrategy()
        assert strategy.score(4, 4) > strategy.score(2, 2)

    def test_entropy_score_zero_total(self):
        assert EntropyStrategy().score(0, 0) == 0.0

    def test_entropy_tie_break_uses_expected_prune(self):
        strategy = EntropyStrategy()
        # Both are completely unbalanced (entropy 0); the bigger one must win.
        assert strategy.score(6, 0) > strategy.score(2, 0)


class TestChoices:
    def test_chosen_tuple_maximises_the_score(self, figure1_state):
        for strategy in (ExpectedPruneStrategy(), MinMaxPruneStrategy(), EntropyStrategy()):
            choice = strategy.choose(figure1_state)
            chosen_score = strategy.score(*figure1_state.prune_counts(choice))
            best_score = max(
                strategy.score(*figure1_state.prune_counts(t))
                for t in figure1_state.informative_ids()
            )
            assert chosen_score == pytest.approx(best_score)

    def test_minmax_picks_a_distinguishing_tuple_after_3(self, figure1_state, query_q1, query_q2):
        # After (3)+, a minmax choice must make progress whatever the answer:
        # both prune counts of the chosen tuple are at least 1.
        figure1_state.add_label(tid(3), Label.POSITIVE)
        choice = MinMaxPruneStrategy().choose(figure1_state)
        plus, minus = figure1_state.prune_counts(choice)
        assert min(plus, minus) >= 1

    def test_raises_when_converged(self, figure1_state):
        figure1_state.add_label(tid(3), Label.POSITIVE)
        figure1_state.add_label(tid(7), Label.NEGATIVE)
        figure1_state.add_label(tid(8), Label.NEGATIVE)
        with pytest.raises(StrategyError):
            EntropyStrategy().choose(figure1_state)


class TestKStepLookahead:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(StrategyError):
            KStepLookaheadStrategy(depth=0)
        with pytest.raises(StrategyError):
            KStepLookaheadStrategy(depth=1, beam_width=0)

    def test_depth_one_behaves_like_a_greedy_worst_case(self, figure1_state):
        choice = KStepLookaheadStrategy(depth=1, beam_width=50).choose(figure1_state)
        assert choice in figure1_state.informative_ids()

    def test_converges_with_depth_two(self, figure1_table, query_q2):
        engine = JoinInferenceEngine(
            figure1_table, strategy=KStepLookaheadStrategy(depth=2, beam_width=4)
        )
        result = engine.run(GoalQueryOracle(query_q2))
        assert result.converged
        assert result.matches_goal(query_q2)
        assert result.num_interactions <= 5


class TestLookaheadEffectiveness:
    def test_lookahead_never_needs_more_than_label_all(self, figure1_table, query_q2):
        engine = JoinInferenceEngine(figure1_table, strategy=EntropyStrategy())
        result = engine.run(GoalQueryOracle(query_q2))
        assert result.num_interactions < len(figure1_table)

    def test_worst_case_logarithmic_on_figure1(self, figure1_table, query_q1, query_q2):
        # The Figure 1 query space is tiny; a balanced strategy should stay
        # well below the number of candidate tuples for both goal queries.
        for goal in (query_q1, query_q2):
            result = JoinInferenceEngine(figure1_table, strategy=MinMaxPruneStrategy()).run(
                GoalQueryOracle(goal)
            )
            assert result.num_interactions <= math.ceil(math.log2(len(figure1_table))) + 2
