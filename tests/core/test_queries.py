"""Tests for join queries: evaluation, containment, equivalence, closure."""

from __future__ import annotations

import pytest

from repro import AtomUniverse, CandidateTable, EqualityAtom, JoinQuery


class TestConstruction:
    def test_of_accepts_pairs_and_atoms(self):
        query = JoinQuery.of(("a", "b"), EqualityAtom.of("c", "d"))
        assert len(query) == 2

    def test_duplicate_atoms_collapse(self):
        query = JoinQuery.of(("a", "b"), ("b", "a"))
        assert len(query) == 1

    def test_empty_query(self):
        assert JoinQuery.empty().is_empty
        assert len(JoinQuery.empty()) == 0

    def test_from_mask_roundtrip(self, figure1_universe, query_q2):
        mask = query_q2.mask(figure1_universe)
        assert JoinQuery.from_mask(figure1_universe, mask) == query_q2

    def test_attributes(self, query_q2):
        assert query_q2.attributes() == {"To", "City", "Airline", "Discount"}

    def test_equality_and_hash(self, query_q1):
        assert JoinQuery.of(("To", "City")) == query_q1
        assert hash(JoinQuery.of(("To", "City"))) == hash(query_q1)

    def test_contains_and_iter(self, query_q2):
        assert ("To", "City") in query_q2
        assert EqualityAtom.of("From", "To") not in query_q2
        assert len(list(query_q2)) == 2


class TestEvaluation:
    def test_empty_query_selects_every_tuple(self, figure1_table):
        assert JoinQuery.empty().evaluate(figure1_table) == frozenset(range(12))

    def test_selects_single_tuple(self, figure1_table, query_q2):
        assert query_q2.selects(figure1_table, 2)
        assert not query_q2.selects(figure1_table, 7)

    def test_selectivity(self, figure1_table, query_q1, query_q2):
        assert query_q1.selectivity(figure1_table) == pytest.approx(4 / 12)
        assert query_q2.selectivity(figure1_table) == pytest.approx(2 / 12)

    def test_selectivity_of_empty_table(self):
        table = CandidateTable.from_rows(["a", "b"], [])
        assert JoinQuery.of(("a", "b")).selectivity(table) == 0.0

    def test_null_values_never_join(self):
        table = CandidateTable.from_rows(["a", "b"], [(None, None), (1, 1)])
        assert JoinQuery.of(("a", "b")).evaluate(table) == frozenset({1})

    def test_more_atoms_select_fewer_tuples(self, figure1_table, query_q1, query_q2):
        assert query_q2.evaluate(figure1_table) <= query_q1.evaluate(figure1_table)


class TestLogicalStructure:
    def test_equivalence_classes_merge_transitively(self):
        query = JoinQuery.of(("a", "b"), ("b", "c"), ("x", "y"))
        classes = {frozenset(c) for c in query.equivalence_classes()}
        assert frozenset({"a", "b", "c"}) in classes
        assert frozenset({"x", "y"}) in classes

    def test_closure_adds_implied_atoms(self):
        query = JoinQuery.of(("a", "b"), ("b", "c"))
        assert EqualityAtom.of("a", "c") in query.closure().atoms

    def test_closure_respects_universe(self, figure1_table):
        universe = AtomUniverse.from_table(figure1_table)
        query = JoinQuery.of(("From", "City"), ("To", "City"))
        closure = query.closure(universe)
        # From ≍ To is implied but not part of the cross-relation universe.
        assert EqualityAtom.of("From", "To") not in closure.atoms

    def test_implies_through_transitivity(self):
        chain = JoinQuery.of(("a", "b"), ("b", "c"))
        assert chain.implies(JoinQuery.of(("a", "c")))
        assert not JoinQuery.of(("a", "c")).implies(chain)

    def test_q2_implies_q1(self, query_q1, query_q2):
        assert query_q2.implies(query_q1)

    def test_is_equivalent_to(self):
        left = JoinQuery.of(("a", "b"), ("b", "c"))
        right = JoinQuery.of(("a", "c"), ("c", "b"))
        assert left.is_equivalent_to(right)
        assert not left.is_equivalent_to(JoinQuery.of(("a", "b")))

    def test_normalized_is_canonical_for_equivalent_queries(self):
        left = JoinQuery.of(("a", "b"), ("b", "c"))
        right = JoinQuery.of(("a", "c"), ("c", "b"))
        assert left.normalized() == right.normalized()

    def test_normalized_preserves_semantics(self, figure1_table, query_q2):
        assert query_q2.normalized().evaluate(figure1_table) == query_q2.evaluate(figure1_table)

    def test_instance_equivalence_is_weaker_than_logical_equivalence(self):
        # Two logically incomparable queries can select exactly the same tuples
        # of a given instance — the notion JIM's convergence criterion uses.
        table = CandidateTable.from_rows(["a", "b", "c"], [(1, 1, 1), (2, 3, 4)])
        left = JoinQuery.of(("a", "b"))
        right = JoinQuery.of(("b", "c"))
        assert left.instance_equivalent(right, table)
        assert not left.is_equivalent_to(right)


class TestSetOperations:
    def test_union_intersection_difference(self, query_q1, query_q2):
        assert (query_q1 | query_q2) == query_q2
        assert (query_q1 & query_q2) == query_q1
        assert (query_q2 - query_q1) == JoinQuery.of(("Airline", "Discount"))

    def test_syntactic_subset_operator(self, query_q1, query_q2):
        assert query_q1 <= query_q2
        assert not (query_q2 <= query_q1)


class TestRendering:
    def test_describe_sorts_atoms(self, query_q2):
        assert query_q2.describe() == "Airline ≍ Discount ∧ City ≍ To"

    def test_describe_empty(self):
        assert "⊤" in JoinQuery.empty().describe()

    def test_repr_mentions_atoms(self, query_q1):
        assert "City ≍ To" in repr(query_q1)
