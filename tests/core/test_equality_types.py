"""Tests for the per-tuple equality-type index."""

from __future__ import annotations

import pytest

from repro import EqualityAtom, EqualityTypeIndex


@pytest.fixture
def index(figure1_universe) -> EqualityTypeIndex:
    return EqualityTypeIndex(figure1_universe)


class TestMasks:
    def test_one_mask_per_tuple(self, index, figure1_table):
        assert len(index) == len(figure1_table)
        assert len(index.masks) == 12

    def test_selected_by_matches_query_evaluation(self, index, figure1_universe, query_q1):
        mask = query_q1.mask(figure1_universe)
        assert index.selected_by(mask) == query_q1.evaluate(figure1_universe.table)

    def test_selected_by_matches_query_evaluation_q2(self, index, figure1_universe, query_q2):
        mask = query_q2.mask(figure1_universe)
        assert index.selected_by(mask) == query_q2.evaluate(figure1_universe.table)

    def test_count_selected_by(self, index, figure1_universe, query_q1):
        mask = query_q1.mask(figure1_universe)
        assert index.count_selected_by(mask) == len(query_q1.evaluate(figure1_universe.table))

    def test_empty_query_selects_everything(self, index):
        assert index.count_selected_by(0) == 12

    def test_atom_count(self, index, figure1_universe):
        tuple3 = 2
        assert index.atom_count(tuple3) == 2


class TestFactorizedIndex:
    @pytest.fixture
    def product_index(self):
        from repro.core.atoms import AtomUniverse
        from repro.datasets.synthetic import SyntheticConfig, generate_instance
        from repro.relational.candidate import CandidateTable

        instance = generate_instance(
            SyntheticConfig(
                num_relations=2, attributes_per_relation=2, tuples_per_relation=6, domain_size=3
            )
        )
        table = CandidateTable.cross_product(instance)
        return EqualityTypeIndex(AtomUniverse.from_table(table))

    def test_construction_does_not_materialize_rows(self, product_index):
        assert not product_index.table.is_materialized()

    def test_type_sizes_cover_the_table_without_enumeration(self, product_index):
        assert sum(product_index.type_sizes().values()) == len(product_index.table)
        assert not product_index.table.is_materialized()

    def test_masks_match_row_at_a_time_evaluation(self, product_index):
        universe = product_index.universe
        expected = tuple(universe.equality_mask(row) for row in product_index.table.rows)
        assert product_index.masks == expected
        assert [product_index.mask(tid) for tid in range(len(expected))] == list(expected)

    def test_tuples_with_mask_enumerated_lazily_and_sorted(self, product_index):
        for mask in product_index.distinct_masks:
            ids = product_index.tuples_with_mask(mask)
            assert list(ids) == sorted(ids)
            assert len(ids) == product_index.type_sizes()[mask]

    def test_iter_masks_streams_without_caching(self, product_index):
        universe = product_index.universe
        expected = [universe.equality_mask(row) for row in product_index.table]
        assert list(product_index.iter_masks()) == expected
        assert product_index._masks is None  # no O(#tuples) cache left behind

    def test_distinct_masks_and_type_sizes_are_cached(self, product_index):
        assert product_index.distinct_masks is product_index.distinct_masks
        assert product_index.type_sizes() is product_index.type_sizes()

    def test_type_sizes_view_is_read_only(self, product_index):
        with pytest.raises(TypeError):
            product_index.type_sizes()[0] = 99


class TestGrouping:
    def test_groups_partition_the_tuples(self, index):
        grouped = [tid for mask in index.distinct_masks for tid in index.tuples_with_mask(mask)]
        assert sorted(grouped) == list(range(12))

    def test_tuples_sharing_a_type_are_indistinguishable(self, index, figure1_universe):
        # Tuples (3) and (4) of the paper share the type {To≍City, Airline≍Discount}.
        mask = figure1_universe.mask_of(
            [EqualityAtom.of("To", "City"), EqualityAtom.of("Airline", "Discount")]
        )
        assert set(index.tuples_with_mask(mask)) == {2, 3}

    def test_type_sizes_sum_to_table_size(self, index):
        assert sum(index.type_sizes().values()) == 12

    def test_unknown_mask_has_no_tuples(self, index, figure1_universe):
        assert index.tuples_with_mask(figure1_universe.full_mask) == ()

    def test_distinct_types_fewer_than_tuples(self, index):
        assert 1 <= len(index.distinct_masks) <= 12

    def test_iteration_yields_masks(self, index):
        assert list(index) == list(index.masks)
