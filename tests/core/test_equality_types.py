"""Tests for the per-tuple equality-type index."""

from __future__ import annotations

import pytest

from repro import EqualityAtom, EqualityTypeIndex


@pytest.fixture
def index(figure1_universe) -> EqualityTypeIndex:
    return EqualityTypeIndex(figure1_universe)


class TestMasks:
    def test_one_mask_per_tuple(self, index, figure1_table):
        assert len(index) == len(figure1_table)
        assert len(index.masks) == 12

    def test_selected_by_matches_query_evaluation(self, index, figure1_universe, query_q1):
        mask = query_q1.mask(figure1_universe)
        assert index.selected_by(mask) == query_q1.evaluate(figure1_universe.table)

    def test_selected_by_matches_query_evaluation_q2(self, index, figure1_universe, query_q2):
        mask = query_q2.mask(figure1_universe)
        assert index.selected_by(mask) == query_q2.evaluate(figure1_universe.table)

    def test_count_selected_by(self, index, figure1_universe, query_q1):
        mask = query_q1.mask(figure1_universe)
        assert index.count_selected_by(mask) == len(query_q1.evaluate(figure1_universe.table))

    def test_empty_query_selects_everything(self, index):
        assert index.count_selected_by(0) == 12

    def test_atom_count(self, index, figure1_universe):
        tuple3 = 2
        assert index.atom_count(tuple3) == 2


class TestGrouping:
    def test_groups_partition_the_tuples(self, index):
        grouped = [tid for mask in index.distinct_masks for tid in index.tuples_with_mask(mask)]
        assert sorted(grouped) == list(range(12))

    def test_tuples_sharing_a_type_are_indistinguishable(self, index, figure1_universe):
        # Tuples (3) and (4) of the paper share the type {To≍City, Airline≍Discount}.
        mask = figure1_universe.mask_of(
            [EqualityAtom.of("To", "City"), EqualityAtom.of("Airline", "Discount")]
        )
        assert set(index.tuples_with_mask(mask)) == {2, 3}

    def test_type_sizes_sum_to_table_size(self, index):
        assert sum(index.type_sizes().values()) == 12

    def test_unknown_mask_has_no_tuples(self, index, figure1_universe):
        assert index.tuples_with_mask(figure1_universe.full_mask) == ()

    def test_distinct_types_fewer_than_tuples(self, index):
        assert 1 <= len(index.distinct_masks) <= 12

    def test_iteration_yields_masks(self, index):
        assert list(index) == list(index.masks)
