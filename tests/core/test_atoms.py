"""Tests for equality atoms, atom scopes and atom universes."""

from __future__ import annotations

import pytest

from repro import AtomScope, AtomUniverse, CandidateTable, EqualityAtom
from repro.core.atoms import is_subset, popcount
from repro.exceptions import AtomUniverseError


class TestEqualityAtom:
    def test_normalised_orientation(self):
        assert EqualityAtom.of("b", "a") == EqualityAtom.of("a", "b")

    def test_normalisation_keeps_both_attributes(self):
        atom = EqualityAtom.of("z", "a")
        assert atom.left == "a"
        assert atom.right == "z"

    def test_self_equality_rejected(self):
        with pytest.raises(AtomUniverseError):
            EqualityAtom.of("a", "a")

    def test_holds_on_row(self):
        atom = EqualityAtom.of("a", "b")
        positions = {"a": 0, "b": 1}
        assert atom.holds_on((1, 1), positions)
        assert not atom.holds_on((1, 2), positions)

    def test_null_never_equal(self):
        atom = EqualityAtom.of("a", "b")
        positions = {"a": 0, "b": 1}
        assert not atom.holds_on((None, None), positions)

    def test_ordering_and_str(self):
        assert EqualityAtom.of("a", "b") < EqualityAtom.of("a", "c")
        assert str(EqualityAtom.of("a", "b")) == "a ≍ b"

    def test_hashable_and_deduplicated(self):
        assert len({EqualityAtom.of("a", "b"), EqualityAtom.of("b", "a")}) == 1


class TestAtomUniverseConstruction:
    def test_cross_relation_scope_skips_intra_relation_pairs(self, figure1_table):
        universe = AtomUniverse.from_table(figure1_table, scope=AtomScope.CROSS_RELATION)
        assert universe.size == 6
        assert EqualityAtom.of("From", "To") not in universe

    def test_all_pairs_scope_includes_everything_compatible(self, figure1_table):
        universe = AtomUniverse.from_table(figure1_table, scope=AtomScope.ALL_PAIRS)
        assert universe.size == 10  # C(5, 2) pairs, all TEXT-compatible

    def test_cross_relation_falls_back_without_provenance(self):
        table = CandidateTable.from_rows(["a", "b", "c"], [(1, 1, 2)])
        universe = AtomUniverse.from_table(table, scope=AtomScope.CROSS_RELATION)
        assert universe.size == 3

    def test_type_compatibility_filter(self):
        table = CandidateTable.from_rows(["n", "s"], [(1, "x")])
        with pytest.raises(AtomUniverseError):
            AtomUniverse.from_table(table)  # no compatible pair at all
        universe = AtomUniverse.from_table(table, require_type_compatible=False)
        assert universe.size == 1

    def test_include_and_exclude_attributes(self, figure1_table):
        only_to_city = AtomUniverse.from_table(
            figure1_table, include_attributes=["To", "City"]
        )
        assert only_to_city.size == 1
        without_discount = AtomUniverse.from_table(
            figure1_table, exclude_attributes=["Discount"]
        )
        assert all("Discount" not in atom.attributes for atom in without_discount)

    def test_unknown_attribute_in_custom_atoms_rejected(self, figure1_table):
        with pytest.raises(AtomUniverseError):
            AtomUniverse(figure1_table, [EqualityAtom.of("To", "Nowhere")])

    def test_duplicate_atoms_rejected(self, figure1_table):
        with pytest.raises(AtomUniverseError):
            AtomUniverse(
                figure1_table,
                [EqualityAtom.of("To", "City"), EqualityAtom.of("City", "To")],
            )

    def test_empty_universe_rejected(self, figure1_table):
        with pytest.raises(AtomUniverseError):
            AtomUniverse(figure1_table, [])


class TestBitmaskEncoding:
    @pytest.fixture
    def universe(self, figure1_table) -> AtomUniverse:
        return AtomUniverse.from_table(figure1_table)

    def test_full_mask_has_all_bits(self, universe):
        assert popcount(universe.full_mask) == universe.size

    def test_mask_roundtrip(self, universe):
        atoms = (EqualityAtom.of("To", "City"), EqualityAtom.of("Airline", "Discount"))
        mask = universe.mask_of(atoms)
        assert set(universe.atoms_of(mask)) == set(atoms)

    def test_mask_of_unknown_atom_rejected(self, universe):
        with pytest.raises(AtomUniverseError):
            universe.mask_of([EqualityAtom.of("From", "To")])

    def test_atoms_of_out_of_range_mask_rejected(self, universe):
        with pytest.raises(AtomUniverseError):
            universe.atoms_of(universe.full_mask + 1)

    def test_equality_mask_of_figure1_tuple_3(self, universe, figure1_table):
        mask = universe.equality_mask(figure1_table.row(2))
        assert set(universe.atoms_of(mask)) == {
            EqualityAtom.of("To", "City"),
            EqualityAtom.of("Airline", "Discount"),
        }

    def test_equality_mask_ignores_nulls(self, universe, figure1_table):
        # Tuple (2): Paris Lille AF | Paris None — From ≍ City holds, nothing with Discount.
        mask = universe.equality_mask(figure1_table.row(1))
        assert set(universe.atoms_of(mask)) == {EqualityAtom.of("From", "City")}

    def test_describe_mask(self, universe):
        mask = universe.mask_of([EqualityAtom.of("To", "City")])
        assert universe.describe_mask(mask) == "City ≍ To"
        assert "⊤" in universe.describe_mask(0)

    def test_index_of_and_contains(self, universe):
        atom = EqualityAtom.of("To", "City")
        assert universe.atoms[universe.index_of(atom)] == atom
        assert EqualityAtom.of("From", "To") not in universe

    def test_iteration_and_len(self, universe):
        assert len(list(universe)) == len(universe) == 6


class TestBitHelpers:
    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3

    def test_is_subset(self):
        assert is_subset(0b001, 0b011)
        assert not is_subset(0b100, 0b011)
        assert is_subset(0, 0)
