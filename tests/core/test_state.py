"""Tests for the inference state: labeling, convergence, lookahead primitives."""

from __future__ import annotations

import pytest

from repro import (
    AtomScope,
    AtomUniverse,
    InferenceState,
    JoinQuery,
    Label,
    TupleStatus,
)
from repro.datasets import flights_hotels
from repro.exceptions import InconsistentLabelError

tid = flights_hotels.paper_tuple_id


class TestLabeling:
    def test_add_label_accepts_string_spellings(self, figure1_state):
        result = figure1_state.add_label(tid(3), "+")
        assert result.label is Label.POSITIVE

    def test_unknown_tuple_id_rejected(self, figure1_state):
        with pytest.raises(InconsistentLabelError):
            figure1_state.add_label(99, Label.POSITIVE)

    def test_contradicting_certain_tuple_rejected_in_strict_mode(self, figure1_state):
        figure1_state.add_label(tid(3), Label.POSITIVE)
        # (4) is certain-positive now; labeling it negative contradicts the examples.
        with pytest.raises(InconsistentLabelError):
            figure1_state.add_label(tid(4), Label.NEGATIVE)

    def test_state_unchanged_after_rejected_label(self, figure1_state):
        figure1_state.add_label(tid(3), Label.POSITIVE)
        before = figure1_state.statuses()
        with pytest.raises(InconsistentLabelError):
            figure1_state.add_label(tid(4), Label.NEGATIVE)
        assert figure1_state.statuses() == before
        assert len(figure1_state.examples) == 1

    def test_certain_tuple_may_receive_its_implied_label(self, figure1_state):
        figure1_state.add_label(tid(3), Label.POSITIVE)
        result = figure1_state.add_label(tid(4), Label.POSITIVE)
        assert result.pruned_count == 0  # nothing new

    def test_non_strict_mode_accepts_contradictions(self, figure1_table):
        state = InferenceState(figure1_table, strict=False)
        state.add_label(tid(3), Label.POSITIVE)
        result = state.add_label(tid(4), Label.NEGATIVE)
        assert not result.consistent
        assert not state.is_consistent()


class TestConvergence:
    def test_fresh_state_not_converged(self, figure1_state):
        assert not figure1_state.is_converged()
        assert figure1_state.has_informative_tuple()

    def test_convergence_after_identifying_labels(self, figure1_state, query_q2, figure1_table):
        figure1_state.add_label(tid(3), Label.POSITIVE)
        figure1_state.add_label(tid(7), Label.NEGATIVE)
        figure1_state.add_label(tid(8), Label.NEGATIVE)
        assert figure1_state.is_converged()
        assert figure1_state.inferred_query().instance_equivalent(query_q2, figure1_table)

    def test_inferred_query_before_any_label_is_full_universe(self, figure1_state):
        assert len(figure1_state.inferred_query()) == figure1_state.universe.size

    def test_single_tuple_with_full_type_is_converged_from_the_start(self):
        # The only tuple satisfies every atom, so every query selects it:
        # no membership query can bring information and inference is done.
        from repro import CandidateTable

        table = CandidateTable.from_rows(["a", "b"], [(1, 1)])
        state = InferenceState(table)
        assert state.is_converged()
        assert state.status(0) is TupleStatus.CERTAIN_POSITIVE

    def test_single_non_matching_tuple_needs_exactly_one_label(self):
        from repro import CandidateTable

        table = CandidateTable.from_rows(["a", "b"], [(1, 2)])
        state = InferenceState(table)
        assert not state.is_converged()
        state.add_label(0, Label.NEGATIVE)
        assert state.is_converged()


class TestClassificationAccessors:
    def test_informative_certain_labeled_partition(self, figure1_state):
        figure1_state.add_label(tid(3), Label.POSITIVE)
        informative = set(figure1_state.informative_ids())
        certain = set(figure1_state.certain_ids())
        labeled = set(figure1_state.labeled_ids())
        assert informative | certain | labeled == set(range(12))
        assert informative.isdisjoint(certain)
        assert labeled == {tid(3)}

    def test_status_of_labeled_tuple(self, figure1_state):
        figure1_state.add_label(tid(8), Label.NEGATIVE)
        assert figure1_state.status(tid(8)) is TupleStatus.LABELED_NEGATIVE


class TestLookaheadPrimitives:
    def test_prune_counts_match_simulation(self, figure1_state):
        for tuple_id in figure1_state.informative_ids():
            expected_plus = _resolved_by_simulation(figure1_state, tuple_id, Label.POSITIVE)
            expected_minus = _resolved_by_simulation(figure1_state, tuple_id, Label.NEGATIVE)
            assert figure1_state.prune_counts(tuple_id) == (expected_plus, expected_minus)

    def test_prune_counts_match_simulation_mid_inference(self, figure1_state):
        figure1_state.add_label(tid(3), Label.POSITIVE)
        for tuple_id in figure1_state.informative_ids():
            expected_plus = _resolved_by_simulation(figure1_state, tuple_id, Label.POSITIVE)
            expected_minus = _resolved_by_simulation(figure1_state, tuple_id, Label.NEGATIVE)
            assert figure1_state.prune_counts(tuple_id) == (expected_plus, expected_minus)

    def test_simulate_label_leaves_original_untouched(self, figure1_state):
        clone = figure1_state.simulate_label(tid(3), Label.POSITIVE)
        assert len(figure1_state.examples) == 0
        assert len(clone.examples) == 1
        assert clone is not figure1_state

    def test_copy_shares_immutable_parts(self, figure1_state):
        clone = figure1_state.copy()
        assert clone.table is figure1_state.table
        assert clone.universe is figure1_state.universe
        assert clone.type_index is figure1_state.type_index
        assert clone.examples is not figure1_state.examples


class TestStatisticsAndUniverse:
    def test_statistics_percentages_sum_to_100(self, figure1_state):
        figure1_state.add_label(tid(3), Label.POSITIVE)
        stats = figure1_state.statistics()
        total_pct = stats["labeled_pct"] + stats["uninformative_pct"] + stats["informative_pct"]
        assert total_pct == pytest.approx(100.0)

    def test_custom_universe_is_respected(self, figure1_table):
        universe = AtomUniverse.from_table(figure1_table, include_attributes=["To", "City"])
        state = InferenceState(figure1_table, universe=universe)
        assert state.universe.size == 1
        # One positive example is not enough: the empty query is still consistent
        # (the paper's point that negative examples are necessary).
        state.add_label(tid(3), Label.POSITIVE)
        assert not state.is_converged()
        state.add_label(tid(1), Label.NEGATIVE)
        assert state.is_converged()
        assert state.inferred_query() == JoinQuery.of(("To", "City"))

    def test_all_pairs_scope_changes_universe(self, figure1_table):
        state = InferenceState(figure1_table, scope=AtomScope.ALL_PAIRS)
        assert state.universe.size == 10


def _resolved_by_simulation(state: InferenceState, tuple_id: int, label: Label) -> int:
    """Reference implementation of prune_counts via full simulation."""
    before = set(state.informative_ids())
    after = set(state.simulate_label(tuple_id, label).informative_ids())
    return len(before - after)
