"""Tests for the consistent-query space."""

from __future__ import annotations

import pytest

from repro import ConsistentQuerySpace, EqualityTypeIndex, ExampleSet, JoinQuery, Label
from repro.datasets import flights_hotels

tid = flights_hotels.paper_tuple_id


@pytest.fixture
def type_index(figure1_universe) -> EqualityTypeIndex:
    return EqualityTypeIndex(figure1_universe)


def space_with(type_index, labels: dict[int, Label]) -> ConsistentQuerySpace:
    return ConsistentQuerySpace(type_index, ExampleSet(labels))


class TestPositiveMask:
    def test_no_examples_means_full_mask(self, type_index):
        space = space_with(type_index, {})
        assert space.positive_mask == type_index.universe.full_mask
        assert space.negative_masks == ()

    def test_positive_examples_intersect(self, type_index, query_q2, figure1_universe):
        space = space_with(type_index, {tid(3): Label.POSITIVE, tid(4): Label.POSITIVE})
        assert space.positive_mask == query_q2.mask(figure1_universe)

    def test_canonical_query_decodes_m(self, type_index, query_q2):
        space = space_with(type_index, {tid(3): Label.POSITIVE})
        assert space.canonical_query() == query_q2


class TestConsistency:
    def test_empty_examples_are_consistent(self, type_index):
        assert space_with(type_index, {}).is_consistent()

    def test_consistent_with_compatible_labels(self, type_index):
        space = space_with(type_index, {tid(3): Label.POSITIVE, tid(8): Label.NEGATIVE})
        assert space.is_consistent()

    def test_inconsistent_when_negative_covers_m(self, type_index):
        # (3) and (4) have identical equality types: labeling one + and the
        # other − leaves no consistent query.
        space = space_with(type_index, {tid(3): Label.POSITIVE, tid(4): Label.NEGATIVE})
        assert not space.is_consistent()

    def test_admits_checks_both_sides(self, type_index, query_q1, query_q2):
        space = space_with(type_index, {tid(3): Label.POSITIVE, tid(8): Label.NEGATIVE})
        assert space.admits(query_q2)
        assert not space.admits(query_q1)  # Q1 selects the negative example (8)

    def test_admits_rejects_queries_outside_m(self, type_index):
        space = space_with(type_index, {tid(3): Label.POSITIVE})
        assert not space.admits(JoinQuery.of(("From", "City")))


class TestExistenceChecks:
    def test_exists_selecting_and_rejecting_on_fresh_space(self, type_index):
        space = space_with(type_index, {})
        for mask in type_index.distinct_masks:
            # With no labels every tuple can still be selected by some query
            # (the empty one) and rejected by another (the full one), unless
            # its type is the full universe.
            assert space.exists_selecting(mask)
            assert space.exists_rejecting(mask) == (mask != type_index.universe.full_mask)

    def test_certain_label_for_positive(self, type_index):
        space = space_with(type_index, {tid(3): Label.POSITIVE})
        assert space.certain_label_for(type_index.mask(tid(4))) is True

    def test_certain_label_for_negative(self, type_index):
        space = space_with(type_index, {tid(12): Label.NEGATIVE})
        assert space.certain_label_for(type_index.mask(tid(1))) is False

    def test_certain_label_for_informative(self, type_index):
        space = space_with(type_index, {tid(3): Label.POSITIVE})
        assert space.certain_label_for(type_index.mask(tid(8))) is None

    def test_with_label_is_functional(self, type_index):
        space = space_with(type_index, {})
        updated = space.with_label(tid(3), positive=True)
        assert updated.positive_mask != space.positive_mask
        assert space.positive_mask == type_index.universe.full_mask


class TestEnumeration:
    def test_consistent_queries_after_convergence_all_equivalent(
        self, type_index, query_q2, figure1_table
    ):
        space = space_with(
            type_index,
            {tid(3): Label.POSITIVE, tid(7): Label.NEGATIVE, tid(8): Label.NEGATIVE},
        )
        queries = space.consistent_queries()
        assert queries  # at least the canonical query
        target = query_q2.evaluate(figure1_table)
        assert all(query.evaluate(figure1_table) == target for query in queries)

    def test_count_consistent_queries_decreases_with_labels(self, type_index):
        fresh = space_with(type_index, {})
        labeled = space_with(type_index, {tid(3): Label.POSITIVE})
        assert labeled.count_consistent_queries() < fresh.count_consistent_queries()

    def test_enumeration_limit(self, type_index):
        space = space_with(type_index, {})
        assert space.count_consistent_queries(limit=5) == 5

    def test_enumerated_queries_are_admitted(self, type_index):
        space = space_with(type_index, {tid(3): Label.POSITIVE, tid(8): Label.NEGATIVE})
        for mask in space.consistent_query_masks():
            assert space.admits_mask(mask)

    def test_all_consistent_agree_everywhere_matches_convergence(self, type_index):
        converged = space_with(
            type_index,
            {tid(3): Label.POSITIVE, tid(7): Label.NEGATIVE, tid(8): Label.NEGATIVE},
        )
        in_progress = space_with(type_index, {tid(3): Label.POSITIVE})
        assert converged.all_consistent_agree_everywhere()
        assert not in_progress.all_consistent_agree_everywhere()
