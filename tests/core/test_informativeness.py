"""Tests for tuple classification (informative / certain / labeled)."""

from __future__ import annotations

import pytest

from repro import ConsistentQuerySpace, EqualityTypeIndex, ExampleSet, Label, TupleStatus
from repro.core import (
    classify_all,
    classify_tuple,
    has_informative_tuple,
    informative_ids,
    uninformative_ids,
)
from repro.datasets import flights_hotels

tid = flights_hotels.paper_tuple_id


@pytest.fixture
def type_index(figure1_universe) -> EqualityTypeIndex:
    return EqualityTypeIndex(figure1_universe)


def make(type_index, labels):
    examples = ExampleSet(labels)
    return ConsistentQuerySpace(type_index, examples), examples


class TestTupleStatus:
    def test_labeled_flags(self):
        assert TupleStatus.LABELED_POSITIVE.is_labeled
        assert not TupleStatus.CERTAIN_POSITIVE.is_labeled

    def test_certain_flags(self):
        assert TupleStatus.CERTAIN_NEGATIVE.is_certain
        assert not TupleStatus.LABELED_NEGATIVE.is_certain

    def test_uninformative_covers_labeled_and_certain(self):
        assert TupleStatus.LABELED_POSITIVE.is_uninformative
        assert TupleStatus.CERTAIN_NEGATIVE.is_uninformative
        assert not TupleStatus.INFORMATIVE.is_uninformative

    def test_implied_label(self):
        assert TupleStatus.CERTAIN_POSITIVE.implied_label is Label.POSITIVE
        assert TupleStatus.LABELED_NEGATIVE.implied_label is Label.NEGATIVE
        assert TupleStatus.INFORMATIVE.implied_label is None


class TestClassification:
    def test_everything_informative_before_any_label(self, type_index):
        space, examples = make(type_index, {})
        statuses = classify_all(space, examples)
        assert all(status is TupleStatus.INFORMATIVE for status in statuses.values())

    def test_labeled_tuple_reported_as_labeled(self, type_index):
        space, examples = make(type_index, {tid(3): Label.POSITIVE})
        assert classify_tuple(space, examples, tid(3)) is TupleStatus.LABELED_POSITIVE

    def test_certain_positive_after_positive_example(self, type_index):
        space, examples = make(type_index, {tid(3): Label.POSITIVE})
        assert classify_tuple(space, examples, tid(4)) is TupleStatus.CERTAIN_POSITIVE

    def test_certain_negative_after_negative_example(self, type_index):
        space, examples = make(type_index, {tid(12): Label.NEGATIVE})
        assert classify_tuple(space, examples, tid(1)) is TupleStatus.CERTAIN_NEGATIVE

    def test_classify_all_matches_classify_tuple(self, type_index):
        space, examples = make(type_index, {tid(3): Label.POSITIVE, tid(8): Label.NEGATIVE})
        statuses = classify_all(space, examples)
        for tuple_id, status in statuses.items():
            assert classify_tuple(space, examples, tuple_id) is status

    def test_classify_all_restricted_ids(self, type_index):
        space, examples = make(type_index, {})
        statuses = classify_all(space, examples, tuple_ids=[0, 1])
        assert set(statuses) == {0, 1}


class TestHelpers:
    def test_informative_and_uninformative_partition_unlabeled(self, type_index):
        space, examples = make(type_index, {tid(3): Label.POSITIVE})
        informative = set(informative_ids(space, examples))
        certain = set(uninformative_ids(space, examples))
        labeled = examples.labeled_ids
        assert informative.isdisjoint(certain)
        assert informative | certain | labeled == set(range(12))

    def test_has_informative_tuple_true_mid_inference(self, type_index):
        space, examples = make(type_index, {tid(3): Label.POSITIVE})
        assert has_informative_tuple(space, examples)

    def test_has_informative_tuple_false_after_convergence(self, type_index):
        space, examples = make(
            type_index,
            {tid(3): Label.POSITIVE, tid(7): Label.NEGATIVE, tid(8): Label.NEGATIVE},
        )
        assert not has_informative_tuple(space, examples)
