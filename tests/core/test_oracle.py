"""Tests for oracles (simulated users)."""

from __future__ import annotations

import pytest

from repro import GoalQueryOracle, Label, NoisyOracle
from repro.core.oracle import CallbackOracle, ConsoleOracle, FixedLabelsOracle
from repro.datasets import flights_hotels
from repro.exceptions import OracleError

tid = flights_hotels.paper_tuple_id


class TestGoalQueryOracle:
    def test_labels_follow_goal_query(self, figure1_table, query_q2):
        oracle = GoalQueryOracle(query_q2)
        assert oracle.label(figure1_table, tid(3)) is Label.POSITIVE
        assert oracle.label(figure1_table, tid(8)) is Label.NEGATIVE

    def test_question_counter(self, figure1_table, query_q1):
        oracle = GoalQueryOracle(query_q1)
        for tuple_id in range(5):
            oracle.label(figure1_table, tuple_id)
        assert oracle.questions_answered == 5
        oracle.reset()
        assert oracle.questions_answered == 0

    def test_selection_cached_per_table(self, figure1_table, query_q1):
        oracle = GoalQueryOracle(query_q1)
        oracle.label(figure1_table, 0)
        first_cache = oracle._selected(figure1_table)
        oracle.label(figure1_table, 1)
        assert oracle._selected(figure1_table) is first_cache


class TestNoisyOracle:
    def test_zero_error_rate_is_faithful(self, figure1_table, query_q2):
        truthful = GoalQueryOracle(query_q2)
        noisy = NoisyOracle(GoalQueryOracle(query_q2), error_rate=0.0, seed=1)
        for tuple_id in figure1_table.tuple_ids:
            assert noisy.label(figure1_table, tuple_id) == truthful.label(figure1_table, tuple_id)
        assert noisy.flips == 0

    def test_full_error_rate_always_flips(self, figure1_table, query_q2):
        truthful = GoalQueryOracle(query_q2)
        noisy = NoisyOracle(GoalQueryOracle(query_q2), error_rate=1.0, seed=1)
        for tuple_id in figure1_table.tuple_ids:
            assert noisy.label(figure1_table, tuple_id) != truthful.label(figure1_table, tuple_id)
        assert noisy.flips == len(figure1_table)

    def test_invalid_error_rate_rejected(self, query_q1):
        with pytest.raises(OracleError):
            NoisyOracle(GoalQueryOracle(query_q1), error_rate=1.5)

    def test_reset_clears_flip_counter(self, figure1_table, query_q2):
        noisy = NoisyOracle(GoalQueryOracle(query_q2), error_rate=1.0, seed=1)
        noisy.label(figure1_table, 0)
        noisy.reset()
        assert noisy.flips == 0


class TestFixedLabelsOracle:
    def test_replays_predefined_answers(self, figure1_table):
        oracle = FixedLabelsOracle({tid(3): "+", tid(8): "-"})
        assert oracle.label(figure1_table, tid(3)) is Label.POSITIVE
        assert oracle.label(figure1_table, tid(8)) is Label.NEGATIVE

    def test_unexpected_question_raises(self, figure1_table):
        oracle = FixedLabelsOracle({tid(3): "+"})
        with pytest.raises(OracleError):
            oracle.label(figure1_table, tid(5))


class TestCallbackAndConsoleOracles:
    def test_callback_oracle_parses_answers(self, figure1_table):
        oracle = CallbackOracle(lambda table, tuple_id: tuple_id == tid(3))
        assert oracle.label(figure1_table, tid(3)) is Label.POSITIVE
        assert oracle.label(figure1_table, tid(5)) is Label.NEGATIVE

    def test_console_oracle_reads_stdin(self, figure1_table, monkeypatch, capsys):
        answers = iter(["definitely", "y"])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(answers))
        oracle = ConsoleOracle()
        assert oracle.label(figure1_table, tid(3)) is Label.POSITIVE
        printed = capsys.readouterr().out
        assert "Tuple #2" in printed  # tuple id rendered
        assert "Please answer" in printed  # re-asked after the unparseable answer
