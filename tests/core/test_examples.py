"""Tests for labels and example sets."""

from __future__ import annotations

import pytest

from repro import Example, ExampleSet, Label
from repro.exceptions import InconsistentLabelError


class TestLabel:
    def test_polarity_properties(self):
        assert Label.POSITIVE.is_positive and not Label.POSITIVE.is_negative
        assert Label.NEGATIVE.is_negative and not Label.NEGATIVE.is_positive

    def test_opposite(self):
        assert Label.POSITIVE.opposite() is Label.NEGATIVE
        assert Label.NEGATIVE.opposite() is Label.POSITIVE

    @pytest.mark.parametrize(
        "value, expected",
        [
            ("+", Label.POSITIVE),
            ("-", Label.NEGATIVE),
            ("yes", Label.POSITIVE),
            ("No", Label.NEGATIVE),
            ("POSITIVE", Label.POSITIVE),
            (True, Label.POSITIVE),
            (False, Label.NEGATIVE),
            (Label.NEGATIVE, Label.NEGATIVE),
        ],
    )
    def test_from_value_spellings(self, value, expected):
        assert Label.from_value(value) is expected

    def test_from_value_rejects_garbage(self):
        with pytest.raises(InconsistentLabelError):
            Label.from_value("maybe")

    def test_str(self):
        assert str(Label.POSITIVE) == "+"


class TestExample:
    def test_is_positive(self):
        assert Example(3, Label.POSITIVE).is_positive
        assert not Example(3, Label.NEGATIVE).is_positive


class TestExampleSet:
    def test_add_and_lookup(self):
        examples = ExampleSet()
        examples.add(1, Label.POSITIVE)
        examples.add(2, Label.NEGATIVE)
        assert examples.label_of(1) is Label.POSITIVE
        assert examples.label_of(3) is None
        assert examples.positives == frozenset({1})
        assert examples.negatives == frozenset({2})
        assert examples.labeled_ids == frozenset({1, 2})

    def test_relabel_same_is_noop(self):
        examples = ExampleSet()
        examples.add(1, Label.POSITIVE)
        examples.add(1, Label.POSITIVE)
        assert len(examples) == 1

    def test_conflicting_relabel_raises(self):
        examples = ExampleSet()
        examples.add(1, Label.POSITIVE)
        with pytest.raises(InconsistentLabelError):
            examples.add(1, Label.NEGATIVE)

    def test_copy_is_independent(self):
        examples = ExampleSet({1: Label.POSITIVE})
        clone = examples.copy()
        clone.add(2, Label.NEGATIVE)
        assert 2 not in examples
        assert 2 in clone

    def test_examples_preserve_insertion_order(self):
        examples = ExampleSet()
        examples.add(5, Label.POSITIVE)
        examples.add(1, Label.NEGATIVE)
        assert [example.tuple_id for example in examples.examples()] == [5, 1]

    def test_equality_and_as_dict(self):
        left = ExampleSet({1: Label.POSITIVE})
        right = ExampleSet()
        right.add(1, Label.POSITIVE)
        assert left == right
        assert left.as_dict() == {1: Label.POSITIVE}

    def test_contains_iter_len(self):
        examples = ExampleSet({1: Label.POSITIVE, 2: Label.NEGATIVE})
        assert 1 in examples and 9 not in examples
        assert len(list(examples)) == len(examples) == 2
