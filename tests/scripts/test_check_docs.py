"""``scripts/check_docs.py``: failing snippets name their doc file and line."""

from __future__ import annotations

import subprocess
import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
CHECK_DOCS = REPO_ROOT / "scripts" / "check_docs.py"


def run_check(*paths: Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(CHECK_DOCS), *map(str, paths)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )


def test_passing_blocks_report_ok(tmp_path):
    doc = tmp_path / "ok.md"
    doc.write_text(
        textwrap.dedent(
            """\
            ```python
            value = 1 + 1
            assert value == 2
            ```
            """
        ),
        encoding="utf-8",
    )
    completed = run_check(doc)
    assert completed.returncode == 0
    assert "ok:" in completed.stdout


def test_failure_names_doc_file_fence_and_line(tmp_path):
    # The bug this guards against: with several fenced blocks composed into
    # one script, a failure in a *later* block used to report only the list
    # of all block start lines — opaque for anything but the first block.
    doc = tmp_path / "failing.md"
    doc.write_text(
        textwrap.dedent(
            """\
            # Title

            ```python
            x = 1
            ```

            prose

            ```python
            y = x + 1
            raise RuntimeError("boom")
            ```
            """
        ),
        encoding="utf-8",
    )
    completed = run_check(doc)
    assert completed.returncode == 1
    # The raise is on doc line 11, inside the fence opened on line 9.
    assert f"{doc}:11 (in the fenced block opened at line 9)" in completed.stdout
    assert "boom" in completed.stdout


def test_syntax_error_in_block_is_attributed(tmp_path):
    doc = tmp_path / "syntax.md"
    doc.write_text(
        textwrap.dedent(
            """\
            ```python
            ok = True
            ```

            ```python
            def broken(:
            ```
            """
        ),
        encoding="utf-8",
    )
    completed = run_check(doc)
    assert completed.returncode == 1
    assert f"{doc}:6 (in the fenced block opened at line 5)" in completed.stdout
