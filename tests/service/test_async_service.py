"""Tests for the asyncio session service (`repro.service.aio`).

The suite uses plain ``asyncio.run`` helpers (no pytest-asyncio dependency):
each test defines an ``async def scenario()`` and runs it synchronously.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import GoalQueryOracle, SessionService
from repro.service import AsyncSessionService, Converged, QuestionAsked, event_to_wire
from repro.service.service import SessionServiceError


def run(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, timeout=60))


async def drive_to_convergence(service, session_id, table, goal) -> Converged:
    oracle = GoalQueryOracle(goal)
    while True:
        event = await service.next_question(session_id)
        if isinstance(event, Converged):
            return event
        await service.answer(session_id, oracle.label(table, event.tuple_id))


class TestLifecycle:
    def test_create_describe_answer_close(self, figure1_table, query_q2):
        async def scenario():
            async with AsyncSessionService() as service:
                descriptor = await service.create(
                    figure1_table, mode="guided", strategy="lookahead-entropy"
                )
                sid = descriptor.session_id
                assert descriptor.mode == "guided"
                question = await service.next_question(sid)
                assert isinstance(question, QuestionAsked)
                oracle = GoalQueryOracle(query_q2)
                applied = await service.answer(
                    sid, oracle.label(figure1_table, question.tuple_id)
                )
                assert applied.step == 1
                assert (await service.describe(sid)).num_labels == 1
                final = await service.close(sid)
                assert final.num_labels == 1
                with pytest.raises(SessionServiceError, match="unknown session id"):
                    await service.describe(sid)

        run(scenario())

    def test_session_converges_to_goal(self, figure1_table, query_q2):
        async def scenario():
            async with AsyncSessionService() as service:
                sid = (
                    await service.create(figure1_table, strategy="lookahead-entropy")
                ).session_id
                converged = await drive_to_convergence(
                    service, sid, figure1_table, query_q2
                )
                assert converged.as_join_query().instance_equivalent(
                    query_q2, figure1_table
                )

        run(scenario())

    def test_mode_options_validated_and_slot_released(self, figure1_table):
        async def scenario():
            async with AsyncSessionService(max_sessions=1) as service:
                with pytest.raises(ValueError, match="guided"):
                    await service.create(figure1_table, mode="guided", k=3)
                # The failed create must have released its slot.
                descriptor = await asyncio.wait_for(
                    service.create(figure1_table), timeout=5
                )
                assert descriptor.session_id

        run(scenario())

    def test_save_resume_round_trip(self, figure1_table, query_q2):
        async def scenario():
            async with AsyncSessionService() as service:
                await service.register_table(figure1_table)
                sid = (
                    await service.create(figure1_table, strategy="lookahead-entropy")
                ).session_id
                oracle = GoalQueryOracle(query_q2)
                for _ in range(2):
                    question = await service.next_question(sid)
                    await service.answer(
                        sid, oracle.label(figure1_table, question.tuple_id)
                    )
                document = await service.save(sid)
                await service.close(sid)

                resumed = await service.resume(document)
                assert resumed.num_labels == 2
                event = await service.next_question(resumed.session_id)
                assert event.step == 3

        run(scenario())


class TestErrorPaths:
    def test_answer_after_close_raises(self, figure1_table):
        async def scenario():
            async with AsyncSessionService() as service:
                sid = (await service.create(figure1_table)).session_id
                await service.close(sid)
                with pytest.raises(SessionServiceError, match="unknown session id"):
                    await service.answer(sid, "+")

        run(scenario())

    def test_double_close_raises(self, figure1_table):
        async def scenario():
            async with AsyncSessionService() as service:
                sid = (await service.create(figure1_table)).session_id
                await service.close(sid)
                with pytest.raises(SessionServiceError, match="unknown session id"):
                    await service.close(sid)

        run(scenario())

    def test_resume_with_unknown_fingerprint_raises(self, figure1_table):
        async def scenario():
            async with AsyncSessionService() as service:
                sid = (await service.create(figure1_table)).session_id
                document = await service.save(sid)
                fresh = AsyncSessionService()
                async with fresh:
                    with pytest.raises(SessionServiceError, match="no table registered"):
                        await fresh.resume(document)

        run(scenario())

    def test_commands_after_aclose_raise(self, figure1_table):
        async def scenario():
            service = AsyncSessionService()
            await service.aclose()
            with pytest.raises(SessionServiceError, match="closed"):
                await service.create(figure1_table)

        run(scenario())


class TestBackpressure:
    def test_create_waits_for_a_free_slot(self, figure1_table):
        async def scenario():
            async with AsyncSessionService(max_sessions=1) as service:
                first = await service.create(figure1_table)
                second = asyncio.create_task(service.create(figure1_table))
                # The second create must not complete while the slot is held.
                await asyncio.sleep(0.05)
                assert not second.done()
                await service.close(first.session_id)
                descriptor = await asyncio.wait_for(second, timeout=5)
                assert descriptor.session_id != first.session_id

        run(scenario())

    def test_aclose_wakes_waiters_blocked_on_a_slot(self, figure1_table):
        async def scenario():
            service = AsyncSessionService(max_sessions=1)
            await service.create(figure1_table)
            waiters = [
                asyncio.create_task(service.create(figure1_table)) for _ in range(3)
            ]
            await asyncio.sleep(0.05)
            assert not any(task.done() for task in waiters)
            await service.aclose()
            # Every blocked create must raise promptly instead of hanging.
            results = await asyncio.wait_for(
                asyncio.gather(*waiters, return_exceptions=True), timeout=5
            )
            assert all(isinstance(r, SessionServiceError) for r in results)

        run(scenario())

    def test_cancelled_create_leaks_no_session(self, figure1_table):
        # Cancelling a create mid-executor (a request timeout) must not leave
        # an untracked session alive in the wrapped service.
        class SlowCreateService(SessionService):
            def create(self, *args, **kwargs):
                import time

                time.sleep(0.05)
                return super().create(*args, **kwargs)

        async def scenario():
            sync_service = SlowCreateService()
            async with AsyncSessionService(sync_service, max_sessions=4) as service:
                task = asyncio.create_task(service.create(figure1_table))
                await asyncio.sleep(0.01)  # let the executor call start
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
                # The orphaned sync create completes, then gets discarded.
                for _ in range(100):
                    await asyncio.sleep(0.01)
                    if not sync_service.session_ids():
                        break
                assert sync_service.session_ids() == []
                # The slot was released: a full set of creates still fits.
                for _ in range(4):
                    await asyncio.wait_for(service.create(figure1_table), timeout=5)

        run(scenario())

    def test_invalid_max_sessions_rejected(self):
        with pytest.raises(ValueError, match="max_sessions"):
            AsyncSessionService(max_sessions=0)
        with pytest.raises(ValueError, match="max_workers"):
            AsyncSessionService(max_workers=0)


class TestEventStream:
    def test_stream_replays_history_and_ends_on_close(self, figure1_table, query_q2):
        async def scenario():
            async with AsyncSessionService() as service:
                sid = (
                    await service.create(figure1_table, strategy="lookahead-entropy")
                ).session_id
                oracle = GoalQueryOracle(query_q2)
                expected = []
                # Two answers *before* subscribing: the stream must replay them.
                for _ in range(2):
                    question = await service.next_question(sid)
                    expected.append(event_to_wire(question))
                    applied = await service.answer(
                        sid, oracle.label(figure1_table, question.tuple_id)
                    )
                    expected.append(event_to_wire(applied))

                collected: list[dict] = []

                async def consume():
                    async for wire in service.events(sid):
                        collected.append(wire)

                consumer = asyncio.create_task(consume())
                await asyncio.sleep(0)  # let the consumer subscribe
                converged = await drive_to_convergence(
                    service, sid, figure1_table, query_q2
                )
                await service.close(sid)
                await asyncio.wait_for(consumer, timeout=10)

                assert collected[: len(expected)] == expected
                assert collected[-1] == event_to_wire(converged)
                assert all(isinstance(wire, dict) and "type" in wire for wire in collected)

        run(scenario())

    def test_two_consumers_see_the_same_stream(self, figure1_table, query_q2):
        async def scenario():
            async with AsyncSessionService() as service:
                sid = (
                    await service.create(figure1_table, strategy="lookahead-entropy")
                ).session_id

                async def consume():
                    return [wire async for wire in service.events(sid)]

                consumers = [asyncio.create_task(consume()) for _ in range(2)]
                await asyncio.sleep(0)
                await drive_to_convergence(service, sid, figure1_table, query_q2)
                await service.close(sid)
                first, second = await asyncio.gather(*consumers)
                assert first == second
                assert first  # not empty

        run(scenario())

    def test_mid_batch_failure_still_publishes_applied_events(self, figure1_table):
        from repro.exceptions import InconsistentLabelError

        async def scenario():
            async with AsyncSessionService() as service:
                sid = (
                    await service.create(figure1_table, mode="manual")
                ).session_id
                collected: list[dict] = []

                async def consume():
                    async for wire in service.events(sid):
                        collected.append(wire)

                consumer = asyncio.create_task(consume())
                await asyncio.sleep(0)
                with pytest.raises(InconsistentLabelError):
                    await service.answer_many(sid, [(0, "-"), (2, "bogus")])
                # The first label was applied and must be in the stream.
                assert (await service.describe(sid)).num_labels == 1
                await service.close(sid)
                await asyncio.wait_for(consumer, timeout=5)
                applied = [w for w in collected if w["type"] == "label_applied"]
                assert [w["tuple_id"] for w in applied] == [0]

        run(scenario())

    def test_stream_for_unknown_session_raises(self):
        async def scenario():
            async with AsyncSessionService() as service:
                with pytest.raises(SessionServiceError, match="unknown session id"):
                    async for _ in service.events("deadbeef"):
                        pass

        run(scenario())


class TestStreamBounds:
    """Post-close publishes are impossible; stalled consumers stay bounded."""

    def test_publish_after_finish_is_dropped(self):
        from repro.service.aio import _SessionStream

        stream = _SessionStream(buffer_size=4)
        subscriber = stream.subscribe()
        assert stream.publish({"type": "question"}) is True
        stream.finish()
        # Publishing after finish records nothing: neither in the history
        # nor in any queue — the end-of-stream sentinel stays the last item.
        assert stream.publish({"type": "late"}) is False
        assert stream.history == [{"type": "question"}]
        assert subscriber.queue.qsize() == 2
        assert subscriber.queue.get_nowait() == {"type": "question"}
        assert subscriber.queue.get_nowait() is None

    def test_stalled_consumer_is_disconnected_not_unbounded(self, figure1_table):
        # Subscribe, pull one event, stall while the session publishes more
        # than stream_buffer events, then drain.
        async def scenario():
            async with AsyncSessionService(stream_buffer=2) as service:
                sid = (await service.create(figure1_table, mode="manual")).session_id
                await service.next_question(sid)  # one event of history
                stream_iter = service.events(sid)
                # The first pull subscribes the consumer and replays history.
                first = await stream_iter.__anext__()
                assert first["type"] == "questions"
                # Six more events while the consumer stalls: the two-slot
                # queue overflows and the subscriber is marked dropped.
                for _ in range(6):
                    await service.next_question(sid)
                drained = [wire async for wire in stream_iter]
                # The consumer got at most its buffered backlog, then ended —
                # long before the 6 published events, and without close().
                assert len(drained) == 2

                # The session itself is unaffected: a fresh consumer replays
                # the full history.
                fresh: list[dict] = []

                async def consume():
                    async for wire in service.events(sid):
                        fresh.append(wire)

                consumer = asyncio.create_task(consume())
                await service.close(sid)
                await asyncio.wait_for(consumer, timeout=5)
                assert len(fresh) == 7  # the full history: 1 + 6 events

        run(scenario())

    def test_invalid_stream_buffer_rejected(self):
        with pytest.raises(ValueError, match="stream_buffer"):
            AsyncSessionService(stream_buffer=0)


class TestSharedSyncService:
    def test_sync_side_close_still_frees_slot_and_ends_stream(self, figure1_table):
        # A synchronous thread sharing the wrapped service may close a
        # session behind the facade's back; the async close then raises, but
        # must still end the event stream and release the backpressure slot.
        async def scenario():
            sync_service = SessionService()
            async with AsyncSessionService(sync_service, max_sessions=1) as service:
                sid = (await service.create(figure1_table)).session_id

                async def consume():
                    return [wire async for wire in service.events(sid)]

                consumer = asyncio.create_task(consume())
                await asyncio.sleep(0)
                sync_service.close(sid)  # behind the facade's back
                with pytest.raises(SessionServiceError, match="unknown session id"):
                    await service.close(sid)
                await asyncio.wait_for(consumer, timeout=5)  # stream ended
                # Slot released: the next create must not block.
                replacement = await asyncio.wait_for(
                    service.create(figure1_table), timeout=5
                )
                assert replacement.session_id != sid

        run(scenario())

    def test_any_command_reaps_a_sync_side_closed_session(self, figure1_table):
        # Not just close(): an answer/describe discovering the session gone
        # must also end its streams and free its backpressure slot.
        async def scenario():
            sync_service = SessionService()
            async with AsyncSessionService(sync_service, max_sessions=1) as service:
                sid = (await service.create(figure1_table)).session_id

                async def consume():
                    return [wire async for wire in service.events(sid)]

                consumer = asyncio.create_task(consume())
                await asyncio.sleep(0)
                sync_service.close(sid)
                with pytest.raises(SessionServiceError, match="unknown session id"):
                    await service.answer(sid, "+")
                await asyncio.wait_for(consumer, timeout=5)  # stream ended
                replacement = await asyncio.wait_for(
                    service.create(figure1_table), timeout=5
                )
                assert replacement.session_id != sid

        run(scenario())

    def test_commands_and_streams_after_aclose_do_not_adopt(self, figure1_table):
        # After aclose, a session still living in the shared sync service
        # must not be silently re-adopted into the cleared facade maps.
        async def scenario():
            sync_service = SessionService()
            service = AsyncSessionService(sync_service)
            sid = (await service.create(figure1_table)).session_id
            await service.aclose()
            assert sid in sync_service.session_ids()  # facade did not close it
            with pytest.raises(SessionServiceError, match="closed"):
                await service.answer(sid, "+")
            with pytest.raises(SessionServiceError, match="closed"):
                async for _ in service.events(sid):
                    pass

        run(scenario())

    def test_adopts_sessions_created_on_the_wrapped_service(
        self, figure1_table, query_q2
    ):
        async def scenario():
            sync_service = SessionService()
            sid = sync_service.create(
                figure1_table, mode="guided", strategy="lookahead-entropy"
            ).session_id
            async with AsyncSessionService(sync_service) as service:
                converged = await drive_to_convergence(
                    service, sid, figure1_table, query_q2
                )
                assert converged.as_join_query().instance_equivalent(
                    query_q2, figure1_table
                )
                await service.close(sid)
            assert sid not in sync_service.session_ids()

        run(scenario())


class TestConcurrency:
    def test_many_sessions_progress_concurrently(self, figure1_table, query_q2):
        async def scenario():
            async with AsyncSessionService(max_sessions=16) as service:
                descriptors = [
                    await service.create(figure1_table, strategy="lookahead-entropy")
                    for _ in range(8)
                ]
                results = await asyncio.gather(
                    *(
                        drive_to_convergence(
                            service, d.session_id, figure1_table, query_q2
                        )
                        for d in descriptors
                    )
                )
                for converged in results:
                    assert converged.as_join_query().instance_equivalent(
                        query_q2, figure1_table
                    )
                for descriptor in descriptors:
                    await service.close(descriptor.session_id)

        run(scenario())

    def test_async_trace_matches_sync_service(self, figure1_table, query_q2):
        # The same command sequence through both facades must produce the
        # same wire events (the benchmark gates this broadly; this is the
        # fast in-suite version).
        def sync_trace():
            service = SessionService()
            sid = service.create(figure1_table, strategy="lookahead-entropy").session_id
            oracle = GoalQueryOracle(query_q2)
            events = []
            while True:
                event = service.next_question(sid)
                events.append(event_to_wire(event))
                if isinstance(event, Converged):
                    return events
                applied = service.answer(
                    sid, oracle.label(figure1_table, event.tuple_id)
                )
                events.append(event_to_wire(applied))

        async def async_trace():
            async with AsyncSessionService() as service:
                sid = (
                    await service.create(figure1_table, strategy="lookahead-entropy")
                ).session_id
                oracle = GoalQueryOracle(query_q2)
                events = []
                while True:
                    event = await service.next_question(sid)
                    events.append(event_to_wire(event))
                    if isinstance(event, Converged):
                        return events
                    applied = await service.answer(
                        sid, oracle.label(figure1_table, event.tuple_id)
                    )
                    events.append(event_to_wire(applied))

        assert run(async_trace()) == sync_trace()
