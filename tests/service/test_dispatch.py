"""Tests for the crowd-batch dispatcher (`repro.service.dispatch`)."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.examples import Label
from repro.service import AsyncSessionService
from repro.service.dispatch import (
    CrowdDispatcher,
    DispatchError,
    WorkerProfile,
    majority_vote,
    simulated_crowd,
)


def run(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, timeout=60))


class TestMajorityVote:
    def test_majority_wins(self):
        assert majority_vote([Label.POSITIVE, Label.NEGATIVE, Label.POSITIVE]) is Label.POSITIVE
        assert majority_vote([Label.NEGATIVE]) is Label.NEGATIVE

    def test_empty_and_tied_votes_rejected(self):
        with pytest.raises(DispatchError, match="empty"):
            majority_vote([])
        with pytest.raises(DispatchError, match="tied"):
            majority_vote([Label.POSITIVE, Label.NEGATIVE])


class TestWorkerModel:
    def test_profile_validation(self):
        with pytest.raises(DispatchError, match="latency"):
            WorkerProfile("w", mean_latency=-1.0)
        with pytest.raises(DispatchError, match="error_rate"):
            WorkerProfile("w", error_rate=1.5)

    def test_perfect_worker_reports_ground_truth(self, figure1_table, query_q2):
        workers = simulated_crowd(query_q2, num_workers=1)
        selected = query_q2.evaluate(figure1_table)

        async def scenario():
            worker = workers[0]
            for tuple_id in figure1_table.tuple_ids:
                label = await worker.answer(figure1_table, tuple_id)
                assert (label is Label.POSITIVE) == (tuple_id in selected)
            assert worker.answers_given == len(figure1_table)
            assert worker.errors_made == 0

        run(scenario())

    def test_noisy_worker_errs_deterministically_per_seed(
        self, figure1_table, query_q2
    ):
        async def answers_with_seed(seed):
            worker = simulated_crowd(query_q2, num_workers=1, error_rate=0.5, seed=seed)[0]
            return [
                (await worker.answer(figure1_table, tid)).value
                for tid in figure1_table.tuple_ids
            ], worker.errors_made

        first, errors_first = run(answers_with_seed(1))
        again, errors_again = run(answers_with_seed(1))
        other, _ = run(answers_with_seed(2))
        assert first == again and errors_first == errors_again
        assert errors_first > 0
        assert first != other  # different seed, different error pattern

    def test_simulated_crowd_validation(self, query_q2):
        with pytest.raises(DispatchError, match="num_workers"):
            simulated_crowd(query_q2, num_workers=0)


class TestDispatcherValidation:
    def test_configuration_errors(self, query_q2):
        async def scenario():
            async with AsyncSessionService() as service:
                workers = simulated_crowd(query_q2, num_workers=3)
                with pytest.raises(DispatchError, match="empty"):
                    CrowdDispatcher(service, [])
                with pytest.raises(DispatchError, match="odd"):
                    CrowdDispatcher(service, workers, votes_per_question=2)
                with pytest.raises(DispatchError, match="exceeds the pool"):
                    CrowdDispatcher(service, workers, votes_per_question=5)
                with pytest.raises(DispatchError, match="max_rounds"):
                    CrowdDispatcher(service, workers, max_rounds=0)

        run(scenario())


class TestDispatchRuns:
    def test_perfect_crowd_converges_topk_session(self, figure1_table, query_q2):
        async def scenario():
            async with AsyncSessionService() as service:
                descriptor = await service.create(figure1_table, mode="top-k", k=3)
                workers = simulated_crowd(query_q2, num_workers=5, seed=0)
                dispatcher = CrowdDispatcher(service, workers, votes_per_question=3)
                report = await dispatcher.run(descriptor.session_id)
                assert report.converged
                assert report.contested == 0
                assert report.votes == report.questions * 3
                assert {frozenset(pair) for pair in report.atoms} == {
                    frozenset(atom.attributes) for atom in query_q2
                }
                # JSON-shaped report for serving frontends.
                import json

                json.dumps(report.as_dict())

        run(scenario())

    def test_guided_session_is_dispatched_as_batches_of_one(
        self, figure1_table, query_q2
    ):
        async def scenario():
            async with AsyncSessionService() as service:
                descriptor = await service.create(
                    figure1_table, strategy="lookahead-entropy"
                )
                workers = simulated_crowd(query_q2, num_workers=3, seed=0)
                dispatcher = CrowdDispatcher(service, workers, votes_per_question=3)
                report = await dispatcher.run(descriptor.session_id)
                assert report.converged
                assert report.rounds == report.questions  # one question per round
                assert {frozenset(pair) for pair in report.atoms} == {
                    frozenset(atom.attributes) for atom in query_q2
                }

        run(scenario())

    def test_majority_vote_absorbs_a_noisy_minority(self, figure1_table, query_q2):
        # One worker answers randomly half the time; with three votes per
        # question the two perfect workers always outvote it.
        async def scenario():
            async with AsyncSessionService() as service:
                descriptor = await service.create(figure1_table, mode="top-k", k=3)
                noisy = simulated_crowd(query_q2, num_workers=1, error_rate=0.5, seed=5)
                perfect = simulated_crowd(query_q2, num_workers=2, seed=6)
                dispatcher = CrowdDispatcher(
                    service, noisy + perfect, votes_per_question=3
                )
                report = await dispatcher.run(descriptor.session_id)
                assert report.converged
                assert noisy[0].errors_made > 0
                assert report.contested > 0
                assert {frozenset(pair) for pair in report.atoms} == {
                    frozenset(atom.attributes) for atom in query_q2
                }

        run(scenario())

    def test_max_rounds_gives_up_without_convergence(self, figure1_table, query_q2):
        async def scenario():
            async with AsyncSessionService() as service:
                descriptor = await service.create(figure1_table, mode="top-k", k=1)
                workers = simulated_crowd(query_q2, num_workers=3, seed=0)
                dispatcher = CrowdDispatcher(
                    service, workers, votes_per_question=3, max_rounds=1
                )
                report = await dispatcher.run(descriptor.session_id)
                assert report.rounds == 1
                assert not report.converged
                assert report.query is None

        run(scenario())

    def test_latency_overlaps_across_concurrent_sessions(
        self, figure1_table, query_q2
    ):
        # Two sessions with real (simulated) worker latency must overlap:
        # running them concurrently takes well under 2x one session's time.
        import time

        async def one_run(service, dispatcher):
            descriptor = await service.create(figure1_table, mode="top-k", k=3)
            report = await dispatcher.run(descriptor.session_id)
            assert report.converged
            await service.close(descriptor.session_id)

        async def scenario():
            async with AsyncSessionService() as service:
                workers = simulated_crowd(
                    query_q2, num_workers=6, mean_latency=0.05, seed=0
                )
                dispatcher = CrowdDispatcher(service, workers, votes_per_question=3)
                started = time.perf_counter()
                await one_run(service, dispatcher)
                solo = time.perf_counter() - started

                started = time.perf_counter()
                await asyncio.gather(*(one_run(service, dispatcher) for _ in range(2)))
                pair = time.perf_counter() - started
                assert pair < 2 * solo

        run(scenario())
