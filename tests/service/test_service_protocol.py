"""Tests for the sans-IO protocol events and their JSON wire form."""

from __future__ import annotations

import json

import pytest

from repro.core.examples import Label
from repro.core.queries import JoinQuery
from repro.service.protocol import (
    BatchQuestionsAsked,
    Converged,
    LabelApplied,
    ProtocolError,
    QuestionAsked,
    converged_event,
    decode_event,
    encode_event,
    event_from_wire,
    event_to_wire,
)

EVENTS = [
    QuestionAsked(step=3, tuple_id=7, attributes=("To", "City"), row=("Paris", "Paris")),
    BatchQuestionsAsked(step=1, tuple_ids=(4, 2, 9), k=3),
    BatchQuestionsAsked(step=2, tuple_ids=(), k=None),
    LabelApplied(step=5, tuple_id=7, label=Label.POSITIVE, pruned=4, informative_remaining=2),
    Converged(step=6, query="City ≍ To", atoms=(("City", "To"),)),
]


class TestRoundTrip:
    @pytest.mark.parametrize("event", EVENTS, ids=lambda e: e.type)
    def test_wire_roundtrip(self, event):
        assert event_from_wire(event_to_wire(event)) == event

    @pytest.mark.parametrize("event", EVENTS, ids=lambda e: e.type)
    def test_json_text_roundtrip(self, event):
        text = encode_event(event)
        json.loads(text)  # valid JSON
        assert decode_event(text) == event

    def test_wire_form_is_plain_json_types(self):
        payload = event_to_wire(EVENTS[3])
        assert payload["type"] == "label_applied"
        assert payload["label"] == "+"
        json.dumps(payload)

    def test_wire_form_tags_are_stable(self):
        assert [event_to_wire(e)["type"] for e in EVENTS] == [
            "question",
            "questions",
            "questions",
            "label_applied",
            "converged",
        ]


class TestConvergedHelpers:
    def test_converged_event_carries_query_atoms(self):
        query = JoinQuery.of(("To", "City"), ("Airline", "Discount"))
        event = converged_event(4, query)
        assert event.step == 4
        assert event.query == query.describe()
        assert event.as_join_query() == query

    def test_roundtrip_preserves_join_query(self):
        query = JoinQuery.of(("a", "b"))
        event = converged_event(1, query)
        assert decode_event(encode_event(event)).as_join_query() == query


class TestErrors:
    def test_unknown_type_rejected(self):
        with pytest.raises(ProtocolError, match="unknown event type"):
            event_from_wire({"type": "nope"})

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            event_from_wire(["question"])

    def test_missing_fields_rejected(self):
        with pytest.raises(ProtocolError, match="malformed"):
            event_from_wire({"type": "question", "step": 1})

    def test_bad_label_rejected(self):
        payload = event_to_wire(EVENTS[3])
        payload["label"] = "maybe"
        with pytest.raises(ProtocolError):
            event_from_wire(payload)

    def test_invalid_json_text_rejected(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_event("{nope")
