"""Tests for the thread-safe multi-session `SessionService`."""

from __future__ import annotations

import threading

import pytest

from repro import GoalQueryOracle, JoinInferenceEngine, SessionService
from repro.datasets import flights_hotels, synthetic
from repro.exceptions import StrategyError
from repro.service.protocol import Converged, QuestionAsked
from repro.service.service import SessionServiceError
from repro.sessions.persistence import table_fingerprint


def drive_to_convergence(service: SessionService, session_id: str, table, goal) -> None:
    oracle = GoalQueryOracle(goal)
    while True:
        event = service.next_question(session_id)
        if isinstance(event, Converged):
            return
        service.answer(session_id, oracle.label(table, event.tuple_id))


class TestTableRegistry:
    def test_register_is_idempotent_and_fingerprint_keyed(self, figure1_table):
        service = SessionService()
        fp1 = service.register_table(figure1_table)
        fp2 = service.register_table(flights_hotels.figure1_table())
        assert fp1 == fp2 == table_fingerprint(figure1_table)
        assert service.tables() == {fp1: figure1_table.name}

    def test_create_by_fingerprint(self, figure1_table):
        service = SessionService()
        fingerprint = service.register_table(figure1_table)
        descriptor = service.create(fingerprint, mode="guided")
        assert descriptor.table_fingerprint == fingerprint
        assert descriptor.num_candidates == len(figure1_table)

    def test_unknown_fingerprint_rejected(self):
        service = SessionService()
        with pytest.raises(SessionServiceError, match="no table registered"):
            service.create("deadbeef")


class TestLifecycle:
    def test_create_describe_answer_close(self, figure1_table, query_q2):
        service = SessionService()
        descriptor = service.create(figure1_table, mode="guided", strategy="lookahead-entropy")
        sid = descriptor.session_id
        assert descriptor.mode == "guided"
        assert descriptor.strategy == "lookahead-entropy"
        assert not descriptor.converged

        question = service.next_question(sid)
        assert isinstance(question, QuestionAsked)
        oracle = GoalQueryOracle(query_q2)
        applied = service.answer(sid, oracle.label(figure1_table, question.tuple_id))
        assert applied.step == 1
        assert service.describe(sid).num_labels == 1

        final = service.close(sid)
        assert final.num_labels == 1
        with pytest.raises(SessionServiceError, match="unknown session id"):
            service.describe(sid)

    def test_descriptor_dict_is_json_shaped(self, figure1_table):
        import json

        service = SessionService()
        descriptor = service.create(figure1_table, mode="top-k", k=4)
        payload = descriptor.as_dict()
        json.dumps(payload)
        assert payload["mode"] == "top-k"
        assert payload["k"] == 4

    def test_mode_options_validated_at_create(self, figure1_table):
        service = SessionService()
        with pytest.raises(ValueError, match="guided"):
            service.create(figure1_table, mode="guided", k=3)
        with pytest.raises(StrategyError):
            service.create(figure1_table, mode="top-k", k=-1)
        assert len(service) == 0

    def test_descriptor_reports_strictness(self, figure1_table):
        service = SessionService()
        strict = service.create(figure1_table)
        lenient = service.create(figure1_table, strict=False)
        assert strict.strict is True
        assert lenient.strict is False
        assert lenient.as_dict()["strict"] is False

    def test_failed_create_registers_neither_session_nor_table(self, figure1_table):
        service = SessionService()
        with pytest.raises(StrategyError, match="unknown strategy"):
            service.create(figure1_table, strategy="no-such-strategy")
        assert len(service) == 0
        assert service.tables() == {}

    def test_failed_resume_registers_neither_session_nor_table(self, figure1_table):
        service = SessionService()
        document = service.save(service.create(figure1_table).session_id)
        document["labels"] = {"not-a-number": "+"}  # corrupt the document

        fresh = SessionService()
        from repro.sessions.persistence import SessionPersistenceError

        with pytest.raises(SessionPersistenceError):
            fresh.resume(document, table=flights_hotels.figure1_table())
        assert len(fresh) == 0
        assert fresh.tables() == {}

    def test_explicit_session_id_and_collision(self, figure1_table):
        service = SessionService()
        descriptor = service.create(figure1_table, session_id="feed" * 8)
        assert descriptor.session_id == "feed" * 8
        with pytest.raises(SessionServiceError, match="already in use"):
            service.create(figure1_table, session_id="feed" * 8)
        document = service.save(descriptor.session_id)
        with pytest.raises(SessionServiceError, match="already in use"):
            service.resume(document, session_id="feed" * 8)
        assert len(service) == 1

    def test_answer_many_on_top_k_session(self, figure1_table, query_q2):
        service = SessionService()
        sid = service.create(figure1_table, mode="top-k", k=3).session_id
        oracle = GoalQueryOracle(query_q2)
        while not service.describe(sid).converged:
            batch = service.next_question(sid).tuple_ids
            service.answer_many(
                sid, [(tid, oracle.label(figure1_table, tid)) for tid in batch]
            )
        event = service.next_question(sid)
        assert event.as_join_query().instance_equivalent(query_q2, figure1_table)


class TestErrorPaths:
    def test_answer_after_close_raises(self, figure1_table):
        service = SessionService()
        sid = service.create(figure1_table).session_id
        service.close(sid)
        with pytest.raises(SessionServiceError, match="unknown session id"):
            service.answer(sid, "+")
        with pytest.raises(SessionServiceError, match="unknown session id"):
            service.next_question(sid)

    def test_double_close_raises(self, figure1_table):
        service = SessionService()
        sid = service.create(figure1_table).session_id
        service.close(sid)
        with pytest.raises(SessionServiceError, match="unknown session id"):
            service.close(sid)

    def test_resume_with_unknown_fingerprint_reference_raises(self, figure1_table):
        service = SessionService()
        document = service.save(service.create(figure1_table).session_id)
        fresh = SessionService()
        # Explicit unknown fingerprint reference (not just an empty registry).
        with pytest.raises(SessionServiceError, match="no table registered"):
            fresh.resume(document, table="deadbeef")

    def test_resume_document_without_fingerprint_raises(self, figure1_table):
        service = SessionService()
        document = service.save(service.create(figure1_table).session_id)
        document.pop("table_fingerprint")
        with pytest.raises(SessionServiceError, match="no table fingerprint"):
            SessionService().resume(document)

    def test_save_after_close_raises(self, figure1_table):
        service = SessionService()
        sid = service.create(figure1_table).session_id
        service.close(sid)
        with pytest.raises(SessionServiceError, match="unknown session id"):
            service.save(sid)


class TestSaveResume:
    def test_mid_session_save_resume_matches_uninterrupted_run(
        self, figure1_table, query_q2
    ):
        # Uninterrupted reference run.
        reference = JoinInferenceEngine(figure1_table, strategy="lookahead-entropy").run(
            GoalQueryOracle(query_q2)
        )

        # Interrupted run: two answers, save, resume in a FRESH service.
        service = SessionService()
        sid = service.create(
            figure1_table, mode="guided", strategy="lookahead-entropy"
        ).session_id
        oracle = GoalQueryOracle(query_q2)
        for _ in range(2):
            question = service.next_question(sid)
            service.answer(sid, oracle.label(figure1_table, question.tuple_id))
        document = service.save(sid)
        service.close(sid)

        fresh = SessionService()
        fresh.register_table(flights_hotels.figure1_table())
        resumed = fresh.resume(document)
        assert resumed.mode == "guided"
        assert resumed.strategy == "lookahead-entropy"
        assert resumed.num_labels == 2
        # Protocol steps keep counting from the restored labels.
        assert fresh.next_question(resumed.session_id).step == 3
        drive_to_convergence(fresh, resumed.session_id, figure1_table, query_q2)
        final = fresh.next_question(resumed.session_id)
        assert final.as_join_query().instance_equivalent(reference.query, figure1_table)
        assert final.step == fresh.describe(resumed.session_id).num_labels

    def test_resume_restores_the_right_session_kind(self, figure1_table):
        service = SessionService()
        sid = service.create(figure1_table, mode="top-k", k=2).session_id
        document = service.save(sid)
        assert document["session"] == {"mode": "top-k", "strategy": None, "k": 2}

        fresh = SessionService()
        resumed = fresh.resume(document, table=flights_hotels.figure1_table())
        assert resumed.mode == "top-k"
        assert resumed.k == 2
        assert len(fresh.next_question(resumed.session_id).tuple_ids) == 2

    def test_resume_without_registered_table_fails_clearly(self, figure1_table):
        service = SessionService()
        sid = service.create(figure1_table).session_id
        document = service.save(sid)
        fresh = SessionService()
        with pytest.raises(SessionServiceError, match="no table registered"):
            fresh.resume(document)

    def test_lenient_session_resumes_lenient(self, two_column_table):
        # tuple 0 = (1,1) is certain-positive on the tiny table; labeling
        # tuple 2 = (2,2) "-" after a "+" on tuple 0 contradicts.
        service = SessionService()
        descriptor = service.create(two_column_table, mode="manual", strict=False)
        sid = descriptor.session_id
        service.answer(sid, "+", tuple_id=0)
        saved_before = service.save(sid)
        contradiction = service.answer(sid, "-", tuple_id=2)  # tolerated
        saved_after = service.save(sid)

        fresh = SessionService()
        resumed = fresh.resume(saved_before, table=two_column_table)
        assert resumed.strict is False
        # The resumed session accepts the contradiction exactly as the
        # original did — identical event, no InconsistentLabelError.
        assert fresh.answer(resumed.session_id, "-", tuple_id=2) == contradiction

        # A document already containing the contradiction replays cleanly.
        replayed = fresh.resume(saved_after, table=two_column_table)
        assert replayed.strict is False
        assert replayed.num_labels == 2

    def test_strict_session_still_rejects_contradictions_after_resume(
        self, two_column_table
    ):
        from repro.exceptions import InconsistentLabelError

        service = SessionService()
        sid = service.create(two_column_table, mode="manual").session_id
        service.answer(sid, "+", tuple_id=0)
        document = service.save(sid)
        assert document["strict"] is True
        resumed = service.resume(document, table=two_column_table)
        assert resumed.strict is True
        with pytest.raises(InconsistentLabelError):
            service.answer(resumed.session_id, "-", tuple_id=2)


class TestConcurrency:
    def test_distinct_sessions_answered_concurrently(self):
        # Several labelers, each with their own session (and even their own
        # table), all stepping through one shared service from worker threads.
        service = SessionService()
        tables = {
            "flights": flights_hotels.figure1_table(),
            "synthetic": synthetic.generate_candidate_table(
                synthetic.SyntheticConfig(tuples_per_relation=8, domain_size=3, seed=4)
            ),
        }
        goals = {
            "flights": flights_hotels.query_q2(),
            "synthetic": synthetic.random_goal_query(tables["synthetic"], num_atoms=2, seed=9),
        }
        jobs = []
        for worker in range(8):
            kind = "flights" if worker % 2 == 0 else "synthetic"
            descriptor = service.create(tables[kind], mode="guided", strategy="lookahead-entropy")
            jobs.append((descriptor.session_id, kind))

        errors: list[BaseException] = []
        barrier = threading.Barrier(len(jobs))

        def labeler(session_id: str, kind: str) -> None:
            try:
                barrier.wait(timeout=30)
                drive_to_convergence(service, session_id, tables[kind], goals[kind])
            except BaseException as exc:  # noqa: BLE001 - surfaced to the main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=labeler, args=job, daemon=True) for job in jobs
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors

        for session_id, kind in jobs:
            descriptor = service.describe(session_id)
            assert descriptor.converged
            event = service.next_question(session_id)
            assert event.as_join_query().instance_equivalent(goals[kind], tables[kind])
