"""Adapter-equivalence tests: the redesigned surfaces behave like the seed.

``JoinInferenceEngine.run`` and the ``sessions.modes`` classes are now thin
adapters over the sans-IO stepper.  These tests pin their observable
behaviour to the seed semantics: same questions in the same order, same
labels, same propagation counts, same inferred query.
"""

from __future__ import annotations

import time

from repro import GoalQueryOracle, JoinInferenceEngine
from repro.core.engine import InferenceResult, InferenceTrace, Interaction
from repro.core.strategies.registry import create_strategy
from repro.datasets import flights_hotels
from repro.sessions.modes import GuidedSession, TopKSession


def seed_engine_run(table, strategy_name, oracle, max_interactions=None):
    """The seed's ``JoinInferenceEngine.run`` loop, kept verbatim as reference."""
    engine = JoinInferenceEngine(table, strategy=create_strategy(strategy_name, seed=7))
    engine.strategy.reset()
    state = engine.new_state()
    trace = InferenceTrace()
    step = 0
    while state.has_informative_tuple():
        if max_interactions is not None and step >= max_interactions:
            return InferenceResult(
                query=state.inferred_query(),
                trace=trace,
                state=state,
                converged=False,
                strategy_name=engine.strategy.name,
            )
        choose_started = time.perf_counter()
        tuple_id = engine.strategy.choose(state)
        choose_seconds = time.perf_counter() - choose_started
        label = oracle.label(table, tuple_id)
        propagate_started = time.perf_counter()
        propagation = state.add_label(tuple_id, label)
        elapsed = choose_seconds + (time.perf_counter() - propagate_started)
        step += 1
        trace.propagations.append(propagation)
        trace.interactions.append(
            Interaction(
                step=step,
                tuple_id=tuple_id,
                label=label,
                pruned=propagation.pruned_count,
                informative_remaining=propagation.informative_after,
                elapsed_seconds=elapsed,
            )
        )
    return InferenceResult(
        query=state.inferred_query(),
        trace=trace,
        state=state,
        converged=True,
        strategy_name=engine.strategy.name,
    )


def trace_signature(result):
    return (
        [
            (i.step, i.tuple_id, i.label.value, i.pruned, i.informative_remaining)
            for i in result.trace.interactions
        ],
        result.query.normalized().describe(),
        result.converged,
        result.strategy_name,
    )


STRATEGIES = (
    "random",
    "local-lexicographic",
    "local-most-specific",
    "local-most-general",
    "local-largest-type",
    "lookahead-expected",
    "lookahead-minmax",
    "lookahead-entropy",
)


class TestEngineTracesUnchanged:
    def test_all_strategies_on_both_paper_queries(self, figure1_table):
        for goal_name in ("q1", "q2"):
            goal = getattr(flights_hotels, f"query_{goal_name}")()
            for strategy_name in STRATEGIES:
                adapter = JoinInferenceEngine(
                    figure1_table, strategy=create_strategy(strategy_name, seed=7)
                ).run(GoalQueryOracle(goal))
                seed = seed_engine_run(figure1_table, strategy_name, GoalQueryOracle(goal))
                assert trace_signature(adapter) == trace_signature(seed), (
                    f"{goal_name} × {strategy_name}"
                )

    def test_max_interactions_cut_matches_seed(self, figure1_table, query_q2):
        adapter = JoinInferenceEngine(figure1_table, strategy=create_strategy("random", seed=7)).run(
            GoalQueryOracle(query_q2), max_interactions=2
        )
        seed = seed_engine_run(figure1_table, "random", GoalQueryOracle(query_q2), max_interactions=2)
        assert trace_signature(adapter) == trace_signature(seed)
        assert not adapter.converged


class TestSessionAdaptersUnchanged:
    def test_guided_session_asks_the_engine_questions(self, figure1_table, query_q2):
        session = GuidedSession(figure1_table, strategy=create_strategy("lookahead-entropy"))
        session.run(GoalQueryOracle(query_q2))
        seed = seed_engine_run(figure1_table, "lookahead-entropy", GoalQueryOracle(query_q2))
        assert [i.tuple_id for i in session.interactions] == [
            i.tuple_id for i in seed.trace.interactions
        ]
        assert session.inferred_query() == seed.query

    def test_top_k_batches_are_the_seed_ranking(self, figure1_table):
        # The seed TopKSession ranked candidates by (entropy score, -tuple_id)
        # over prune_counts_all; the stepper must reproduce that exactly.
        from repro.core.strategies.lookahead import EntropyStrategy

        session = TopKSession(figure1_table, k=4)
        counts = session.state.prune_counts_all(session.state.informative_ids())
        scorer = EntropyStrategy()
        expected = sorted(
            session.state.informative_ids(),
            key=lambda tid: (scorer.score(*counts[tid]), -tid),
            reverse=True,
        )[:4]
        assert session.propose() == expected
