"""Tests for the sans-IO stepper (`InferenceSession`)."""

from __future__ import annotations

import pytest

from repro import GoalQueryOracle, JoinInferenceEngine
from repro.exceptions import StrategyError
from repro.service.protocol import (
    BatchQuestionsAsked,
    Converged,
    InteractionMode,
    LabelApplied,
    QuestionAsked,
)
from repro.service.stepper import InferenceSession, validate_mode_options


def drive(session: InferenceSession, oracle, table) -> None:
    """Drive a guided session to convergence against an oracle."""
    while True:
        event = session.next_question()
        if isinstance(event, Converged):
            break
        session.submit(oracle.label(table, event.tuple_id))


class TestGuidedStepping:
    def test_caller_driven_loop_matches_blocking_engine(self, figure1_table, query_q2):
        session = InferenceSession(figure1_table, strategy="lookahead-entropy")
        drive(session, GoalQueryOracle(query_q2), figure1_table)
        engine_result = JoinInferenceEngine(figure1_table, strategy="lookahead-entropy").run(
            GoalQueryOracle(query_q2)
        )
        assert session.is_converged()
        assert session.inferred_query() == engine_result.query
        assert [i.tuple_id for i in session.interactions] == [
            i.tuple_id for i in engine_result.trace.interactions
        ]

    def test_question_event_carries_renderable_row(self, figure1_table):
        session = InferenceSession(figure1_table)
        event = session.next_question()
        assert isinstance(event, QuestionAsked)
        assert event.step == 1
        assert event.attributes == figure1_table.attribute_names
        assert event.row == tuple(figure1_table.row(event.tuple_id))

    def test_question_is_stable_until_answered(self, figure1_table):
        session = InferenceSession(figure1_table, strategy="local-lexicographic")
        first = session.next_question()
        assert session.next_question() == first
        applied = session.submit("-")
        assert isinstance(applied, LabelApplied)
        assert applied.tuple_id == first.tuple_id
        assert session.next_question().tuple_id != first.tuple_id

    def test_pending_question_is_rechosen_when_made_uninformative(self, figure1_table):
        # Answering a guided session out-of-band (explicit tuple_id, as the
        # crowd dispatcher does) may label or gray out the pending question;
        # the session must then choose a fresh one instead of re-proposing a
        # tuple that can no longer teach us anything.
        session = InferenceSession(figure1_table, strategy="local-lexicographic")
        pending = session.next_question()
        session.submit("-", tuple_id=pending.tuple_id)
        following = session.next_question()
        assert isinstance(following, QuestionAsked)
        assert following.tuple_id != pending.tuple_id
        assert not session.state.status(following.tuple_id).is_uninformative

    def test_answering_a_stale_pending_question_raises(self, figure1_table):
        # A frontend answering the question it was shown must not have its
        # label silently applied to a different tuple after out-of-band
        # labels resolved that question.
        session = InferenceSession(figure1_table, strategy="local-lexicographic")
        pending = session.next_question()
        session.submit("-", tuple_id=pending.tuple_id)  # out-of-band
        with pytest.raises(StrategyError, match="resolved by other labels"):
            session.submit("+")
        # The session recovers: a fresh question is choosable and answerable.
        fresh = session.next_question()
        assert fresh.tuple_id != pending.tuple_id
        applied = session.submit("-")
        assert applied.tuple_id == fresh.tuple_id

    def test_converged_event_reports_the_query(self, figure1_table, query_q2):
        session = InferenceSession(figure1_table)
        drive(session, GoalQueryOracle(query_q2), figure1_table)
        event = session.next_question()
        assert isinstance(event, Converged)
        assert event.step == session.num_interactions
        assert event.as_join_query().instance_equivalent(query_q2, figure1_table)

    def test_label_applied_reports_propagation(self, figure1_table):
        session = InferenceSession(figure1_table)
        event = session.submit("+")  # submit without next_question chooses itself
        assert event.pruned == session.last_propagation().pruned_count
        assert event.informative_remaining == session.last_propagation().informative_after


class TestBatchModes:
    def test_top_k_emits_ranked_batches(self, figure1_table):
        session = InferenceSession(figure1_table, mode="top-k", k=3)
        event = session.next_question()
        assert isinstance(event, BatchQuestionsAsked)
        assert event.k == 3
        assert len(event.tuple_ids) == 3
        assert set(event.tuple_ids) <= set(session.state.informative_ids())

    def test_submit_many_skips_tuples_resolved_mid_batch(self, figure1_table, query_q2):
        oracle = GoalQueryOracle(query_q2)
        session = InferenceSession(figure1_table, mode="top-k", k=5)
        batch = session.next_question().tuple_ids
        events = session.submit_many(
            {tid: oracle.label(figure1_table, tid) for tid in batch}
        )
        # At least one of the five became uninformative through an earlier
        # answer of the same batch and was skipped.
        assert len(events) < len(batch)
        assert all(isinstance(event, LabelApplied) for event in events)

    def test_top_k_runs_to_convergence(self, figure1_table, query_q2):
        oracle = GoalQueryOracle(query_q2)
        session = InferenceSession(figure1_table, mode="top-k", k=3)
        while not session.is_converged():
            batch = session.next_question().tuple_ids
            session.submit_many((tid, oracle.label(figure1_table, tid)) for tid in batch)
        assert session.inferred_query().instance_equivalent(query_q2, figure1_table)

    def test_manual_mode_lists_unlabeled_tuples(self, figure1_table):
        session = InferenceSession(figure1_table, mode="manual")
        event = session.next_question()
        assert isinstance(event, BatchQuestionsAsked)
        assert event.k is None
        assert set(event.tuple_ids) == set(figure1_table.tuple_ids)
        session.submit("-", tuple_id=event.tuple_ids[0])
        assert event.tuple_ids[0] not in session.next_question().tuple_ids

    def test_manual_with_pruning_hides_certain_tuples(self, figure1_table):
        session = InferenceSession(figure1_table, mode="manual-with-pruning")
        session.submit("+", tuple_id=11)
        offered = set(session.next_question().tuple_ids)
        assert offered == set(session.state.informative_ids())

    def test_batch_modes_require_explicit_tuple_id(self, figure1_table):
        session = InferenceSession(figure1_table, mode="manual")
        with pytest.raises(StrategyError, match="explicit tuple_id"):
            session.submit("+")


class TestModeValidation:
    def test_unknown_mode_rejected(self, figure1_table):
        with pytest.raises(ValueError, match="unknown interaction mode"):
            InferenceSession(figure1_table, mode="telepathy")

    def test_k_rejected_for_guided(self, figure1_table):
        with pytest.raises(ValueError, match="guided"):
            InferenceSession(figure1_table, mode="guided", k=3)

    def test_strategy_rejected_for_top_k(self, figure1_table):
        with pytest.raises(ValueError, match="top-k"):
            InferenceSession(figure1_table, mode="top-k", strategy="random")

    def test_invalid_k_value_rejected(self, figure1_table):
        with pytest.raises(StrategyError, match="positive integer"):
            InferenceSession(figure1_table, mode="top-k", k=0)

    def test_validate_mode_options_accepts_none_values(self):
        assert (
            validate_mode_options("guided", {"strategy": None, "k": None})
            is InteractionMode.GUIDED
        )
