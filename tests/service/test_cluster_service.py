"""Tests for the multi-process sharded service (`repro.service.cluster`).

Worker processes are slow to spawn, so one 2-worker cluster is shared by the
whole module (sessions are cheap; the cluster is not).  Async scenarios use
the plain ``asyncio.run`` helper of the async-service suite.
"""

from __future__ import annotations

import asyncio
import datetime

import pytest

from repro import CandidateTable, GoalQueryOracle, SessionService
from repro.datasets import flights_hotels
from repro.exceptions import InconsistentLabelError, StrategyError
from repro.service import AsyncSessionService, Converged, QuestionAsked, event_to_wire
from repro.service.cluster import (
    ClusterServiceError,
    ClusterSessionService,
    ClusterWorkerError,
    _rebuild_error,
    table_from_wire,
    table_to_wire,
)
from repro.service.service import SessionServiceError
from repro.sessions.persistence import table_fingerprint


@pytest.fixture(scope="module")
def cluster():
    with ClusterSessionService(num_workers=2) as service:
        yield service


@pytest.fixture(scope="module")
def flights_fingerprint(cluster) -> str:
    return cluster.register_table(flights_hotels.figure1_table())


def tiny_table() -> CandidateTable:
    return CandidateTable.from_rows(
        ["a", "b"], [(1, 1), (1, 2), (2, 2), (3, 4)], name="tiny"
    )


def drive(service, session_id: str, table, goal) -> list[dict]:
    oracle = GoalQueryOracle(goal)
    events: list[dict] = []
    while True:
        event = service.next_question(session_id)
        events.append(event_to_wire(event))
        if isinstance(event, Converged):
            return events
        if isinstance(event, QuestionAsked):
            applied = service.answer(session_id, oracle.label(table, event.tuple_id))
            events.append(event_to_wire(applied))
        else:
            answers = [(t, oracle.label(table, t)) for t in event.tuple_ids]
            events.extend(
                event_to_wire(applied)
                for applied in service.answer_many(session_id, answers)
            )


class TestTableWire:
    def test_roundtrip_preserves_fingerprint_types_and_provenance(self, figure1_table):
        rebuilt = table_from_wire(table_to_wire(figure1_table))
        assert table_fingerprint(rebuilt) == table_fingerprint(figure1_table)
        assert rebuilt.attribute_names == figure1_table.attribute_names
        assert rebuilt.source_relations() == figure1_table.source_relations()
        assert [a.data_type for a in rebuilt.attributes] == [
            a.data_type for a in figure1_table.attributes
        ]
        assert tuple(rebuilt.rows) == tuple(figure1_table.rows)

    def test_date_cells_are_tagged_and_restored(self):
        table = CandidateTable.from_rows(
            ["day", "stamp"],
            [
                (datetime.date(2014, 3, 1), datetime.datetime(2014, 3, 1, 12, 30)),
                (datetime.date(2014, 3, 2), datetime.datetime(2014, 3, 2, 8, 0)),
            ],
            name="dated",
        )
        import json

        wire = table_to_wire(table)
        json.dumps(wire)  # must be JSON-serialisable as-is
        rebuilt = table_from_wire(json.loads(json.dumps(wire)))
        assert tuple(rebuilt.rows) == tuple(table.rows)
        assert table_fingerprint(rebuilt) == table_fingerprint(table)

    def test_unserialisable_cells_rejected(self):
        from repro.relational.candidate import CandidateAttribute

        table = CandidateTable([CandidateAttribute("a")], [(object(),)], name="bad")
        with pytest.raises(ClusterServiceError, match="JSON-representable"):
            table_to_wire(table)


class TestLifecycle:
    def test_create_describe_answer_close(self, cluster, flights_fingerprint, query_q2):
        table = flights_hotels.figure1_table()
        descriptor = cluster.create(
            flights_fingerprint, mode="guided", strategy="lookahead-entropy"
        )
        sid = descriptor.session_id
        assert descriptor.mode == "guided"
        assert descriptor.strategy == "lookahead-entropy"
        assert descriptor.strict is True
        assert descriptor.num_candidates == 12

        question = cluster.next_question(sid)
        assert isinstance(question, QuestionAsked)
        oracle = GoalQueryOracle(query_q2)
        applied = cluster.answer(sid, oracle.label(table, question.tuple_id))
        assert applied.step == 1
        assert cluster.describe(sid).num_labels == 1

        final = cluster.close(sid)
        assert final.num_labels == 1
        with pytest.raises(SessionServiceError, match="unknown session id"):
            cluster.describe(sid)

    def test_trace_equivalence_with_single_process_service(
        self, cluster, flights_fingerprint, query_q2
    ):
        table = flights_hotels.figure1_table()
        for kwargs in (
            {"strategy": "lookahead-entropy"},
            {"mode": "top-k", "k": 3},
            {"mode": "manual-with-pruning"},
        ):
            sync = SessionService()
            reference = drive(
                sync, sync.create(table, **kwargs).session_id, table, query_q2
            )
            descriptor = cluster.create(flights_fingerprint, **kwargs)
            events = drive(cluster, descriptor.session_id, table, query_q2)
            cluster.close(descriptor.session_id)
            assert events == reference

    def test_consistent_routing_by_session_id(self, cluster, flights_fingerprint):
        # Explicit hex ids pin the shard: int(id, 16) % num_workers.
        ids = [f"{shard:032x}" for shard in range(4)]
        for session_id in ids:
            created = cluster.create(flights_fingerprint, session_id=session_id)
            assert created.session_id == session_id
        live = cluster.session_ids()
        assert set(ids) <= set(live)
        # Every command routes back to the worker that holds the session.
        for session_id in ids:
            assert cluster.describe(session_id).session_id == session_id
        for session_id in ids:
            cluster.close(session_id)
        assert not set(ids) & set(cluster.session_ids())

    def test_duplicate_session_id_rejected(self, cluster, flights_fingerprint):
        session_id = "ab" * 16
        cluster.create(flights_fingerprint, session_id=session_id)
        with pytest.raises(SessionServiceError, match="already in use"):
            cluster.create(flights_fingerprint, session_id=session_id)
        cluster.close(session_id)

    def test_register_table_is_idempotent(self, cluster, flights_fingerprint):
        again = cluster.register_table(flights_hotels.figure1_table())
        assert again == flights_fingerprint
        assert cluster.tables()[again] == "flight_hotel_packages"
        assert len(cluster.table(again)) == 12


class TestErrorParity:
    def test_unknown_session_and_table(self, cluster):
        with pytest.raises(SessionServiceError, match="unknown session id"):
            cluster.describe("not-hex-at-all!")
        with pytest.raises(SessionServiceError, match="unknown session id"):
            cluster.answer("beef", "+")
        with pytest.raises(SessionServiceError, match="no table registered"):
            cluster.create("deadbeef")

    def test_mode_options_validated_before_broadcast(self, cluster, flights_fingerprint):
        before = len(cluster)
        with pytest.raises(ValueError, match="guided"):
            cluster.create(flights_fingerprint, mode="guided", k=3)
        with pytest.raises(StrategyError):
            cluster.create(flights_fingerprint, strategy="no-such-strategy")
        assert len(cluster) == before

    def test_failed_create_registers_no_table(self, cluster):
        table = tiny_table()
        with pytest.raises(StrategyError):
            cluster.create(table, strategy="no-such-strategy")
        assert table_fingerprint(table) not in cluster.tables()

    def test_failed_resume_registers_no_table(self, cluster):
        table = tiny_table()
        sync = SessionService()
        document = sync.save(sync.create(table).session_id)
        document["labels"] = {"not-a-number": "+"}  # corrupt the document
        from repro.sessions.persistence import SessionPersistenceError

        with pytest.raises(SessionPersistenceError):
            cluster.resume(document, table=table)
        assert table_fingerprint(table) not in cluster.tables()

    def test_non_hex_session_id_rejected_clearly(self, cluster, flights_fingerprint):
        with pytest.raises(ClusterServiceError, match="hexadecimal"):
            cluster.create(flights_fingerprint, session_id="my-session")

    def test_unexpected_worker_errors_are_not_service_errors(self):
        # An exception type outside the wire whitelist must NOT rebuild as a
        # SessionServiceError — the asyncio facade reaps sessions on those,
        # and an unexpected worker bug does not mean the session is gone.
        error = _rebuild_error(
            {"status": "error", "kind": "AttributeError", "message": "boom"}
        )
        assert isinstance(error, ClusterWorkerError)
        assert not isinstance(error, SessionServiceError)
        assert "AttributeError" in str(error)

    def test_out_of_range_tuple_matches_single_process_error(
        self, cluster, flights_fingerprint
    ):
        table = flights_hotels.figure1_table()
        sync = SessionService()
        sync_sid = sync.create(table, mode="manual").session_id
        try:
            sync.answer(sync_sid, "+", tuple_id=9999)
            sync_raised = None
        except Exception as exc:  # noqa: BLE001 - the type is the assertion
            sync_raised = type(exc)
        descriptor = cluster.create(flights_fingerprint, mode="manual")
        if sync_raised is None:
            cluster.answer(descriptor.session_id, "+", tuple_id=9999)
        else:
            with pytest.raises(sync_raised):
                cluster.answer(descriptor.session_id, "+", tuple_id=9999)
        cluster.close(descriptor.session_id)

    def test_strategy_instances_cannot_cross_the_boundary(
        self, cluster, flights_fingerprint
    ):
        from repro.core.strategies.lookahead import EntropyStrategy

        with pytest.raises(ClusterServiceError, match="registry name"):
            cluster.create(flights_fingerprint, strategy=EntropyStrategy())

    def test_inconsistent_label_raises_with_worker_message(self, cluster):
        table = tiny_table()
        descriptor = cluster.create(table, mode="manual", strict=True)
        cluster.answer(descriptor.session_id, "+", tuple_id=0)
        with pytest.raises(InconsistentLabelError, match="certain"):
            cluster.answer(descriptor.session_id, "-", tuple_id=2)
        cluster.close(descriptor.session_id)

    def test_answer_many_error_carries_applied_events(self, cluster, flights_fingerprint):
        descriptor = cluster.create(flights_fingerprint, mode="manual", strict=True)
        # Tuple 0 is informative on the Figure 1 table, and labeling it "-"
        # leaves tuple 2 informative — so the first answer applies and the
        # unparseable second one fails the batch mid-way.
        with pytest.raises(InconsistentLabelError) as excinfo:
            cluster.answer_many(
                descriptor.session_id, [(0, "-"), (2, "certainly-not-a-label")]
            )
        applied = excinfo.value.applied_events
        assert len(applied) == 1 and applied[0].tuple_id == 0
        # The first answer of the failed batch really was applied.
        assert cluster.describe(descriptor.session_id).num_labels == 1
        cluster.close(descriptor.session_id)


class TestStrictLifecycle:
    """The acceptance scenario: lenient sessions stay lenient across the cluster."""

    def test_lenient_session_survives_save_resume_with_contradictions(self, cluster):
        table = tiny_table()
        descriptor = cluster.create(table, mode="manual", strict=False)
        assert descriptor.strict is False
        sid = descriptor.session_id
        cluster.answer(sid, "+", tuple_id=0)
        document_before = cluster.save(sid)
        # (2,2) is certain-positive now; the lenient original tolerates "-".
        original_applied = cluster.answer(sid, "-", tuple_id=2)
        document_after = cluster.save(sid)
        assert document_before["strict"] is False
        assert document_after["strict"] is False
        cluster.close(sid)

        # Resumed from the pre-contradiction snapshot, the session accepts
        # the same contradicting label the original accepted — producing the
        # identical event.
        resumed = cluster.resume(document_before)
        assert resumed.strict is False
        replayed = cluster.answer(resumed.session_id, "-", tuple_id=2)
        assert replayed == original_applied
        cluster.close(resumed.session_id)

        # The post-contradiction snapshot replays at all (a strict replay
        # raised before v3) and stays lenient.
        resumed = cluster.resume(document_after)
        assert resumed.strict is False
        assert resumed.num_labels == 2
        cluster.close(resumed.session_id)

    def test_cluster_documents_resume_on_single_process_service(self, cluster):
        table = tiny_table()
        descriptor = cluster.create(table, mode="manual", strict=False)
        cluster.answer(descriptor.session_id, "+", tuple_id=0)
        cluster.answer(descriptor.session_id, "-", tuple_id=2)  # contradiction
        document = cluster.save(descriptor.session_id)
        cluster.close(descriptor.session_id)

        sync = SessionService()
        resumed = sync.resume(document, table=table)
        assert resumed.strict is False
        assert resumed.num_labels == 2


class TestAsyncBridge:
    def test_streams_and_crowd_dispatch_over_the_cluster(
        self, cluster, flights_fingerprint, query_q2
    ):
        table = flights_hotels.figure1_table()

        async def scenario():
            async with AsyncSessionService(cluster, max_workers=2) as service:
                descriptor = await service.create(
                    flights_fingerprint, strategy="lookahead-entropy"
                )
                sid = descriptor.session_id
                streamed: list[dict] = []

                async def consume():
                    async for wire in service.events(sid):
                        streamed.append(wire)

                consumer = asyncio.create_task(consume())
                oracle = GoalQueryOracle(query_q2)
                commanded: list[dict] = []
                while True:
                    event = await service.next_question(sid)
                    commanded.append(event_to_wire(event))
                    if isinstance(event, Converged):
                        break
                    applied = await service.answer(
                        sid, oracle.label(table, event.tuple_id)
                    )
                    commanded.append(event_to_wire(applied))
                await service.close(sid)
                await asyncio.wait_for(consumer, timeout=30)
                assert streamed == commanded
                assert streamed[-1]["type"] == "converged"

        asyncio.run(asyncio.wait_for(scenario(), timeout=60))


class TestShutdown:
    def test_commands_after_shutdown_raise_and_shutdown_is_idempotent(self):
        service = ClusterSessionService(num_workers=1)
        fingerprint = service.register_table(tiny_table())
        service.shutdown()
        service.shutdown()  # idempotent
        with pytest.raises(ClusterServiceError, match="shut down"):
            service.create(fingerprint)
        with pytest.raises(ClusterServiceError, match="shut down"):
            service.register_table(flights_hotels.figure1_table())
