"""Transport framing under adversity: partial reads, oversized frames,
interleaved replies, and reconnect-after-sever — with seeded fault schedules.

The framing layer's whole contract is that a caller sees Python objects or
a typed :class:`TransportError`, never a torn frame: these tests attack the
byte stream directly (dribbled writes, truncated closes, lying length
headers) and drive the clean paths through :class:`FaultyTransport` so the
same seeds reproduce any failure.
"""

from __future__ import annotations

import socket
import struct
import threading

import pytest
from faults import FaultSchedule, FaultyTransport

from repro.service.transport import (
    ConnectionClosedError,
    FramedConnection,
    FrameTooLargeError,
    Listener,
    TransportError,
    connect,
    framed_pair,
)

#: The distinct seeded schedules the acceptance criteria require (>= 3).
SEEDS = (7, 21, 42)


def _raw_pair() -> tuple[socket.socket, FramedConnection]:
    """One raw socket end (for hand-crafted bytes) and one framed end."""
    raw, framed_side = socket.socketpair()
    return raw, FramedConnection(framed_side)


def _frame(payload_bytes: bytes) -> bytes:
    return struct.pack(">I", len(payload_bytes)) + payload_bytes


# --------------------------------------------------------------------------- #
# Partial reads
# --------------------------------------------------------------------------- #
class TestPartialReads:
    def test_frame_dribbled_one_byte_at_a_time_reassembles(self):
        raw, conn = _raw_pair()
        blob = _frame(b'{"answer": 42, "pad": "' + b"x" * 300 + b'"}')

        def dribble() -> None:
            for i in range(len(blob)):
                raw.sendall(blob[i : i + 1])

        writer = threading.Thread(target=dribble)
        writer.start()
        payload = conn.recv()
        writer.join()
        assert payload["answer"] == 42
        assert payload["pad"] == "x" * 300
        raw.close()
        conn.close()

    def test_two_frames_in_one_burst_read_separately(self):
        raw, conn = _raw_pair()
        raw.sendall(_frame(b'{"seq": 1}') + _frame(b'{"seq": 2}'))
        assert conn.recv() == {"seq": 1}
        assert conn.recv() == {"seq": 2}
        raw.close()
        conn.close()

    def test_eof_at_frame_boundary_is_clean_close(self):
        raw, conn = _raw_pair()
        raw.close()
        with pytest.raises(ConnectionClosedError, match="frame boundary"):
            conn.recv()
        conn.close()

    def test_eof_mid_header_names_the_torn_position(self):
        raw, conn = _raw_pair()
        raw.sendall(b"\x00\x00")  # half a length header
        raw.close()
        with pytest.raises(ConnectionClosedError, match="after 2 of 4 bytes"):
            conn.recv()
        conn.close()

    def test_eof_mid_body_raises_connection_closed(self):
        raw, conn = _raw_pair()
        blob = _frame(b'{"seq": 1}')
        raw.sendall(blob[:-3])  # header + truncated body
        raw.close()
        with pytest.raises(ConnectionClosedError, match="frame body"):
            conn.recv()
        conn.close()


# --------------------------------------------------------------------------- #
# Oversized and malformed frames
# --------------------------------------------------------------------------- #
class TestFrameLimits:
    def test_oversized_outgoing_frame_rejected_before_sending(self):
        left, right = framed_pair(max_frame_bytes=64)
        with pytest.raises(FrameTooLargeError, match="64-byte limit"):
            left.send({"pad": "y" * 200})
        # The connection survives a refused send: nothing left the process.
        left.send({"ok": True})
        assert right.recv() == {"ok": True}
        left.close()
        right.close()

    def test_oversized_incoming_header_rejected_and_connection_dropped(self):
        raw, framed_side = socket.socketpair()
        conn = FramedConnection(framed_side, max_frame_bytes=1024)
        raw.sendall(struct.pack(">I", 50_000_000))  # a lying length header
        with pytest.raises(FrameTooLargeError, match="1024-byte limit"):
            conn.recv()
        # The stream position is unknowable now; the connection is closed.
        with pytest.raises(TransportError):
            conn.recv()
        raw.close()

    def test_non_json_body_raises_typed_error(self):
        raw, conn = _raw_pair()
        raw.sendall(_frame(b"\xff\xfe not json"))
        with pytest.raises(TransportError, match="not valid JSON"):
            conn.recv()
        raw.close()
        conn.close()

    def test_non_json_payload_raises_typed_error_on_send(self):
        left, right = framed_pair()
        with pytest.raises(TransportError, match="not JSON-representable"):
            left.send({"bad": object()})
        left.close()
        right.close()


# --------------------------------------------------------------------------- #
# Interleaved replies on one connection
# --------------------------------------------------------------------------- #
def _echo_loop(conn: FramedConnection) -> None:
    """Reply ``{"echo": request}`` until the peer goes away."""
    try:
        while True:
            request = conn.recv()
            conn.send({"echo": request})
    except TransportError:
        pass
    finally:
        conn.close()


class TestInterleavedReplies:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_pipelined_requests_keep_order_under_seeded_delays(self, seed):
        client_end, server_end = framed_pair()
        server = threading.Thread(target=_echo_loop, args=(server_end,))
        server.start()
        # Delay-only schedule: every op may jitter, none may sever.
        seeded = FaultSchedule.seeded(seed, length=40)
        delays = {
            op: seeded.fault_for(op)
            for op in range(40)
            if seeded.fault_for(op) is not None and seeded.fault_for(op)[0] == "delay"
        }
        client = FaultyTransport(client_end, FaultSchedule(delays))
        for seq in range(5):  # five requests queued before any reply is read
            client.send({"seq": seq})
        replies = [client.recv() for _ in range(5)]
        assert replies == [{"echo": {"seq": seq}} for seq in range(5)]
        client.close()
        server.join()


# --------------------------------------------------------------------------- #
# Reconnect after sever
# --------------------------------------------------------------------------- #
class TestReconnectAfterSever:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_client_severed_by_schedule_reconnects_and_resumes(self, seed):
        with Listener() as listener:
            stop = threading.Event()

            def serve() -> None:
                while not stop.is_set():
                    try:
                        conn = listener.accept(timeout=0.2)
                    except TransportError:
                        continue
                    threading.Thread(target=_echo_loop, args=(conn,)).start()

            server = threading.Thread(target=serve)
            server.start()
            try:
                schedule = FaultSchedule.seeded(seed, length=24)
                sever_at = schedule.sever_points()[0]
                client = FaultyTransport(connect(listener.address), schedule)
                completed = 0
                with pytest.raises(ConnectionClosedError, match="severed"):
                    while True:
                        client.send({"seq": completed})
                        assert client.recv() == {"echo": {"seq": completed}}
                        completed += 1
                # Everything before the scheduled sever round-tripped intact.
                assert completed == sever_at // 2
                assert client.severed
                # The reconnect-aware dial gets a fresh conversation.
                fresh = connect(listener.address, retries=3, retry_delay=0.05)
                fresh.send({"after": "reconnect"})
                assert fresh.recv() == {"echo": {"after": "reconnect"}}
                fresh.close()
            finally:
                stop.set()
                server.join()

    def test_connect_to_dead_listener_reports_every_attempt(self):
        listener = Listener()
        address = listener.address
        listener.close()
        with pytest.raises(TransportError, match="3 attempt"):
            connect(address, retries=2, retry_delay=0.01)
