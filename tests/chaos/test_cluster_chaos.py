"""Cluster supervision under injected faults: worker death must be invisible.

The contract under test is the ROADMAP's top open item: kill a worker — a
real ``SIGKILL`` for process workers, a severed socket for thread workers,
or a scheduled :class:`FaultyTransport` sever mid-command — and every
session finishes with a wire trace byte-identical to an undisturbed run on
the single-process :class:`SessionService`.  With ``respawn=False`` the
same deaths must instead surface as a typed
:class:`WorkerUnavailableError` naming the worker (the satellite fix for
the raw ``EOFError``/``BrokenPipeError`` the pipe-era cluster leaked).
"""

from __future__ import annotations

import time

import pytest
from faults import FaultSchedule, FaultyTransport, gen0_faulty_wrapper

from repro import GoalQueryOracle, SessionService
from repro.datasets.workloads import figure1_workload
from repro.service import (
    ClusterSessionService,
    Converged,
    QuestionAsked,
    SessionServiceError,
    WorkerUnavailableError,
    event_to_wire,
)

#: The distinct seeded schedules the acceptance criteria require (>= 3).
SEEDS = (7, 21, 42)

#: The session kinds the chaos runs cycle over.
KINDS = (
    {"strategy": "lookahead-entropy"},
    {"mode": "top-k", "k": 3},
    {"strategy": "local-lexicographic"},
    {"mode": "manual-with-pruning"},
)


def _drive(service, session_id, table, oracle, limit=None):
    """Drive a session to convergence (or ``limit`` labels); the wire trace."""
    events = []
    labels = 0
    while limit is None or labels < limit:
        event = service.next_question(session_id)
        events.append(event_to_wire(event))
        if isinstance(event, Converged):
            break
        if isinstance(event, QuestionAsked):
            applied = service.answer(session_id, oracle.label(table, event.tuple_id))
            events.append(event_to_wire(applied))
            labels += 1
        else:
            answers = [(tid, oracle.label(table, tid)) for tid in event.tuple_ids]
            for applied in service.answer_many(session_id, answers):
                events.append(event_to_wire(applied))
                labels += 1
    return events


def _baseline(workload, kwargs):
    """The undisturbed single-process trace for one session kind."""
    oracle = GoalQueryOracle(workload.goal)
    service = SessionService()
    sid = service.create(workload.table, **kwargs).session_id
    return _drive(service, sid, workload.table, oracle)


def _thread_cluster(**overrides):
    """A supervised in-process cluster; heartbeat off for determinism."""
    settings = {
        "num_workers": 2,
        "backend": "thread",
        "heartbeat_interval": None,
    }
    settings.update(overrides)
    return ClusterSessionService(**settings)


@pytest.fixture(scope="module")
def workload():
    return figure1_workload("q1")


@pytest.fixture(scope="module")
def oracle(workload):
    return GoalQueryOracle(workload.goal)


# --------------------------------------------------------------------------- #
# Worker death absorbed by respawn
# --------------------------------------------------------------------------- #
class TestKillWorker:
    @pytest.mark.parametrize("kill_after", [0, 1, 3])
    def test_thread_worker_killed_mid_session_trace_identical(
        self, workload, oracle, kill_after
    ):
        baseline = _baseline(workload, KINDS[0])
        with _thread_cluster() as cluster:
            fingerprint = cluster.register_table(workload.table)
            sid = cluster.create(fingerprint, **KINDS[0]).session_id
            head = _drive(cluster, sid, workload.table, oracle, limit=kill_after)
            cluster.kill_worker(cluster.worker_index(sid))
            tail = _drive(cluster, sid, workload.table, oracle)
            assert head + tail == baseline
            assert cluster.worker_states()[cluster.worker_index(sid)]["generation"] == 1

    def test_every_kind_survives_killing_both_workers(self, workload, oracle):
        baselines = [_baseline(workload, kwargs) for kwargs in KINDS]
        with _thread_cluster() as cluster:
            fingerprint = cluster.register_table(workload.table)
            # Pinned ids alternate shards so killing both workers matters.
            sids = ("10", "11", "12", "13")
            for sid, kwargs in zip(sids, KINDS, strict=True):
                cluster.create(fingerprint, session_id=sid, **kwargs)
            heads = [
                _drive(cluster, sid, workload.table, oracle, limit=2) for sid in sids
            ]
            cluster.kill_worker(0)
            cluster.kill_worker(1)
            for sid, head, baseline in zip(sids, heads, baselines, strict=True):
                tail = _drive(cluster, sid, workload.table, oracle)
                assert head + tail == baseline
            assert [state["generation"] for state in cluster.worker_states()] == [1, 1]

    def test_process_worker_sigkilled_mid_session_trace_identical(
        self, workload, oracle
    ):
        baseline = _baseline(workload, KINDS[0])
        with ClusterSessionService(num_workers=2, heartbeat_interval=None) as cluster:
            fingerprint = cluster.register_table(workload.table)
            sid = cluster.create(fingerprint, **KINDS[0]).session_id
            owner = cluster.worker_index(sid)
            old_pid = cluster.worker_states()[owner]["pid"]
            head = _drive(cluster, sid, workload.table, oracle, limit=2)
            cluster.kill_worker(owner)  # a real SIGKILL
            tail = _drive(cluster, sid, workload.table, oracle)
            assert head + tail == baseline
            state = cluster.worker_states()[owner]
            assert state["generation"] == 1
            assert state["alive"] and state["pid"] != old_pid

    def test_save_and_session_ids_survive_a_kill(self, workload, oracle):
        with _thread_cluster() as cluster:
            fingerprint = cluster.register_table(workload.table)
            sid = cluster.create(fingerprint, **KINDS[0]).session_id
            _drive(cluster, sid, workload.table, oracle, limit=2)
            before = cluster.save(sid)
            cluster.kill_worker(cluster.worker_index(sid))
            assert cluster.save(sid) == before
            assert cluster.session_ids() == [sid]


# --------------------------------------------------------------------------- #
# Seeded fault schedules through the connection_wrapper seam
# --------------------------------------------------------------------------- #
class TestSeededSchedules:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_scheduled_sever_mid_run_trace_identical(self, workload, oracle, seed):
        baselines = [_baseline(workload, kwargs) for kwargs in KINDS]
        # length=24 draws each sever inside [6, 18) — past the ping and
        # table broadcast (ops 0-3) but well inside each shard's first
        # session drive, so every schedule is guaranteed to fire.
        schedules = {
            index: FaultSchedule.seeded(seed + index, length=24)
            for index in range(2)
        }
        wrapper, transports = gen0_faulty_wrapper(schedules)
        with _thread_cluster(connection_wrapper=wrapper) as cluster:
            fingerprint = cluster.register_table(workload.table)
            # Pinned ids alternate shards so both schedules see enough ops.
            sids = ("10", "11", "12", "13")
            for sid, kwargs, baseline in zip(sids, KINDS, baselines, strict=True):
                cluster.create(fingerprint, session_id=sid, **kwargs)
                assert _drive(cluster, sid, workload.table, oracle) == baseline
                cluster.close(sid)
            # The schedules actually fired: each gen-0 connection severed.
            assert all(transport.severed for transport in transports.values())
            assert [state["generation"] for state in cluster.worker_states()] == [1, 1]


# --------------------------------------------------------------------------- #
# Death during create and during table broadcast (the satellite fix)
# --------------------------------------------------------------------------- #
class TestDeathDuringCreate:
    def _create_severing_cluster(self, sever_op, **overrides):
        """A 2-worker cluster whose worker 0 severs at ``sever_op``.

        Per-worker gen-0 ops: ping send/recv are 0/1, the register_table
        broadcast is 2/3, so a create routed to worker 0 is ops 4 (send)
        and 5 (recv) — sever at 4 kills the worker before it applies the
        create, at 5 after it applied but before the reply arrives.
        """
        wrapper, transports = gen0_faulty_wrapper(
            {0: FaultSchedule({sever_op: ("sever",)})}
        )
        return _thread_cluster(connection_wrapper=wrapper, **overrides), transports

    @pytest.mark.parametrize("sever_op", [4, 5])
    def test_create_retried_transparently_after_worker_death(
        self, workload, oracle, sever_op
    ):
        baseline = _baseline(workload, KINDS[0])
        cluster, transports = self._create_severing_cluster(sever_op)
        with cluster:
            fingerprint = cluster.register_table(workload.table)
            # Routed to worker 0 (int("10", 16) % 2 == 0): dies mid-create.
            descriptor = cluster.create(fingerprint, session_id="10", **KINDS[0])
            assert transports[0].severed
            assert cluster.worker_states()[0]["generation"] == 1
            assert descriptor.session_id == "10"
            assert _drive(cluster, "10", workload.table, oracle) == baseline

    def test_death_during_create_without_respawn_raises_typed_error(
        self, workload
    ):
        cluster, _transports = self._create_severing_cluster(4, respawn=False)
        with cluster:
            fingerprint = cluster.register_table(workload.table)
            with pytest.raises(WorkerUnavailableError, match="worker 0") as excinfo:
                cluster.create(fingerprint, session_id="10", **KINDS[0])
            assert excinfo.value.worker_index == 0
            assert "respawn is disabled" in str(excinfo.value)
            # Typed as a service error, never a raw EOFError/BrokenPipeError.
            assert isinstance(excinfo.value, SessionServiceError)
            # The other worker is untouched: sessions still run there.
            descriptor = cluster.create(fingerprint, session_id="11", **KINDS[0])
            assert cluster.describe(descriptor.session_id).converged is False


class TestDeathDuringBroadcast:
    def test_broadcast_to_dead_worker_without_respawn_raises_typed_error(
        self, workload
    ):
        with _thread_cluster(respawn=False) as cluster:
            cluster.kill_worker(1)
            with pytest.raises(WorkerUnavailableError, match="worker 1") as excinfo:
                cluster.register_table(workload.table)
            assert excinfo.value.worker_index == 1

    def test_broadcast_respawns_dead_worker_and_registers_everywhere(
        self, workload, oracle
    ):
        baseline = _baseline(workload, KINDS[0])
        with _thread_cluster() as cluster:
            cluster.kill_worker(1)
            fingerprint = cluster.register_table(workload.table)
            assert cluster.worker_states()[1]["generation"] == 1
            # Both shards can host sessions over the broadcast table.
            for sid in ("10", "11"):
                cluster.create(fingerprint, session_id=sid, **KINDS[0])
                assert _drive(cluster, sid, workload.table, oracle) == baseline


# --------------------------------------------------------------------------- #
# Heartbeat supervision
# --------------------------------------------------------------------------- #
class TestHeartbeat:
    def test_idle_dead_worker_respawned_by_heartbeat(self, workload, oracle):
        with _thread_cluster(
            heartbeat_interval=0.05, heartbeat_timeout=2.0
        ) as cluster:
            fingerprint = cluster.register_table(workload.table)
            cluster.kill_worker(0)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                state = cluster.worker_states()[0]
                if state["generation"] >= 1 and state["alive"]:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("heartbeat never respawned the killed worker")
            # The respawned worker serves its shard without a command ever
            # having observed the death.
            sid = cluster.create(fingerprint, session_id="10", **KINDS[0]).session_id
            assert _drive(cluster, sid, workload.table, oracle) == _baseline(
                workload, KINDS[0]
            )
