"""Deterministic fault injection for the cluster transport.

The chaos suite never relies on timing accidents: every fault — a delay, a
dropped frame, a severed connection — happens at a *scheduled operation
index* drawn from a seeded RNG, so a failing run replays exactly with its
seed.  :class:`FaultyTransport` wraps a
:class:`~repro.service.transport.FramedConnection` and injects the schedule;
it plugs into the cluster through ``ClusterSessionService``'s
``connection_wrapper`` seam, and into transport-level tests directly.

Fault kinds
-----------
``("delay", seconds)``
    Sleep before performing the operation.  Models a slow network; the
    operation then proceeds normally.
``("sever",)``
    Close the underlying connection and raise
    :class:`~repro.service.transport.ConnectionClosedError`.  Models a
    machine loss mid-conversation; the peer observes EOF.
``("drop",)``
    Alias of ``sever`` kept for schedule readability: on a *stream*
    transport a silently discarded frame would desynchronise the framing
    (the peer would wait forever), so "dropping" a frame necessarily means
    losing the connection with it — the frame is discarded *and* the
    connection is severed.

Operations are counted across ``send`` and ``recv`` on one shared counter,
so a schedule addresses the wire conversation position, not the direction:
op 0 is the first frame moved in either direction.
"""

from __future__ import annotations

import random
import time

from repro.service.transport import ConnectionClosedError, FramedConnection


class FaultSchedule:
    """A mapping from operation index to fault, optionally seeded.

    Immutable once built; share one schedule between assertions and the
    transport under test to reason about exactly where the faults land.
    """

    def __init__(self, faults: dict[int, tuple] | None = None) -> None:
        self._faults = dict(faults or {})

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        length: int = 64,
        delay_rate: float = 0.2,
        max_delay: float = 0.002,
        sever_at: int | None = None,
    ) -> FaultSchedule:
        """A reproducible schedule: random small delays, one optional sever.

        ``sever_at=None`` draws the sever point from the RNG too (somewhere
        in the middle half of ``length``); pass an explicit index to pin it.
        """
        rng = random.Random(seed)
        faults: dict[int, tuple] = {}
        for op in range(length):
            if rng.random() < delay_rate:
                faults[op] = ("delay", rng.uniform(0.0, max_delay))
        if sever_at is None:
            sever_at = rng.randrange(length // 4, max(length // 4 + 1, 3 * length // 4))
        faults[sever_at] = ("sever",)
        return cls(faults)

    def fault_for(self, op_index: int) -> tuple | None:
        return self._faults.get(op_index)

    def sever_points(self) -> list[int]:
        """The op indices carrying a sever/drop, in order."""
        return sorted(
            op for op, fault in self._faults.items() if fault[0] in ("sever", "drop")
        )

    def __repr__(self) -> str:
        return f"FaultSchedule({self._faults!r})"


class FaultyTransport:
    """A :class:`FramedConnection` wrapper that injects a fault schedule.

    Duck-types the connection surface the cluster uses (``send`` / ``recv``
    / ``settimeout`` / ``fileno`` / ``close`` / ``max_frame_bytes``), so it
    drops into ``ClusterSessionService(connection_wrapper=...)`` unchanged.
    After a sever the wrapper stays severed — every later operation raises —
    exactly like a real lost machine; recovery gets a *new* connection (and
    whatever the wrapper factory decides to wrap it in).
    """

    def __init__(self, inner: FramedConnection, schedule: FaultSchedule) -> None:
        self._inner = inner
        self._schedule = schedule
        self._ops = 0
        self.severed = False

    @property
    def ops(self) -> int:
        """How many operations (send + recv) ran or were severed so far."""
        return self._ops

    @property
    def max_frame_bytes(self) -> int:
        return self._inner.max_frame_bytes

    def _apply_fault(self) -> None:
        index = self._ops
        self._ops += 1
        if self.severed:
            raise ConnectionClosedError(
                f"fault injection: connection already severed before op {index}"
            )
        fault = self._schedule.fault_for(index)
        if fault is None:
            return
        kind = fault[0]
        if kind == "delay":
            time.sleep(fault[1])
        elif kind in ("sever", "drop"):
            self.severed = True
            self._inner.close()
            raise ConnectionClosedError(
                f"fault injection: connection severed at op {index}"
            )
        else:  # pragma: no cover - schedule construction guards this
            raise ValueError(f"unknown fault kind {kind!r}")

    def send(self, payload: object) -> None:
        self._apply_fault()
        self._inner.send(payload)

    def recv(self) -> object:
        self._apply_fault()
        return self._inner.recv()

    def settimeout(self, timeout: float | None) -> None:
        self._inner.settimeout(timeout)

    def fileno(self) -> int:
        return self._inner.fileno()

    def close(self) -> None:
        self._inner.close()


def gen0_faulty_wrapper(schedules: dict[int, FaultSchedule]):
    """A ``connection_wrapper`` injecting faults into first-generation workers.

    The first connection each worker index presents is wrapped in a
    :class:`FaultyTransport` with its schedule; every *replacement*
    connection (after the injected death) is handed back clean, so the
    recovery-of-a-recovery path stays deterministic — one scheduled death
    per worker, absorbed by exactly one respawn.  Returns ``(wrapper,
    transports)``; ``transports[index]`` is the gen-0 wrapper for
    post-mortem assertions.
    """
    transports: dict[int, FaultyTransport] = {}

    def wrapper(conn: FramedConnection, index: int) -> FramedConnection:
        if index in schedules and index not in transports:
            transports[index] = FaultyTransport(conn, schedules[index])
            return transports[index]
        return conn

    return wrapper, transports
