"""The analysis framework: scoping, suppressions, reports, CLI plumbing."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    PROJECT_SCOPES,
    Analyzer,
    Scope,
    all_rules,
    rules_for,
)
from repro.analysis.__main__ import main as cli_main
from repro.analysis.framework import SYNTAX_ERROR_CODE, ModuleSource


def write(root: Path, relpath: str, source: str) -> Path:
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def project_analyzer(root: Path) -> Analyzer:
    return Analyzer(scopes=PROJECT_SCOPES, root=root)


# RPR001 inside the sans-IO scope (and *only* RPR001: an `import socket`
# would additionally trip the RPR008 transport monopoly).
VIOLATION = 'print("x")\n'


class TestRegistry:
    def test_at_least_six_rules_registered(self):
        rules = all_rules()
        assert len(rules) >= 6
        codes = [rule.code for rule in rules]
        assert codes == sorted(codes)
        for expected in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006"):
            assert expected in codes

    def test_every_rule_carries_name_and_rationale(self):
        for rule in all_rules():
            assert rule.name
            assert rule.rationale

    def test_rules_for_selects_by_code(self):
        selected = rules_for(["rpr001", "RPR003"])
        assert [rule.code for rule in selected] == ["RPR001", "RPR003"]

    def test_rules_for_rejects_unknown_codes(self):
        with pytest.raises(ValueError, match="unknown rule code"):
            rules_for(["RPR999"])


class TestScoping:
    def test_scope_include_and_exclude(self):
        scope = Scope(include=("src/repro/core/*",), exclude=("src/repro/core/kernels.py",))
        assert scope.matches("src/repro/core/engine.py")
        assert scope.matches("src/repro/core/strategies/base.py")
        assert not scope.matches("src/repro/core/kernels.py")
        assert not scope.matches("src/repro/service/service.py")

    def test_out_of_scope_file_is_not_checked(self, tmp_path):
        write(tmp_path, "examples/demo.py", VIOLATION)
        report = project_analyzer(tmp_path).analyze_paths([tmp_path / "examples"])
        assert report.ok

    def test_in_scope_file_is_checked(self, tmp_path):
        write(tmp_path, "src/repro/core/bad.py", VIOLATION)
        report = project_analyzer(tmp_path).analyze_paths([tmp_path / "src"])
        assert [finding.code for finding in report.findings] == ["RPR001"]

    def test_config_carveout_beats_rule_scope(self, tmp_path):
        # csv_io is excluded from RPR001 in the project config even though it
        # lives under the relational/ include.
        write(tmp_path, "src/repro/relational/csv_io.py", "f = open('x')\n")
        write(tmp_path, "src/repro/relational/other.py", "f = open('x')\n")
        report = project_analyzer(tmp_path).analyze_paths([tmp_path / "src"])
        assert [finding.relpath for finding in report.findings] == [
            "src/repro/relational/other.py"
        ]

    def test_scope_override_replaces_rule_default(self, tmp_path):
        write(tmp_path, "anywhere/loose.py", VIOLATION)
        analyzer = Analyzer(
            rules=rules_for(["RPR001"]),
            scopes={"RPR001": Scope(include=("*",))},
            root=tmp_path,
        )
        report = analyzer.analyze_paths([tmp_path])
        assert [finding.code for finding in report.findings] == ["RPR001"]


class TestSuppressions:
    def test_inline_suppression_silences_the_line(self, tmp_path):
        write(
            tmp_path,
            "src/repro/core/bad.py",
            'print("x")  # repro-lint: disable=RPR001\n',
        )
        report = project_analyzer(tmp_path).analyze_paths([tmp_path / "src"])
        assert report.ok
        assert report.suppressed == 1

    def test_standalone_comment_suppresses_next_line(self, tmp_path):
        write(
            tmp_path,
            "src/repro/core/bad.py",
            """\
            # repro-lint: disable=RPR001 - reasons may follow the codes
            print("x")
            """,
        )
        report = project_analyzer(tmp_path).analyze_paths([tmp_path / "src"])
        assert report.ok
        assert report.suppressed == 1

    def test_suppression_is_per_code(self, tmp_path):
        write(
            tmp_path,
            "src/repro/core/bad.py",
            'print("x")  # repro-lint: disable=RPR005\n',
        )
        report = project_analyzer(tmp_path).analyze_paths([tmp_path / "src"])
        assert [finding.code for finding in report.findings] == ["RPR001"]
        assert report.suppressed == 0

    def test_multiple_codes_and_all(self, tmp_path):
        write(
            tmp_path,
            "src/repro/core/bad.py",
            """\
            print("x")  # repro-lint: disable=RPR001, RPR004
            import numpy  # repro-lint: disable=all
            """,
        )
        report = project_analyzer(tmp_path).analyze_paths([tmp_path / "src"])
        assert report.ok
        assert report.suppressed == 2

    def test_suppression_on_wrong_line_does_not_leak(self, tmp_path):
        write(
            tmp_path,
            "src/repro/core/bad.py",
            """\
            x = 1  # repro-lint: disable=RPR001
            print("x")
            """,
        )
        report = project_analyzer(tmp_path).analyze_paths([tmp_path / "src"])
        assert [finding.code for finding in report.findings] == ["RPR001"]


class TestReports:
    def test_finding_rendering_is_stable(self, tmp_path):
        write(tmp_path, "src/repro/core/bad.py", "\nimport socket\n")
        report = project_analyzer(tmp_path).analyze_paths([tmp_path / "src"])
        assert report.findings[0].render() == (
            "src/repro/core/bad.py:2 RPR001 import of IO/transport module "
            "'socket' in sans-IO code"
        )

    def test_findings_sorted_by_path_then_line(self, tmp_path):
        write(tmp_path, "src/repro/core/b.py", 'print("b")\nprint("b")\n')
        write(tmp_path, "src/repro/core/a.py", 'print("a")\n')
        report = project_analyzer(tmp_path).analyze_paths([tmp_path / "src"])
        locations = [(finding.relpath, finding.line) for finding in report.findings]
        assert locations == [
            ("src/repro/core/a.py", 1),
            ("src/repro/core/b.py", 1),
            ("src/repro/core/b.py", 2),
        ]

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        write(tmp_path, "src/repro/core/broken.py", "def f(:\n")
        report = project_analyzer(tmp_path).analyze_paths([tmp_path / "src"])
        assert [finding.code for finding in report.findings] == [SYNTAX_ERROR_CODE]

    def test_counts_by_rule(self, tmp_path):
        write(tmp_path, "src/repro/core/bad.py", 'print("x")\nimport numpy\n')
        report = project_analyzer(tmp_path).analyze_paths([tmp_path / "src"])
        assert report.counts_by_rule() == {"RPR001": 1, "RPR004": 1}

    def test_directories_are_walked_and_pycache_skipped(self, tmp_path):
        write(tmp_path, "src/repro/core/bad.py", VIOLATION)
        write(tmp_path, "src/repro/core/__pycache__/bad.py", VIOLATION)
        write(tmp_path, "src/repro/core/.hidden/bad.py", VIOLATION)
        report = project_analyzer(tmp_path).analyze_paths([tmp_path / "src"])
        assert len(report.findings) == 1
        assert report.files_checked == 1


class TestModuleSource:
    def test_parse_records_lines_and_relpath(self, tmp_path):
        path = write(tmp_path, "m.py", "a = 1\nb = 2\n")
        module = ModuleSource.parse(path, "m.py", path.read_text())
        assert module.lines == ("a = 1", "b = 2")
        assert module.relpath == "m.py"


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        write(tmp_path, "src/repro/core/fine.py", "x = 1\n")
        assert cli_main(["--root", str(tmp_path), str(tmp_path / "src")]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        write(tmp_path, "src/repro/core/bad.py", VIOLATION)
        assert cli_main(["--root", str(tmp_path), str(tmp_path / "src")]) == 1
        out = capsys.readouterr().out
        assert "src/repro/core/bad.py:1 RPR001" in out

    def test_select_restricts_rules(self, tmp_path):
        write(tmp_path, "src/repro/core/bad.py", VIOLATION)
        args = ["--root", str(tmp_path), "--select", "RPR005", str(tmp_path / "src")]
        assert cli_main(args) == 0

    def test_stats_lists_every_selected_rule(self, tmp_path, capsys):
        write(tmp_path, "src/repro/core/fine.py", "x = 1\n")
        assert cli_main(["--root", str(tmp_path), "--stats", str(tmp_path / "src")]) == 0
        out = capsys.readouterr().out
        for code in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006"):
            assert f"{code} (" in out

    def test_list_rules(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "RPR001 sans-io-purity" in out


class TestUnusedSuppressions:
    def test_stale_comment_is_reported_under_the_flag(self, tmp_path):
        write(tmp_path, "src/repro/core/fine.py", "x = 1  # repro-lint: disable=RPR001\n")
        analyzer = Analyzer(
            scopes=PROJECT_SCOPES, root=tmp_path, warn_unused_suppressions=True
        )
        report = analyzer.analyze_paths([tmp_path / "src"])
        assert [finding.code for finding in report.findings] == ["RPR099"]
        assert "unused suppression" in report.findings[0].message
        assert "RPR001" in report.findings[0].message

    def test_used_comment_is_not_reported(self, tmp_path):
        write(tmp_path, "src/repro/core/bad.py", 'print("x")  # repro-lint: disable=RPR001\n')
        analyzer = Analyzer(
            scopes=PROJECT_SCOPES, root=tmp_path, warn_unused_suppressions=True
        )
        report = analyzer.analyze_paths([tmp_path / "src"])
        assert report.ok
        assert report.suppressed == 1

    def test_off_by_default(self, tmp_path):
        write(tmp_path, "src/repro/core/fine.py", "x = 1  # repro-lint: disable=RPR001\n")
        report = project_analyzer(tmp_path).analyze_paths([tmp_path / "src"])
        assert report.ok

    def test_suppressions_are_parsed_in_clean_files_too(self, tmp_path):
        # The per-file analysis reports the stale comment even when the file
        # carries no findings at all (the suppression parse is unconditional).
        path = write(tmp_path, "src/repro/core/fine.py", "x = 1  # repro-lint: disable=RPR001\n")
        analysis = project_analyzer(tmp_path).analyze_file(path)
        assert analysis.findings == []
        assert analysis.suppressed == 0
        assert [finding.code for finding in analysis.unused_suppressions] == ["RPR099"]

    def test_docstring_mention_is_not_a_suppression(self, tmp_path):
        write(
            tmp_path,
            "src/repro/core/docs.py",
            '''\
            """Use ``# repro-lint: disable=RPR001`` to suppress a finding."""

            x = 1
            ''',
        )
        analyzer = Analyzer(
            scopes=PROJECT_SCOPES, root=tmp_path, warn_unused_suppressions=True
        )
        assert analyzer.analyze_paths([tmp_path / "src"]).ok

    def test_mid_comment_mention_is_not_a_suppression(self, tmp_path):
        write(
            tmp_path,
            "src/repro/core/docs.py",
            "#: the directive looks like ``# repro-lint: disable=RPR001``\nx = 1\n",
        )
        analyzer = Analyzer(
            scopes=PROJECT_SCOPES, root=tmp_path, warn_unused_suppressions=True
        )
        assert analyzer.analyze_paths([tmp_path / "src"]).ok


class TestJsonFormat:
    def test_json_report_carries_findings_and_counts(self, tmp_path, capsys):
        import json

        write(tmp_path, "src/repro/core/bad.py", VIOLATION)
        assert cli_main(["--root", str(tmp_path), "--format", "json", str(tmp_path / "src")]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        assert payload["counts_by_rule"] == {"RPR001": 1}
        (finding,) = payload["findings"]
        assert finding["path"] == "src/repro/core/bad.py"
        assert finding["line"] == 1
        assert finding["code"] == "RPR001"
        assert finding["message"]

    def test_json_report_on_a_clean_tree(self, tmp_path, capsys):
        import json

        write(tmp_path, "src/repro/core/fine.py", "x = 1\n")
        assert cli_main(["--root", str(tmp_path), "--format", "json", str(tmp_path / "src")]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["findings"] == []


class TestRestrictReport:
    def test_only_restricted_paths_are_reported(self, tmp_path, capsys):
        write(tmp_path, "src/repro/core/a.py", VIOLATION)
        write(tmp_path, "src/repro/core/b.py", VIOLATION)
        args = [
            "--root",
            str(tmp_path),
            "--restrict-report",
            "src/repro/core/a.py",
            str(tmp_path / "src"),
        ]
        assert cli_main(args) == 1
        out = capsys.readouterr().out
        assert "src/repro/core/a.py:1 RPR001" in out
        assert "src/repro/core/b.py" not in out

    def test_exit_zero_when_restricted_files_are_clean(self, tmp_path):
        write(tmp_path, "src/repro/core/fine.py", "x = 1\n")
        write(tmp_path, "src/repro/core/bad.py", VIOLATION)
        args = [
            "--root",
            str(tmp_path),
            "--restrict-report",
            "src/repro/core/fine.py",
            str(tmp_path / "src"),
        ]
        assert cli_main(args) == 0
