"""The whole-program rules: RPR009 layering, RPR010 lock order,
RPR011 blocking-in-async, RPR012 resource lifecycle.

Each rule gets a violating fixture and a clean twin, run through the real
:class:`~repro.analysis.framework.Analyzer` so scope filtering and
suppression handling are exercised too.  The RPR010 inversion fixture is
modeled on the cluster supervisor's real lock graph (slot locks nested
against a registry lock) with one injected opposite-order path.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import PROJECT_SCOPES, Analyzer, Scope, rules_for


def write(root: Path, relpath: str, source: str) -> Path:
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def run_rule(root: Path, code: str):
    """Run one project rule over everything under ``root``."""
    analyzer = Analyzer(
        rules=rules_for([code]), scopes={code: Scope(include=("*",))}, root=root
    )
    return analyzer.analyze_paths([root])


class TestLayerArchitecture:
    def _layout(self, tmp_path):
        write(tmp_path, "src/repro/__init__.py", "")
        write(tmp_path, "src/repro/core/__init__.py", "")
        write(tmp_path, "src/repro/service/__init__.py", "")
        write(tmp_path, "src/repro/service/stepper.py", "class Stepper:\n    pass\n")

    def test_upward_import_time_edge_is_flagged(self, tmp_path):
        self._layout(tmp_path)
        write(
            tmp_path,
            "src/repro/core/engine.py",
            "from ..service.stepper import Stepper\n",
        )
        report = run_rule(tmp_path, "RPR009")
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.relpath == "src/repro/core/engine.py"
        assert "layer 'core' must not import layer 'service'" in finding.message
        assert "defer the import" in finding.message

    def test_one_import_statement_yields_one_finding(self, tmp_path):
        # ``from x import a, b`` records one edge per name; the rule dedups.
        self._layout(tmp_path)
        write(tmp_path, "src/repro/service/extra.py", "a = 1\nb = 2\n")
        write(
            tmp_path,
            "src/repro/core/engine.py",
            "from ..service.extra import a, b\n",
        )
        report = run_rule(tmp_path, "RPR009")
        assert len(report.findings) == 1

    def test_deferred_and_type_checking_imports_are_sanctioned(self, tmp_path):
        self._layout(tmp_path)
        write(
            tmp_path,
            "src/repro/core/engine.py",
            """\
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from ..service.stepper import Stepper

            def build():
                from ..service.stepper import Stepper

                return Stepper()
            """,
        )
        report = run_rule(tmp_path, "RPR009")
        assert report.ok

    def test_downward_import_is_allowed(self, tmp_path):
        self._layout(tmp_path)
        write(tmp_path, "src/repro/core/engine.py", "class Engine:\n    pass\n")
        write(
            tmp_path,
            "src/repro/service/service.py",
            "from ..core.engine import Engine\n",
        )
        report = run_rule(tmp_path, "RPR009")
        assert report.ok

    def test_analysis_layer_imports_nothing(self, tmp_path):
        write(tmp_path, "src/repro/__init__.py", "")
        write(tmp_path, "src/repro/exceptions.py", "class ReproError(Exception):\n    pass\n")
        write(tmp_path, "src/repro/analysis/__init__.py", "")
        write(
            tmp_path,
            "src/repro/analysis/rulez.py",
            "from ..exceptions import ReproError\n",
        )
        report = run_rule(tmp_path, "RPR009")
        assert len(report.findings) == 1
        assert "allowed: nothing" in report.findings[0].message


#: Two classes with slot/registry locks, as in the cluster supervisor.
SUPERVISOR_PRELUDE = """\
from threading import Lock


class WorkerSlot:
    def __init__(self) -> None:
        self.lock = Lock()


class Supervisor:
    def __init__(self) -> None:
        self._accept_lock = Lock()
        self.slot = WorkerSlot()
"""


class TestLockOrder:
    def test_injected_inversion_is_a_potential_deadlock(self, tmp_path):
        write(
            tmp_path,
            "pkg/cluster.py",
            SUPERVISOR_PRELUDE
            + """\

    def request(self) -> None:
        with self.slot.lock:
            with self._accept_lock:
                pass

    def broadcast(self) -> None:
        with self._accept_lock:
            with self.slot.lock:
                pass
""",
        )
        report = run_rule(tmp_path, "RPR010")
        assert len(report.findings) == 1
        message = report.findings[0].message
        assert "potential deadlock: lock-order cycle" in message
        assert "Supervisor._accept_lock" in message and "WorkerSlot.lock" in message
        # Both halves of the inversion are cited with their sites.
        assert message.count("pkg/cluster.py:") >= 2

    def test_inversion_through_a_call_is_found_transitively(self, tmp_path):
        # request() holds the slot lock and *calls* into the registry lock —
        # the shape of the real supervisor's recovery path.
        write(
            tmp_path,
            "pkg/cluster.py",
            SUPERVISOR_PRELUDE
            + """\

    def request(self) -> None:
        with self.slot.lock:
            self._attach()

    def _attach(self) -> None:
        with self._accept_lock:
            pass

    def broadcast(self) -> None:
        with self._accept_lock:
            with self.slot.lock:
                pass
""",
        )
        report = run_rule(tmp_path, "RPR010")
        assert len(report.findings) == 1
        assert "potential deadlock" in report.findings[0].message

    def test_consistent_order_is_clean(self, tmp_path):
        write(
            tmp_path,
            "pkg/cluster.py",
            SUPERVISOR_PRELUDE
            + """\

    def request(self) -> None:
        with self._accept_lock:
            with self.slot.lock:
                pass

    def broadcast(self) -> None:
        with self._accept_lock:
            with self.slot.lock:
                pass
""",
        )
        report = run_rule(tmp_path, "RPR010")
        assert report.ok

    def test_reentrant_same_lock_nesting_makes_no_edge(self, tmp_path):
        write(
            tmp_path,
            "pkg/cluster.py",
            SUPERVISOR_PRELUDE
            + """\

    def reenter(self) -> None:
        with self._accept_lock:
            with self._accept_lock:
                pass
""",
        )
        report = run_rule(tmp_path, "RPR010")
        assert report.ok


class TestBlockingInAsync:
    def test_time_sleep_in_async_def_is_flagged(self, tmp_path):
        write(
            tmp_path,
            "pkg/aio.py",
            """\
            import time


            async def tick() -> None:
                time.sleep(0.1)
            """,
        )
        report = run_rule(tmp_path, "RPR011")
        assert len(report.findings) == 1
        message = report.findings[0].message
        assert "blocking call time.sleep()" in message
        assert "async def 'tick'" in message
        assert "create_thread_pool" in message

    def test_sync_service_method_on_typed_receiver_is_flagged(self, tmp_path):
        write(
            tmp_path,
            "pkg/aio.py",
            """\
            class SessionService:
                def create(self, table):
                    return table


            async def drive(service: SessionService) -> None:
                service.create("t")
            """,
        )
        report = run_rule(tmp_path, "RPR011")
        assert len(report.findings) == 1
        assert "direct sync-service call SessionService.create()" in report.findings[0].message

    def test_bound_method_offloaded_to_executor_is_exempt(self, tmp_path):
        # Passing the bound method does not *call* it on the loop thread.
        write(
            tmp_path,
            "pkg/aio.py",
            """\
            from functools import partial


            class SessionService:
                def create(self, table):
                    return table


            async def drive(service: SessionService, loop) -> None:
                await loop.run_in_executor(None, partial(service.create, "t"))
            """,
        )
        report = run_rule(tmp_path, "RPR011")
        assert report.ok

    def test_nested_sync_def_is_a_separate_context(self, tmp_path):
        write(
            tmp_path,
            "pkg/aio.py",
            """\
            import time


            async def schedule() -> object:
                def worker() -> None:
                    time.sleep(0.1)

                return worker
            """,
        )
        report = run_rule(tmp_path, "RPR011")
        assert report.ok

    def test_plain_sync_def_is_exempt(self, tmp_path):
        write(
            tmp_path,
            "pkg/sync.py",
            """\
            import time


            def tick() -> None:
                time.sleep(0.1)
            """,
        )
        report = run_rule(tmp_path, "RPR011")
        assert report.ok


class TestResourceLifecycle:
    def test_unowned_connection_is_flagged(self, tmp_path):
        write(
            tmp_path,
            "pkg/net.py",
            """\
            from pkg.transport import FramedConnection


            def dial(sock):
                conn = FramedConnection(sock)
                conn.send(b"hello")
            """,
        )
        report = run_rule(tmp_path, "RPR012")
        assert len(report.findings) == 1
        message = report.findings[0].message
        assert "FramedConnection constructed in 'dial'" in message
        assert "has no owner on some path" in message

    def test_close_outside_try_finally_is_still_a_leak(self, tmp_path):
        write(
            tmp_path,
            "pkg/net.py",
            """\
            from pkg.transport import FramedConnection


            def dial(sock):
                conn = FramedConnection(sock)
                conn.send(b"hello")
                conn.close()
            """,
        )
        report = run_rule(tmp_path, "RPR012")
        assert len(report.findings) == 1
        assert "closed only outside try/finally" in report.findings[0].message

    def test_popen_without_owner_is_flagged(self, tmp_path):
        write(
            tmp_path,
            "pkg/spawn.py",
            """\
            from subprocess import Popen


            def launch(cmd):
                proc = Popen(cmd)
                proc.wait()
            """,
        )
        report = run_rule(tmp_path, "RPR012")
        assert len(report.findings) == 1
        assert "Popen constructed in 'launch'" in report.findings[0].message

    def test_stored_on_self_without_lifecycle_is_flagged(self, tmp_path):
        write(
            tmp_path,
            "pkg/holder.py",
            """\
            from pkg.transport import FramedConnection


            class Holder:
                def __init__(self, sock) -> None:
                    self.conn = FramedConnection(sock)
            """,
        )
        report = run_rule(tmp_path, "RPR012")
        assert len(report.findings) == 1
        assert "no close/shutdown/__exit__ lifecycle method" in report.findings[0].message

    def test_sanctioned_ownership_shapes_are_clean(self, tmp_path):
        write(
            tmp_path,
            "pkg/net.py",
            """\
            from pkg.transport import FramedConnection


            def ok_with(sock):
                with FramedConnection(sock) as conn:
                    conn.send(b"hello")


            def ok_finally(sock):
                conn = FramedConnection(sock)
                try:
                    conn.send(b"hello")
                finally:
                    conn.close()


            def ok_return(sock):
                conn = FramedConnection(sock)
                return conn


            def ok_close_on_error(sock, register):
                conn = FramedConnection(sock)
                try:
                    register(conn)
                except BaseException:
                    conn.close()
                    raise


            def ok_exit_stack(sock, stack):
                conn = stack.enter_context(FramedConnection(sock))
                return None


            class Owner:
                def __init__(self, sock) -> None:
                    self.conn = FramedConnection(sock)

                def close(self) -> None:
                    self.conn.close()
            """,
        )
        report = run_rule(tmp_path, "RPR012")
        assert report.ok

    def test_framed_pair_leaks_once_per_site(self, tmp_path):
        write(
            tmp_path,
            "pkg/transport.py",
            """\
            def framed_pair(limit):
                return 1, 2
            """,
        )
        write(
            tmp_path,
            "pkg/net.py",
            """\
            from pkg.transport import framed_pair


            def both_leak():
                a, b = framed_pair(10)
                return None
            """,
        )
        report = run_rule(tmp_path, "RPR012")
        assert len(report.findings) == 1
        assert "framed_pair()" in report.findings[0].message


class TestProjectRulesIntegration:
    def test_project_findings_honor_inline_suppressions(self, tmp_path):
        write(
            tmp_path,
            "pkg/aio.py",
            """\
            import time


            async def tick() -> None:
                time.sleep(0.1)  # repro-lint: disable=RPR011
            """,
        )
        report = run_rule(tmp_path, "RPR011")
        assert report.ok
        assert report.suppressed == 1

    def test_project_findings_honor_scope_excludes(self, tmp_path):
        write(
            tmp_path,
            "pkg/aio.py",
            """\
            import time


            async def tick() -> None:
                time.sleep(0.1)
            """,
        )
        analyzer = Analyzer(
            rules=rules_for(["RPR011"]),
            scopes={"RPR011": Scope(include=("*",), exclude=("pkg/aio.py",))},
            root=tmp_path,
        )
        assert analyzer.analyze_paths([tmp_path]).ok

    def test_all_four_project_rules_are_registered_and_scoped(self):
        codes = {rule.code for rule in rules_for(["RPR009", "RPR010", "RPR011", "RPR012"])}
        assert codes == {"RPR009", "RPR010", "RPR011", "RPR012"}
        for code in codes:
            assert code in PROJECT_SCOPES
