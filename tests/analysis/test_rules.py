"""Each invariant rule: one (or more) violating fixture and a clean fixture."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import PROJECT_SCOPES, Analyzer, rules_for


def run_rule(code: str, root: Path, relpath: str, source: str) -> list:
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    analyzer = Analyzer(rules=rules_for([code]), scopes=PROJECT_SCOPES, root=root)
    return analyzer.analyze_paths([path]).findings


class TestSansIO:
    """RPR001: the core/protocol layers never do IO."""

    def test_flags_io_imports_and_calls(self, tmp_path):
        findings = run_rule(
            "RPR001",
            tmp_path,
            "src/repro/core/violating.py",
            """\
            import socket
            from http.server import HTTPServer
            import time

            def leak(state):
                print(state)
                data = open("dump.json").read()
                answer = input("? ")
                time.sleep(0.1)
                return data, answer
            """,
        )
        messages = [finding.message for finding in findings]
        assert len(findings) == 6
        assert any("'socket'" in message for message in messages)
        assert any("'http.server'" in message for message in messages)
        assert any("print()" in message for message in messages)
        assert any("open()" in message for message in messages)
        assert any("input()" in message for message in messages)
        assert any("time.sleep()" in message for message in messages)

    def test_clean_core_module_passes(self, tmp_path):
        findings = run_rule(
            "RPR001",
            tmp_path,
            "src/repro/core/clean.py",
            """\
            import time

            def score(masks):
                started = time.perf_counter()  # the allowed clock
                total = sum(masks)
                return total, time.perf_counter() - started
            """,
        )
        assert findings == []

    def test_relative_imports_are_not_confused_with_stdlib(self, tmp_path):
        findings = run_rule(
            "RPR001",
            tmp_path,
            "src/repro/core/relative.py",
            "from .http import helper\n",  # a *local* module named http
        )
        assert findings == []


class TestLockDiscipline:
    """RPR002: shared registries only under ``with self._lock``."""

    # A fixture modeled on repro.service.service.SessionService: registry
    # dicts bound in __init__ next to self._lock, mutated by the lifecycle
    # methods — with one injected unlocked write and one unlocked read.
    SESSION_SERVICE_FIXTURE = """\
    import threading
    import uuid


    class SessionService:
        def __init__(self):
            self._lock = threading.RLock()
            self._tables = {}
            self._sessions = {}

        def register_table(self, fingerprint, table):
            with self._lock:
                self._tables.setdefault(fingerprint, table)
            return fingerprint

        def create(self, table):
            session_id = uuid.uuid4().hex
            self._sessions[session_id] = table  # injected: unlocked write
            return session_id

        def describe(self, session_id):
            return self._sessions[session_id]  # injected: unlocked read

        def close(self, session_id):
            with self._lock:
                return self._sessions.pop(session_id)
    """

    def test_flags_injected_unlocked_registry_access(self, tmp_path):
        findings = run_rule(
            "RPR002", tmp_path, "src/repro/service/violating.py", self.SESSION_SERVICE_FIXTURE
        )
        flagged = {(finding.line, finding.message.split("'")[1]) for finding in findings}
        assert len(findings) == 2
        methods = {finding.message.split(" ")[0] for finding in findings}
        assert methods == {"SessionService.create", "SessionService.describe"}
        assert all(attr == "self._sessions" for _, attr in flagged)

    def test_locked_service_passes(self, tmp_path):
        findings = run_rule(
            "RPR002",
            tmp_path,
            "src/repro/service/clean.py",
            """\
            import threading


            class SessionService:
                def __init__(self):
                    self._lock = threading.RLock()
                    self._sessions = {}

                def create(self, sid, stepper):
                    with self._lock:
                        self._sessions[sid] = stepper

                def close(self, sid):
                    with self._lock:
                        return self._sessions.pop(sid)
            """,
        )
        assert findings == []

    def test_foreign_lock_object_counts(self, tmp_path):
        # `with managed.lock:` / `with worker.lock:` dominate accesses too.
        findings = run_rule(
            "RPR002",
            tmp_path,
            "src/repro/service/foreign.py",
            """\
            import threading


            class Cluster:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._workers = {}

                def add(self, index, worker):
                    with self._lock:
                        self._workers[index] = worker

                def request(self, index, payload):
                    with self._lock:
                        worker = self._workers[index]
                    with worker.lock:
                        return worker.send(payload)
            """,
        )
        assert findings == []

    def test_class_without_lock_is_exempt(self, tmp_path):
        # The asyncio facade pattern: shared dicts, no self._lock — the
        # event loop is the serialisation mechanism, not a mutex.
        findings = run_rule(
            "RPR002",
            tmp_path,
            "src/repro/service/lockfree.py",
            """\
            class AsyncFacade:
                def __init__(self):
                    self._streams = {}

                def register(self, sid):
                    self._streams.setdefault(sid, [])
            """,
        )
        assert findings == []

    def test_attribute_only_mutated_in_init_is_not_a_registry(self, tmp_path):
        findings = run_rule(
            "RPR002",
            tmp_path,
            "src/repro/service/initonly.py",
            """\
            import threading


            class Pool:
                def __init__(self, count):
                    self._lock = threading.Lock()
                    self._workers = []
                    for index in range(count):
                        self._workers.append(index)

                def pick(self, shard):
                    return self._workers[shard % len(self._workers)]
            """,
        )
        assert findings == []


class TestLazyTables:
    """RPR003: no '.rows' / list(table) in the inference core."""

    def test_flags_materialization(self, tmp_path):
        findings = run_rule(
            "RPR003",
            tmp_path,
            "src/repro/core/strategies/violating.py",
            """\
            def score(table):
                for row in table.rows:
                    pass
                return list(table)
            """,
        )
        assert len(findings) == 2
        assert "'.rows'" in findings[0].message
        assert "list(table)" in findings[1].message

    def test_type_level_strategy_passes(self, tmp_path):
        findings = run_rule(
            "RPR003",
            tmp_path,
            "src/repro/core/strategies/clean.py",
            """\
            def score(state):
                sizes = state.type_sizes()
                counts = state.prune_counts_for_restricted(sizes)
                return max(counts, default=None)
            """,
        )
        assert findings == []

    def test_outside_core_is_out_of_scope(self, tmp_path):
        findings = run_rule(
            "RPR003",
            tmp_path,
            "src/repro/relational/candidate.py",
            "def materialize(table):\n    return table.rows\n",
        )
        assert findings == []


class TestNumpyContainment:
    """RPR004: numpy imports are guarded everywhere but kernels.py."""

    def test_flags_unguarded_import(self, tmp_path):
        findings = run_rule(
            "RPR004",
            tmp_path,
            "src/repro/experiments/violating.py",
            "import numpy as np\nfrom numpy import int64\n",
        )
        assert len(findings) == 2

    def test_guarded_import_passes(self, tmp_path):
        findings = run_rule(
            "RPR004",
            tmp_path,
            "src/repro/relational/clean.py",
            """\
            try:
                import numpy as _np
            except ImportError:
                _np = None
            """,
        )
        assert findings == []

    def test_kernels_carveout(self, tmp_path):
        findings = run_rule(
            "RPR004",
            tmp_path,
            "src/repro/core/kernels.py",
            "import numpy\n",
        )
        assert findings == []

    def test_guard_must_catch_import_error(self, tmp_path):
        findings = run_rule(
            "RPR004",
            tmp_path,
            "src/repro/core/wrong_guard.py",
            """\
            try:
                import numpy
            except ValueError:
                numpy = None
            """,
        )
        assert len(findings) == 1


class TestSeededRng:
    """RPR005: no module-level RNG state anywhere."""

    def test_flags_module_level_random(self, tmp_path):
        findings = run_rule(
            "RPR005",
            tmp_path,
            "src/repro/datasets/violating.py",
            """\
            import random

            def draw(values):
                random.seed(7)
                random.shuffle(values)
                return random.choice(values)
            """,
        )
        assert len(findings) == 3
        assert all("random.Random(seed)" in finding.message for finding in findings)

    def test_flags_from_random_import(self, tmp_path):
        findings = run_rule(
            "RPR005",
            tmp_path,
            "src/repro/datasets/fromimport.py",
            "from random import shuffle\n",
        )
        assert len(findings) == 1

    def test_flags_numpy_legacy_global_generator(self, tmp_path):
        findings = run_rule(
            "RPR005",
            tmp_path,
            "src/repro/experiments/nprandom.py",
            """\
            try:
                import numpy as np
            except ImportError:
                np = None

            def noise(n):
                np.random.seed(0)
                return np.random.rand(n)
            """,
        )
        assert len(findings) == 2

    def test_seeded_instance_passes(self, tmp_path):
        findings = run_rule(
            "RPR005",
            tmp_path,
            "src/repro/datasets/clean.py",
            """\
            import random

            def draw(values, seed):
                rng = random.Random(seed)
                rng.shuffle(values)
                return rng.choice(values)
            """,
        )
        assert findings == []


class TestWireRegistry:
    """RPR006: tagged event dataclasses, the codec registry, and the union agree."""

    PROTOCOL_TEMPLATE = """\
    from dataclasses import dataclass
    from typing import Union


    @dataclass(frozen=True)
    class QuestionAsked:
        step: int
        type = "question"


    @dataclass(frozen=True)
    class LabelApplied:
        step: int
        type = "label_applied"

    {extra}

    Event = Union[{union}]

    _EVENT_CLASSES: dict[str, type] = {{
        cls.type: cls for cls in ({registry})
    }}
    """

    def render(self, extra: str = "", union: str = "", registry: str = "") -> str:
        return textwrap.dedent(self.PROTOCOL_TEMPLATE).format(
            extra=textwrap.dedent(extra),
            union=union or "QuestionAsked, LabelApplied",
            registry=registry or "QuestionAsked, LabelApplied",
        )

    def test_complete_registry_passes(self, tmp_path):
        findings = run_rule(
            "RPR006", tmp_path, "src/repro/service/protocol.py", self.render()
        )
        assert findings == []

    def test_flags_event_missing_from_registry_and_union(self, tmp_path):
        source = self.render(
            extra="""\

            @dataclass(frozen=True)
            class SessionPaused:
                step: int
                type = "paused"
            """,
        )
        findings = run_rule("RPR006", tmp_path, "src/repro/service/protocol.py", source)
        messages = [finding.message for finding in findings]
        assert len(findings) == 2
        assert any("missing from _EVENT_CLASSES" in message for message in messages)
        assert any("missing from the Event union" in message for message in messages)

    def test_flags_duplicate_wire_tag(self, tmp_path):
        source = self.render(
            extra="""\

            @dataclass(frozen=True)
            class QuestionAskedV2:
                step: int
                type = "question"
            """,
            union="QuestionAsked, LabelApplied, QuestionAskedV2",
            registry="QuestionAsked, LabelApplied, QuestionAskedV2",
        )
        findings = run_rule("RPR006", tmp_path, "src/repro/service/protocol.py", source)
        assert len(findings) == 1
        assert "collides" in findings[0].message

    def test_flags_stale_registry_entry(self, tmp_path):
        source = self.render(registry="QuestionAsked, LabelApplied, RemovedEvent")
        findings = run_rule("RPR006", tmp_path, "src/repro/service/protocol.py", source)
        assert len(findings) == 1
        assert "'RemovedEvent'" in findings[0].message

    def test_untagged_dataclass_is_ignored(self, tmp_path):
        source = self.render(
            extra="""\

            @dataclass(frozen=True)
            class NotAnEvent:
                value: int
            """,
        )
        findings = run_rule("RPR006", tmp_path, "src/repro/service/protocol.py", source)
        assert findings == []


class TestExecutorDiscipline:
    """RPR007: pools are lazy, owned, and created only by core/parallel."""

    def test_flags_module_level_pool(self, tmp_path):
        findings = run_rule(
            "RPR007",
            tmp_path,
            "src/repro/experiments/violating.py",
            """\
            from concurrent.futures import ThreadPoolExecutor

            EXECUTOR = ThreadPoolExecutor(max_workers=4)
            """,
        )
        assert len(findings) == 1
        assert "module-level ThreadPoolExecutor()" in findings[0].message

    def test_flags_creation_outside_sanctioned_module(self, tmp_path):
        findings = run_rule(
            "RPR007",
            tmp_path,
            "src/repro/experiments/rogue.py",
            """\
            import concurrent.futures

            def score(chunks):
                pool = concurrent.futures.ProcessPoolExecutor(max_workers=2)
                try:
                    return list(pool.map(sum, chunks))
                finally:
                    pool.shutdown()
            """,
        )
        assert len(findings) == 1
        assert "outside repro.core.parallel" in findings[0].message

    def test_sanctioned_module_may_create_lazily(self, tmp_path):
        findings = run_rule(
            "RPR007",
            tmp_path,
            "src/repro/core/parallel.py",
            """\
            from concurrent.futures import ThreadPoolExecutor

            def create_thread_pool(max_workers=None):
                return ThreadPoolExecutor(max_workers=max_workers)
            """,
        )
        assert findings == []

    def test_sanctioned_module_still_forbids_module_level_pools(self, tmp_path):
        findings = run_rule(
            "RPR007",
            tmp_path,
            "src/repro/core/parallel.py",
            """\
            from concurrent.futures import ThreadPoolExecutor

            _POOL = ThreadPoolExecutor(max_workers=2)
            """,
        )
        assert len(findings) == 1
        assert "module-level" in findings[0].message

    def test_flags_pool_owner_without_shutdown_surface(self, tmp_path):
        findings = run_rule(
            "RPR007",
            tmp_path,
            "src/repro/service/leaky.py",
            """\
            from repro.core.parallel import create_thread_pool


            class Facade:
                def __init__(self):
                    self._executor = create_thread_pool(max_workers=2)

                def call(self, fn):
                    return self._executor.submit(fn)
            """,
        )
        assert len(findings) == 1
        assert "Facade owns a worker pool" in findings[0].message

    def test_pool_owner_with_close_passes(self, tmp_path):
        findings = run_rule(
            "RPR007",
            tmp_path,
            "src/repro/service/owned.py",
            """\
            from repro.core.parallel import create_thread_pool


            class Facade:
                def __init__(self):
                    self._executor = create_thread_pool(max_workers=2)

                def close(self):
                    self._executor.shutdown(wait=True)
            """,
        )
        assert findings == []

    def test_async_context_manager_counts_as_shutdown(self, tmp_path):
        findings = run_rule(
            "RPR007",
            tmp_path,
            "src/repro/service/async_owned.py",
            """\
            from repro.core.parallel import create_thread_pool


            class Facade:
                def __init__(self):
                    self._executor = create_thread_pool(max_workers=2)

                async def __aexit__(self, exc_type, exc, tb):
                    self._executor.shutdown(wait=True)
            """,
        )
        assert findings == []

    def test_local_pool_variable_needs_no_class_shutdown(self, tmp_path):
        # A function-local pool (created via the sanctioned factory) is the
        # caller's business; the ownership check only watches `self` binds.
        findings = run_rule(
            "RPR007",
            tmp_path,
            "src/repro/experiments/localpool.py",
            """\
            from repro.core.parallel import create_thread_pool

            def fan_out(fn, chunks):
                with create_thread_pool(max_workers=2) as pool:
                    return list(pool.map(fn, chunks))
            """,
        )
        assert findings == []


class TestRawSockets:
    """RPR008: sockets and pipe connections exist only in service/transport.py."""

    def test_flags_socket_import_outside_transport(self, tmp_path):
        findings = run_rule(
            "RPR008",
            tmp_path,
            "src/repro/service/rogue.py",
            """\
            import socket

            def dial(host, port):
                return socket.create_connection((host, port))
            """,
        )
        assert len(findings) == 1
        assert "'socket'" in findings[0].message
        assert "FramedConnection" in findings[0].message

    def test_flags_from_socket_import_and_nested_import(self, tmp_path):
        findings = run_rule(
            "RPR008",
            tmp_path,
            "benchmarks/bench_rogue.py",
            """\
            from socket import socketpair

            def lazy():
                import socket
                return socket, socketpair
            """,
        )
        assert len(findings) == 2

    def test_flags_multiprocessing_connection_machinery(self, tmp_path):
        findings = run_rule(
            "RPR008",
            tmp_path,
            "src/repro/service/pipe_era.py",
            """\
            import multiprocessing
            from multiprocessing.connection import Connection
            from multiprocessing import Pipe

            def link():
                return multiprocessing.Pipe(duplex=True)
            """,
        )
        messages = [finding.message for finding in findings]
        assert len(findings) == 3  # plain `import multiprocessing` is fine
        assert any("'multiprocessing.connection'" in message for message in messages)
        assert any("multiprocessing.Pipe" in message for message in messages)
        assert any("multiprocessing.Pipe()" in message for message in messages)

    def test_transport_module_is_exempt(self, tmp_path):
        findings = run_rule(
            "RPR008",
            tmp_path,
            "src/repro/service/transport.py",
            """\
            import socket

            def listen(port):
                server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                server.bind(("127.0.0.1", port))
                return server
            """,
        )
        assert findings == []

    def test_process_spawning_cluster_is_clean(self, tmp_path):
        findings = run_rule(
            "RPR008",
            tmp_path,
            "src/repro/service/cluster_like.py",
            """\
            import multiprocessing

            from repro.service.transport import Listener, connect

            def launch(target, address):
                ctx = multiprocessing.get_context("spawn")
                process = ctx.Process(target=target, args=(address,), daemon=True)
                process.start()
                return process
            """,
        )
        assert findings == []
