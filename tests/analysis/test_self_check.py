"""The analyzer dogfoods: the live tree must be clean under every rule.

This is the test CI relies on between pushes: any change that violates a
project invariant — an IO call in the core, an unlocked registry access, an
unguarded numpy import, a layer inversion, a lock-order cycle — fails here
with the exact ``file:line CODE`` the developer needs, before it ships a
race or a perf cliff.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import PROJECT_SCOPES, Analyzer, all_rules
from repro.analysis.framework import ModuleSource

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The trees CI lints; `tests/` is exempt (fixtures violate on purpose).
LINTED_TREES = ("src", "benchmarks", "examples", "scripts")

#: Every sanctioned inline suppression in the linted trees, as
#: ``(relpath, code) -> count``.  Grow this table only with a reviewed
#: reason — a new entry is a new carve-out from a project invariant.
SANCTIONED_SUPPRESSIONS = {
    # The interactive ConsoleOracle *is* the terminal frontend: its two
    # prompts and its re-ask print are the only sanctioned IO in the core.
    ("src/repro/core/oracle.py", "RPR001"): 3,
}


def _linted_paths() -> list[Path]:
    paths = [REPO_ROOT / name for name in LINTED_TREES if (REPO_ROOT / name).is_dir()]
    assert paths, "repository layout changed: none of the linted trees exist"
    return paths


def test_live_tree_is_clean_under_all_rules():
    analyzer = Analyzer(scopes=PROJECT_SCOPES, root=REPO_ROOT)
    report = analyzer.analyze_paths(_linted_paths())
    rendered = "\n".join(finding.render() for finding in report.findings)
    assert report.ok, f"invariant violations in the live tree:\n{rendered}"
    assert report.files_checked > 50


def test_every_rule_runs_and_finds_nothing():
    # Per-rule pinning: all twelve rules are registered, and each reports
    # zero findings on the live tree (not merely "the total is zero").
    codes = {rule.code for rule in all_rules()}
    assert codes == {f"RPR{n:03d}" for n in range(1, 13)}
    analyzer = Analyzer(scopes=PROJECT_SCOPES, root=REPO_ROOT)
    report = analyzer.analyze_paths(_linted_paths())
    assert report.counts_by_rule() == {}


def test_suppression_sites_match_the_sanctioned_table():
    # Not just the count: the exact files and codes.  A suppression moving
    # to a new file, or covering a new rule, must be re-reviewed here.
    found: dict[tuple[str, str], int] = {}
    for tree in _linted_paths():
        for path in sorted(tree.rglob("*.py")):
            relpath = path.relative_to(REPO_ROOT).as_posix()
            module = ModuleSource.parse(path, relpath, path.read_text(encoding="utf-8"))
            for comment in module.suppression_comments():
                for code in sorted(comment.codes):
                    key = (relpath, code)
                    found[key] = found.get(key, 0) + 1
    assert found == SANCTIONED_SUPPRESSIONS


def test_no_suppression_is_stale():
    # Every sanctioned comment must actually suppress a finding; a stale one
    # is a carve-out with nothing behind it and fails as RPR099.
    analyzer = Analyzer(
        scopes=PROJECT_SCOPES, root=REPO_ROOT, warn_unused_suppressions=True
    )
    report = analyzer.analyze_paths(_linted_paths())
    rendered = "\n".join(finding.render() for finding in report.findings)
    assert report.ok, f"stale suppressions (or findings) in the live tree:\n{rendered}"
    assert report.suppressed == sum(SANCTIONED_SUPPRESSIONS.values())


def test_project_scopes_cover_every_rule():
    codes = {rule.code for rule in all_rules()}
    assert set(PROJECT_SCOPES) == codes
