"""The analyzer dogfoods: the live tree must be clean under every rule.

This is the test CI relies on between pushes: any change that violates a
project invariant — an IO call in the core, an unlocked registry access, an
unguarded numpy import — fails here with the exact ``file:line CODE`` the
developer needs, before it ships a race or a perf cliff.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import PROJECT_SCOPES, Analyzer, all_rules

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The trees CI lints; `tests/` is exempt (fixtures violate on purpose).
LINTED_TREES = ("src", "benchmarks", "examples", "scripts")


def test_live_tree_is_clean_under_all_rules():
    analyzer = Analyzer(scopes=PROJECT_SCOPES, root=REPO_ROOT)
    paths = [REPO_ROOT / name for name in LINTED_TREES if (REPO_ROOT / name).is_dir()]
    assert paths, "repository layout changed: none of the linted trees exist"
    report = analyzer.analyze_paths(paths)
    rendered = "\n".join(finding.render() for finding in report.findings)
    assert report.ok, f"invariant violations in the live tree:\n{rendered}"
    assert report.files_checked > 50


def test_known_suppressions_are_the_console_oracle_only():
    # The live tree carries exactly the reviewed suppressions: the three
    # terminal calls of the interactive ConsoleOracle.  Grow this list only
    # with a reviewed reason.
    analyzer = Analyzer(scopes=PROJECT_SCOPES, root=REPO_ROOT)
    report = analyzer.analyze_paths([REPO_ROOT / "src"])
    assert report.suppressed == 3


def test_project_scopes_cover_every_rule():
    codes = {rule.code for rule in all_rules()}
    assert set(PROJECT_SCOPES) == codes
