"""The whole-program model: import-graph resolution and classification.

These tests build a :class:`~repro.analysis.project.ProjectModel` over small
synthetic package trees and assert on the *resolved* graph — relative
imports anchored at the right package, ``from pkg import mod`` vs ``from mod
import symbol``, re-exports through ``__init__.py``, and the import-time /
``TYPE_CHECKING`` / deferred classification the layer rule relies on.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import PROJECT_SCOPES, Analyzer
from repro.analysis.framework import ModuleSource
from repro.analysis.project import ProjectModel


def write(root: Path, relpath: str, source: str) -> Path:
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def build_model(root: Path) -> ProjectModel:
    sources = []
    for path in sorted(root.rglob("*.py")):
        relpath = path.relative_to(root).as_posix()
        sources.append(ModuleSource.parse(path, relpath, path.read_text(encoding="utf-8")))
    return ProjectModel.build(sources, root)


def edges_of(model: ProjectModel, importer: str) -> set[tuple[str, bool, bool]]:
    return {
        (edge.target, edge.deferred, edge.type_checking)
        for edge in model.import_edges
        if edge.importer == importer
    }


class TestModuleNaming:
    def test_names_anchor_at_the_topmost_package(self, tmp_path):
        write(tmp_path, "src/pkg/__init__.py", "")
        write(tmp_path, "src/pkg/sub/__init__.py", "")
        write(tmp_path, "src/pkg/sub/mod.py", "x = 1\n")
        write(tmp_path, "scripts/tool.py", "x = 1\n")
        model = build_model(tmp_path)
        # src/ carries no __init__.py, so the package root is pkg.
        assert "pkg.sub.mod" in model.modules
        assert model.modules["pkg.sub"].is_package
        # A file outside any package is a top-level module named by its stem.
        assert "tool" in model.modules


class TestRelativeImports:
    def test_single_dot_resolves_to_the_sibling(self, tmp_path):
        write(tmp_path, "pkg/__init__.py", "")
        write(tmp_path, "pkg/b.py", "thing = 1\n")
        write(tmp_path, "pkg/a.py", "from .b import thing\n")
        model = build_model(tmp_path)
        assert edges_of(model, "pkg.a") == {("pkg.b", False, False)}

    def test_double_dot_resolves_to_the_parent_package(self, tmp_path):
        write(tmp_path, "pkg/__init__.py", "")
        write(tmp_path, "pkg/b.py", "thing = 1\n")
        write(tmp_path, "pkg/sub/__init__.py", "")
        write(tmp_path, "pkg/sub/c.py", "from ..b import thing\n")
        model = build_model(tmp_path)
        assert edges_of(model, "pkg.sub.c") == {("pkg.b", False, False)}

    def test_package_init_anchors_at_itself(self, tmp_path):
        # ``from .mod import x`` inside pkg/__init__.py is pkg.mod, not
        # a sibling of pkg.
        write(tmp_path, "pkg/__init__.py", "from .mod import x\n")
        write(tmp_path, "pkg/mod.py", "x = 1\n")
        model = build_model(tmp_path)
        assert edges_of(model, "pkg") == {("pkg.mod", False, False)}


class TestFromImportTargets:
    def test_from_package_import_module_binds_the_module(self, tmp_path):
        write(tmp_path, "pkg/__init__.py", "")
        write(tmp_path, "pkg/b.py", "x = 1\n")
        write(tmp_path, "user.py", "from pkg import b\n")
        model = build_model(tmp_path)
        # The edge points at the module that executes, and the symbol table
        # binds the local name to it.
        assert edges_of(model, "user") == {("pkg.b", False, False)}
        assert model.modules["user"].symbols["b"] == "pkg.b"

    def test_from_module_import_symbol_targets_the_module(self, tmp_path):
        write(tmp_path, "pkg/__init__.py", "")
        write(tmp_path, "pkg/b.py", "helper = 1\n")
        write(tmp_path, "user.py", "from pkg.b import helper\n")
        model = build_model(tmp_path)
        # ``helper`` is not a module, so the edge falls back to pkg.b and
        # the symbol records the dotted origin of the name.
        assert edges_of(model, "user") == {("pkg.b", False, False)}
        assert model.modules["user"].symbols["helper"] == "pkg.b.helper"

    def test_init_reexport_resolves_through_the_package(self, tmp_path):
        write(tmp_path, "pkg/__init__.py", "from .impl import Thing\n")
        write(tmp_path, "pkg/impl.py", "class Thing:\n    pass\n")
        write(tmp_path, "user.py", "from pkg import Thing\n")
        model = build_model(tmp_path)
        # The re-export gives pkg an edge to pkg.impl; the consumer's edge
        # stops at pkg (Thing is a symbol there, not a module) — the
        # documented granularity of the graph.
        assert edges_of(model, "pkg") == {("pkg.impl", False, False)}
        assert edges_of(model, "user") == {("pkg", False, False)}
        # The class is still findable through the re-export chain.
        resolved = model.resolve_class("Thing", "user")
        assert resolved is not None and resolved.module == "pkg.impl"


class TestEdgeClassification:
    def test_function_body_imports_are_deferred(self, tmp_path):
        write(tmp_path, "pkg/__init__.py", "")
        write(tmp_path, "pkg/b.py", "x = 1\n")
        write(
            tmp_path,
            "pkg/a.py",
            """\
            def use():
                from .b import x
                return x
            """,
        )
        model = build_model(tmp_path)
        assert edges_of(model, "pkg.a") == {("pkg.b", True, False)}

    def test_type_checking_imports_are_classified(self, tmp_path):
        write(tmp_path, "pkg/__init__.py", "")
        write(tmp_path, "pkg/b.py", "class B:\n    pass\n")
        write(
            tmp_path,
            "pkg/a.py",
            """\
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from .b import B
            """,
        )
        model = build_model(tmp_path)
        assert edges_of(model, "pkg.a") == {("pkg.b", False, True)}
        assert not any(edge.import_time for edge in model.import_edges if edge.importer == "pkg.a")

    def test_external_imports_record_no_edge(self, tmp_path):
        write(tmp_path, "pkg/__init__.py", "")
        write(tmp_path, "pkg/a.py", "import json\nfrom collections import abc\n")
        model = build_model(tmp_path)
        assert edges_of(model, "pkg.a") == set()
        # ... but the symbol table still learns the binding, for dotted-name
        # resolution (``json.dumps`` -> ``json.dumps``).
        assert model.modules["pkg.a"].symbols["json"] == "json"


class TestCycleDetection:
    def test_two_module_cycle_is_flagged_once_by_rpr009(self, tmp_path):
        write(tmp_path, "cyc/__init__.py", "")
        write(tmp_path, "cyc/a.py", "from .b import beta\nalpha = 1\n")
        write(tmp_path, "cyc/b.py", "from .a import alpha\nbeta = 2\n")
        analyzer = Analyzer(scopes=PROJECT_SCOPES, root=tmp_path)
        report = analyzer.analyze_paths([tmp_path])
        cycles = [f for f in report.findings if f.code == "RPR009"]
        assert len(cycles) == 1
        assert "import cycle" in cycles[0].message
        assert "cyc.a" in cycles[0].message and "cyc.b" in cycles[0].message

    def test_deferred_back_edge_breaks_the_cycle(self, tmp_path):
        write(tmp_path, "cyc/__init__.py", "")
        write(tmp_path, "cyc/a.py", "from .b import beta\nalpha = 1\n")
        write(
            tmp_path,
            "cyc/b.py",
            """\
            beta = 2

            def late():
                from .a import alpha
                return alpha
            """,
        )
        analyzer = Analyzer(scopes=PROJECT_SCOPES, root=tmp_path)
        report = analyzer.analyze_paths([tmp_path])
        assert [f for f in report.findings if f.code == "RPR009"] == []
