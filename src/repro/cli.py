"""Command-line interface for JIM.

Three subcommands cover the library's main entry points without writing any
Python:

``jim demo``
    Drive the interactive console demo (interaction type 4) on one of the
    built-in datasets or on a flat CSV file; you answer ``y``/``n`` for each
    proposed tuple.  With ``--goal`` the answers are simulated instead, which
    is handy for scripted runs and for CI.

``jim infer``
    Run a fully simulated inference (goal-query oracle) on a dataset and print
    the inferred query, the number of membership queries, the SQL rendering
    and — when the candidate table has provenance — the GAV mapping.

``jim strategies``
    List the registered strategies (the names accepted by ``--strategy``).

Examples::

    jim demo --dataset flights --goal "To=City,Airline=Discount"
    jim infer --dataset setgame --goal "Left.color=Right.color" --strategy lookahead-minmax
    jim infer --csv mytable.csv --goal "a=b"
    jim strategies
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .core.engine import JoinInferenceEngine
from .core.oracle import ConsoleOracle, GoalQueryOracle, Oracle
from .core.queries import JoinQuery
from .core.strategies.registry import available_strategies
from .datasets import flights_hotels, setgame, synthetic, tpch
from .exceptions import ReproError
from .relational.candidate import CandidateTable
from .relational.csv_io import read_candidate_table_csv
from .relational.mappings import as_gav_mapping
from .service.stepper import InferenceSession
from .ui.renderer import render_table

#: Built-in datasets selectable with ``--dataset``.
DATASET_CHOICES = ("flights", "setgame", "tpch", "synthetic")


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``jim`` command."""
    parser = argparse.ArgumentParser(
        prog="jim",
        description="JIM — interactive join query inference from membership queries",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--dataset",
            choices=DATASET_CHOICES,
            default="flights",
            help="built-in dataset to run on (default: the paper's flights&hotels table)",
        )
        sub.add_argument("--csv", help="flat CSV file to use as the candidate table instead")
        sub.add_argument(
            "--strategy",
            default="lookahead-entropy",
            help="strategy for choosing the next tuple (see 'jim strategies')",
        )
        sub.add_argument(
            "--goal",
            help="goal query as comma-separated equalities, e.g. 'To=City,Airline=Discount'",
        )
        sub.add_argument(
            "--max-interactions",
            type=int,
            default=None,
            help="stop after this many membership queries even if not converged",
        )

    demo = subparsers.add_parser("demo", help="interactive console demo (you answer y/n)")
    add_common(demo)

    infer = subparsers.add_parser("infer", help="simulated inference against a goal query")
    add_common(infer)

    subparsers.add_parser("strategies", help="list the registered strategies")
    return parser


def parse_goal(text: str) -> JoinQuery:
    """Parse ``"A=B,C=D"`` into a :class:`JoinQuery`."""
    pairs = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "=" not in chunk:
            raise ReproError(f"cannot parse goal atom {chunk!r}; expected 'Attr=Attr'")
        left, right = (part.strip() for part in chunk.split("=", 1))
        if not left or not right:
            raise ReproError(f"cannot parse goal atom {chunk!r}; expected 'Attr=Attr'")
        pairs.append((left, right))
    if not pairs:
        raise ReproError("the goal query must contain at least one equality")
    return JoinQuery.of(*pairs)


def load_table(dataset: str, csv_path: str | None) -> CandidateTable:
    """The candidate table selected by ``--dataset`` / ``--csv``."""
    if csv_path:
        return read_candidate_table_csv(csv_path)
    if dataset == "flights":
        return flights_hotels.figure1_table()
    if dataset == "setgame":
        return setgame.pair_table(deck_size=12, seed=7)
    if dataset == "tpch":
        return tpch.tpch_candidate_table("orders-customer", max_rows=None)
    if dataset == "synthetic":
        return synthetic.generate_candidate_table(
            synthetic.SyntheticConfig(tuples_per_relation=10, domain_size=4, seed=0)
        )
    raise ReproError(f"unknown dataset {dataset!r}")  # pragma: no cover - argparse guards this


def default_goal(dataset: str) -> JoinQuery:
    """A sensible goal query per built-in dataset (used when --goal is omitted)."""
    if dataset == "flights":
        return flights_hotels.query_q2()
    if dataset == "setgame":
        return setgame.demo_goal_query()
    if dataset == "tpch":
        return tpch.fk_join_goal("orders-customer")
    return synthetic.random_goal_query(
        synthetic.generate_candidate_table(
            synthetic.SyntheticConfig(tuples_per_relation=10, domain_size=4, seed=0)
        ),
        num_atoms=2,
        seed=2,
    )


def _print_outcome(
    table: CandidateTable, query: JoinQuery, num_interactions: int, converged: bool
) -> None:
    """The result block shared by the ``demo`` and ``infer`` subcommands."""
    print(f"inferred join query : {query.describe()}")
    print(f"membership queries  : {num_interactions} (of {len(table)} candidate tuples)")
    print(f"converged           : {converged}")
    print(f"SQL                 : {query.to_sql(table)}")
    if table.has_provenance() and not query.is_empty:
        mapping = as_gav_mapping(query, table, target="InferredJoin")
        print(f"GAV mapping         : {mapping.to_datalog()}")


def run_inference(args: argparse.Namespace, oracle: Oracle) -> int:
    """Driver of the ``infer`` subcommand (blocking engine run)."""
    table = load_table(args.dataset, args.csv)
    engine = JoinInferenceEngine(table, strategy=args.strategy)
    result = engine.run(oracle, max_interactions=args.max_interactions)
    _print_outcome(table, result.query, result.num_interactions, result.converged)
    return 0


def run_demo(args: argparse.Namespace, oracle: Oracle) -> int:
    """Driver of the ``demo`` subcommand.

    The CLI is a frontend like any other since the sans-IO redesign: it steps
    an :class:`~repro.service.stepper.InferenceSession`, consulting the
    oracle (a human at the terminal, or a goal query for scripted runs) for
    each :class:`~repro.service.protocol.QuestionAsked` event.
    """
    table = load_table(args.dataset, args.csv)
    print(render_table(table, max_rows=20))
    print()
    session = InferenceSession(table, mode="guided", strategy=args.strategy)
    converged = True
    while not session.is_converged():
        if (
            args.max_interactions is not None
            and session.num_interactions >= args.max_interactions
        ):
            converged = False
            break
        question = session.next_question()
        session.submit(oracle.label(table, question.tuple_id))
    _print_outcome(table, session.inferred_query(), session.num_interactions, converged)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``jim`` command (returns a process exit code)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "strategies":
            for name in available_strategies():
                print(name)
            return 0
        if args.command == "infer":
            goal = parse_goal(args.goal) if args.goal else default_goal(args.dataset)
            print(f"goal query          : {goal.describe()}")
            return run_inference(args, GoalQueryOracle(goal))
        # demo: a human answers unless a goal is given for scripted runs.
        if args.goal:
            oracle: Oracle = GoalQueryOracle(parse_goal(args.goal))
        else:
            oracle = ConsoleOracle()
        return run_demo(args, oracle)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
