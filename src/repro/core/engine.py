"""The interactive inference engine — the loop of the paper's Figure 2.

``input: a set of tuples`` → while an informative tuple remains: choose one
according to the strategy Υ, ask the user (oracle) for its label, propagate
the label — → ``output: inferred join query``.

:class:`JoinInferenceEngine` drives that loop against any
:class:`~repro.core.oracle.Oracle` and any
:class:`~repro.core.strategies.base.Strategy`, records every interaction in an
:class:`InferenceTrace`, and returns an :class:`InferenceResult` containing
the inferred query, the number of membership queries asked, and convergence
diagnostics.

Since the sans-IO redesign the engine is a thin *adapter*: the loop itself
lives in :class:`~repro.service.stepper.InferenceSession` (the caller-driven
stepper every frontend shares) and :meth:`JoinInferenceEngine.run` merely
feeds it oracle answers.  The blocking oracle-callback signature is kept for
the experiments, the CLI and existing callers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..exceptions import ConvergenceError
from ..relational.candidate import CandidateTable
from .atoms import AtomScope, AtomUniverse
from .examples import Label
from .oracle import Oracle
from .propagation import PropagationResult
from .queries import JoinQuery
from .state import InferenceState
from .strategies.base import Strategy
from .strategies.lookahead import EntropyStrategy
from .strategies.registry import create_strategy


@dataclass(frozen=True)
class Interaction:
    """One answered membership query and its effect.

    ``elapsed_seconds`` is *engine* time only — choosing the tuple plus
    propagating the label.  The time the oracle took to answer (human or
    crowd think-time, network latency, …) is reported separately as
    ``oracle_seconds`` so timing experiments are not corrupted by it.
    """

    step: int
    tuple_id: int
    label: Label
    pruned: int
    informative_remaining: int
    elapsed_seconds: float
    oracle_seconds: float = 0.0

    def as_dict(self) -> dict[str, object]:
        """Plain-dictionary form for experiment logging."""
        return {
            "step": self.step,
            "tuple_id": self.tuple_id,
            "label": self.label.value,
            "pruned": self.pruned,
            "informative_remaining": self.informative_remaining,
            "elapsed_seconds": self.elapsed_seconds,
            "oracle_seconds": self.oracle_seconds,
        }


@dataclass
class InferenceTrace:
    """The full history of one inference run."""

    interactions: list[Interaction] = field(default_factory=list)
    propagations: list[PropagationResult] = field(default_factory=list)

    @property
    def num_interactions(self) -> int:
        """Number of membership queries asked."""
        return len(self.interactions)

    @property
    def total_pruned(self) -> int:
        """Total number of tuples grayed out across the run."""
        return sum(interaction.pruned for interaction in self.interactions)

    @property
    def total_seconds(self) -> float:
        """Total time spent choosing tuples and propagating labels.

        Excludes the time the oracle took to answer; see
        :attr:`total_oracle_seconds` for that.
        """
        return sum(interaction.elapsed_seconds for interaction in self.interactions)

    @property
    def total_oracle_seconds(self) -> float:
        """Total time spent waiting for the oracle's answers."""
        return sum(interaction.oracle_seconds for interaction in self.interactions)

    def labels(self) -> dict[int, Label]:
        """The labels collected, keyed by tuple id."""
        return {interaction.tuple_id: interaction.label for interaction in self.interactions}


@dataclass
class InferenceResult:
    """The outcome of one interactive inference run."""

    query: JoinQuery
    trace: InferenceTrace
    state: InferenceState
    converged: bool
    strategy_name: str

    @property
    def num_interactions(self) -> int:
        """Number of membership queries asked."""
        return self.trace.num_interactions

    def selected_tuples(self) -> frozenset[int]:
        """The tuples of the candidate table selected by the inferred query."""
        return self.query.evaluate(self.state.table)

    def matches_goal(self, goal: JoinQuery) -> bool:
        """Whether the inferred query is instance-equivalent to ``goal``."""
        return self.query.instance_equivalent(goal, self.state.table)

    def summary(self) -> str:
        """One-line human-readable description of the run."""
        status = "converged" if self.converged else "stopped early"
        return (
            f"{status} after {self.num_interactions} interaction(s) "
            f"[{self.strategy_name}]: {self.query.describe()}"
        )


class JoinInferenceEngine:
    """Runs the interactive join-inference loop of the paper's Figure 2."""

    def __init__(
        self,
        table: CandidateTable,
        strategy: Strategy | str | None = None,
        universe: AtomUniverse | None = None,
        scope: AtomScope = AtomScope.CROSS_RELATION,
        strict: bool = True,
    ) -> None:
        self.table = table
        self.universe = universe if universe is not None else AtomUniverse.from_table(table, scope=scope)
        if strategy is None:
            self.strategy: Strategy = EntropyStrategy()
        elif isinstance(strategy, str):
            self.strategy = create_strategy(strategy)
        else:
            self.strategy = strategy
        self.strict = strict

    def new_state(self) -> InferenceState:
        """A fresh inference state over the engine's table and universe."""
        return InferenceState(self.table, universe=self.universe, strict=self.strict)

    def run(
        self,
        oracle: Oracle,
        max_interactions: int | None = None,
        initial_state: InferenceState | None = None,
        require_convergence: bool = False,
    ) -> InferenceResult:
        """Run the interactive loop until convergence (or ``max_interactions``).

        Parameters
        ----------
        oracle:
            Answers the membership queries (a simulated goal-query user, a
            console user, …).
        max_interactions:
            Optional cap on the number of questions; when the cap is reached
            before convergence the result has ``converged=False`` (or a
            :class:`~repro.exceptions.ConvergenceError` is raised when
            ``require_convergence`` is set).
        initial_state:
            Continue from an existing state (e.g. after a manual-labeling
            session) instead of starting from scratch.  The state must have
            been built over this engine's candidate table and an identical
            atom universe; a mismatch raises :class:`ValueError`, since the
            oracle would otherwise be asked about tuple ids the state
            resolves against a different table.
        """
        self.strategy.reset()
        if initial_state is not None:
            other = initial_state.table
            # Structural comparison, not identity: resuming a persisted session
            # legitimately reloads an equal table in a fresh process.  The
            # cheap checks run first so the same-table fast path never forces
            # a factorized table to materialise its rows.
            if other is not self.table and (
                other.attribute_names != self.table.attribute_names
                or len(other) != len(self.table)
                or any(a != b for a, b in zip(other, self.table, strict=True))
            ):
                raise ValueError(
                    "initial_state was built over a different candidate table than the "
                    "engine; tuple ids would silently refer to different tuples"
                )
            if initial_state.universe.atoms != self.universe.atoms:
                raise ValueError(
                    "initial_state uses a different atom universe than the engine "
                    f"({len(initial_state.universe.atoms)} vs {len(self.universe.atoms)} atoms)"
                )
        state = initial_state if initial_state is not None else self.new_state()
        # Imported lazily: the service layer builds on top of the core types
        # defined above, so a module-level import would be circular.
        from ..service.stepper import InferenceSession

        session = InferenceSession(self.table, mode="guided", strategy=self.strategy, state=state)
        while not session.is_converged():
            if max_interactions is not None and session.num_interactions >= max_interactions:
                if require_convergence:
                    raise ConvergenceError(
                        f"inference did not converge within {max_interactions} interactions"
                    )
                return InferenceResult(
                    query=state.inferred_query(),
                    trace=session.trace,
                    state=state,
                    converged=False,
                    strategy_name=self.strategy.name,
                )
            question = session.next_question()
            oracle_started = time.perf_counter()
            label = oracle.label(self.table, question.tuple_id)
            oracle_seconds = time.perf_counter() - oracle_started
            session.submit(label, oracle_seconds=oracle_seconds)
        return InferenceResult(
            query=state.inferred_query(),
            trace=session.trace,
            state=state,
            converged=True,
            strategy_name=self.strategy.name,
        )


def infer_join(
    table: CandidateTable,
    oracle: Oracle,
    strategy: Strategy | str | None = None,
    scope: AtomScope = AtomScope.CROSS_RELATION,
    max_interactions: int | None = None,
    universe: AtomUniverse | None = None,
    strict: bool = True,
    require_convergence: bool = False,
) -> InferenceResult:
    """One-call convenience wrapper: build an engine and run it.

    Exposes the engine's full configuration surface — ``universe`` (restrict
    the candidate atoms instead of deriving them from ``scope``), ``strict``
    (whether contradicting labels raise) and ``require_convergence`` (raise
    :class:`~repro.exceptions.ConvergenceError` when ``max_interactions`` is
    hit before convergence) — rather than silently using the defaults.

    This is the function the quickstart example uses::

        result = infer_join(table, GoalQueryOracle(goal), strategy="lookahead-entropy")
        print(result.query.describe(), result.num_interactions)
    """
    engine = JoinInferenceEngine(
        table, strategy=strategy, universe=universe, scope=scope, strict=strict
    )
    return engine.run(
        oracle, max_interactions=max_interactions, require_convergence=require_convergence
    )
