"""Oracles: the sources of membership-query answers.

In the demo a human attendee answers "Yes/No" for each proposed tuple; in the
experiments of the underlying research paper "the user providing the examples
is in fact a program that labels tuples w.r.t. a goal join query".  Both are
modelled as :class:`Oracle` implementations:

* :class:`GoalQueryOracle` — the experimental user: labels tuples according to
  a fixed goal query;
* :class:`NoisyOracle` — a goal-query user that errs with some probability
  (useful to study robustness; the paper assumes a consistent user);
* :class:`FixedLabelsOracle` — replays a predefined set of answers (used to
  replay the paper's worked example);
* :class:`ConsoleOracle` — a real human typing ``y``/``n`` at a prompt, the
  programmatic stand-in for the demo GUI.
"""

from __future__ import annotations

import abc
import random
from collections.abc import Callable, Mapping

from ..exceptions import OracleError
from ..relational.candidate import CandidateTable
from .examples import Label
from .queries import JoinQuery


class Oracle(abc.ABC):
    """Anything able to answer membership queries about candidate tuples."""

    @abc.abstractmethod
    def label(self, table: CandidateTable, tuple_id: int) -> Label:
        """The label of the given candidate tuple."""

    def reset(self) -> None:
        """Forget any per-session state (default: nothing to forget)."""


class GoalQueryOracle(Oracle):
    """Labels tuples positively exactly when the goal query selects them.

    This is the simulated user of the paper's experiments.  The goal query's
    selection is computed lazily per candidate table and cached, so repeated
    membership queries cost a dictionary lookup.
    """

    def __init__(self, goal: JoinQuery) -> None:
        self.goal = goal
        self._cache: dict[int, frozenset[int]] = {}
        self.questions_answered = 0

    def _selected(self, table: CandidateTable) -> frozenset[int]:
        key = id(table)
        if key not in self._cache:
            self._cache[key] = self.goal.evaluate(table)
        return self._cache[key]

    def label(self, table: CandidateTable, tuple_id: int) -> Label:
        """Positive iff the goal query selects the tuple."""
        self.questions_answered += 1
        return Label.POSITIVE if tuple_id in self._selected(table) else Label.NEGATIVE

    def reset(self) -> None:
        """Reset the question counter (the selection cache is kept)."""
        self.questions_answered = 0


class NoisyOracle(Oracle):
    """Wraps another oracle and flips its answer with probability ``error_rate``.

    JIM assumes a consistent user; this oracle exists for robustness
    experiments and for exercising the non-strict labeling mode.
    """

    def __init__(self, base: Oracle, error_rate: float, seed: int | None = None) -> None:
        if not 0.0 <= error_rate <= 1.0:
            raise OracleError(f"error_rate must be within [0, 1], got {error_rate}")
        self.base = base
        self.error_rate = error_rate
        self._rng = random.Random(seed)
        self.flips = 0

    def label(self, table: CandidateTable, tuple_id: int) -> Label:
        """The base oracle's answer, possibly flipped."""
        answer = self.base.label(table, tuple_id)
        if self._rng.random() < self.error_rate:
            self.flips += 1
            return answer.opposite()
        return answer

    def reset(self) -> None:
        self.base.reset()
        self.flips = 0


class FixedLabelsOracle(Oracle):
    """Replays a predefined mapping ``tuple_id -> label``.

    Asking about a tuple without a predefined answer raises
    :class:`~repro.exceptions.OracleError` — useful in tests to assert that
    only the expected membership queries are asked.
    """

    def __init__(self, labels: Mapping[int, Label | str | bool]) -> None:
        self._labels = {tuple_id: Label.from_value(value) for tuple_id, value in labels.items()}

    def label(self, table: CandidateTable, tuple_id: int) -> Label:
        """The predefined label of the tuple."""
        try:
            return self._labels[tuple_id]
        except KeyError as exc:
            raise OracleError(f"no predefined label for tuple {tuple_id}") from exc


class CallbackOracle(Oracle):
    """Delegates labeling to an arbitrary callable ``(table, tuple_id) -> label``."""

    def __init__(self, callback: Callable[[CandidateTable, int], Label | str | bool]) -> None:
        self._callback = callback

    def label(self, table: CandidateTable, tuple_id: int) -> Label:
        """Whatever the callback answers, parsed into a :class:`Label`."""
        return Label.from_value(self._callback(table, tuple_id))


class ConsoleOracle(Oracle):
    """Asks a human at the terminal — the stand-in for the demo's GUI clicks.

    The tuple is rendered with its attribute names and the user answers
    ``y``/``n`` (empty or unparseable answers are re-asked).
    """

    def __init__(self, prompt: str = "Include this tuple in the join result? [y/n] ") -> None:
        self.prompt = prompt

    def label(self, table: CandidateTable, tuple_id: int) -> Label:
        """Ask the user about the tuple until a parseable answer is given."""
        row = table.row(tuple_id)
        rendered = ", ".join(
            f"{name}={value!r}" for name, value in zip(table.attribute_names, row, strict=True)
        )
        # This oracle *is* the terminal frontend — the one sanctioned IO site
        # in core/ (every other oracle is pure).
        print(f"Tuple #{tuple_id}: {rendered}")  # repro-lint: disable=RPR001
        while True:
            answer = input(self.prompt).strip()  # repro-lint: disable=RPR001
            try:
                return Label.from_value(answer)
            except Exception:  # noqa: BLE001 - any unparseable answer is re-asked
                # repro-lint: disable=RPR001 - the re-ask prompt of the console oracle
                print("Please answer 'y' (part of the join result) or 'n' (not part of it).")
