"""Core of JIM: the interactive join-query inference model and engine.

The subpackage implements the paper's primary contribution: equality atoms and
atom universes, join queries, equality types, example sets, the consistent
query space, informativeness classification, label propagation, the
interactive inference engine (Figure 2 of the paper), oracles standing in for
the user, and the strategy families (random / local / lookahead / optimal).

The hot path is *incremental*: a label is applied as a delta to the
consistent space (:mod:`.space`) and to the per-type status cache
(:class:`.informativeness.TypeStatusCache`), propagation results are derived
from the types the delta flipped (:mod:`.propagation`), and lookahead scores
are computed against one shared informative-type snapshot per step
(:meth:`.state.InferenceState.prune_counts_all`).  See the individual module
docstrings for the delta-update and cache-invalidation rules;
``benchmarks/bench_incremental_engine.py`` checks the machinery against a
from-scratch rebuild for observational equivalence and speed.
"""

from .atoms import AtomScope, AtomUniverse, EqualityAtom, is_subset, popcount
from .engine import (
    InferenceResult,
    InferenceTrace,
    Interaction,
    JoinInferenceEngine,
    infer_join,
)
from .equality_types import EqualityTypeIndex
from .examples import Example, ExampleSet, Label
from .informativeness import (
    TupleStatus,
    TypeStatusCache,
    classify_all,
    classify_tuple,
    has_informative_tuple,
    informative_ids,
    uninformative_ids,
)
from .oracle import (
    CallbackOracle,
    ConsoleOracle,
    FixedLabelsOracle,
    GoalQueryOracle,
    NoisyOracle,
    Oracle,
)
from .propagation import PropagationResult, delta_result, diff_statuses
from .queries import JoinQuery
from .space import ConsistentQuerySpace
from .state import InferenceState

__all__ = [
    "AtomScope",
    "AtomUniverse",
    "CallbackOracle",
    "ConsistentQuerySpace",
    "ConsoleOracle",
    "EqualityAtom",
    "EqualityTypeIndex",
    "Example",
    "ExampleSet",
    "FixedLabelsOracle",
    "GoalQueryOracle",
    "InferenceResult",
    "InferenceState",
    "InferenceTrace",
    "Interaction",
    "JoinInferenceEngine",
    "JoinQuery",
    "Label",
    "NoisyOracle",
    "Oracle",
    "PropagationResult",
    "TupleStatus",
    "TypeStatusCache",
    "classify_all",
    "classify_tuple",
    "delta_result",
    "diff_statuses",
    "has_informative_tuple",
    "infer_join",
    "informative_ids",
    "is_subset",
    "popcount",
    "uninformative_ids",
]
