"""Array-backed inference kernels: flat type state and batched hot-loop math.

The interactive hot loop — lookahead scoring, propagation, type-status
recheck — works *type-wise*: every quantity it needs is a function of the
distinct equality types (bitmasks), the per-type unlabeled counts, and the
consistent space ``(M, N)``.  This module keeps that state in flat parallel
arrays instead of per-type Python objects and exposes each hot-loop operation
as a kernel over those arrays:

* :class:`TypeTable` (via :func:`make_type_table`) — the aligned vectors
  ``masks`` / ``sizes`` / ``certain`` / ``unlabeled``, in the order the
  distinct types were interned by
  :class:`~repro.core.equality_types.EqualityTypeIndex` (itself derived from
  the interned code arrays of :mod:`repro.relational.columnar`).  The table
  is the storage layer of
  :class:`~repro.core.informativeness.TypeStatusCache`.
* :meth:`TypeTable.refresh_certain` — re-derive every (stale) certain label
  against ``(M, N)`` in one vectorized pass, reporting the informative→certain
  flips propagation needs.
* :func:`prune_counts_batch` — the lookahead kernel: score *all* candidate
  restricted types against one informative snapshot at once, sharing the
  resolved-if-positive / resolved-if-negative sub-computations across
  candidates.
* :func:`certain_codes` — batch classification of arbitrary mask lists (the
  loop-guard scan).
* :class:`ShardedTypeTable` — the same contract over K contiguous shards,
  fanning per-shard kernel calls across the worker pool of
  :mod:`repro.core.parallel` and merging exact partial sums, so one session
  can use every core without changing a single trace.

**Fast path and fallback.**  When numpy is importable and every mask/count
fits in a signed 64-bit lane, the kernels run as numpy array expressions
(bitmask subset tests are exact in int64 two's complement for masks below
bit 63); otherwise a pure-Python implementation over :mod:`array` vectors
with identical semantics is used.  The backend is chosen per table/call by
:func:`default_backend`, overridable with the ``REPRO_KERNEL_BACKEND``
environment variable or the :func:`use_backend` context manager (which is how
the benchmarks compare python-vs-numpy traces in one process).

**Copy-on-write.**  :meth:`TypeTable.copy` is O(1): the clone shares the
array segments with its parent and both sides mark themselves borrowed; the
first mutation on either side copies the (small, per-type) arrays.  This is
what makes :meth:`InferenceState.simulate_label
<repro.core.state.InferenceState.simulate_label>` cheap enough for deep
lookahead.
"""

from __future__ import annotations

import hashlib
import os
from array import array
from bisect import bisect_right
from collections.abc import Iterable, Iterator, Sequence

from . import parallel as _parallel

try:  # The numpy fast path is optional; the pure-Python kernels are exact.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

#: Whether the numpy fast path is importable at all.
HAVE_NUMPY = _np is not None

#: Codes of the ``certain`` vector (one byte per type).
UNKNOWN = 0  # consistent queries disagree -> the type is informative
CERTAIN_POSITIVE = 1
CERTAIN_NEGATIVE = 2

_CODE_OF = {None: UNKNOWN, True: CERTAIN_POSITIVE, False: CERTAIN_NEGATIVE}
_LABEL_OF = {UNKNOWN: None, CERTAIN_POSITIVE: True, CERTAIN_NEGATIVE: False}

#: The numpy kernels hold atom-set bitmasks and counts in int64 lanes, so
#: they only apply below bit 63 (subset tests stay exact in two's complement).
_INT64_LIMIT = 1 << 62

_ENV_VAR = "REPRO_KERNEL_BACKEND"
_forced_backend: str | None = None


def _validate(backend: str) -> str:
    if backend not in ("python", "numpy"):
        raise ValueError(f"unknown kernel backend {backend!r}; use 'python' or 'numpy'")
    return backend


def available_backends() -> tuple[str, ...]:
    """The kernel backends usable in this interpreter."""
    return ("python", "numpy") if HAVE_NUMPY else ("python",)


def default_backend() -> str:
    """The backend new tables and batch kernels use.

    Resolution order: :func:`use_backend` override, then the
    ``REPRO_KERNEL_BACKEND`` environment variable, then numpy when available.
    A request for numpy silently degrades to python when numpy is missing, so
    the same configuration runs everywhere.
    """
    forced = _forced_backend
    if forced is None:
        env = os.environ.get(_ENV_VAR, "").strip().lower()
        forced = _validate(env) if env else None
    if forced == "numpy" and not HAVE_NUMPY:
        return "python"
    return forced if forced is not None else ("numpy" if HAVE_NUMPY else "python")


class use_backend:
    """Force the kernel backend within a ``with`` block (tests, benchmarks)."""

    def __init__(self, backend: str) -> None:
        self.backend = _validate(backend)
        self._previous: str | None = None

    def __enter__(self) -> use_backend:
        global _forced_backend
        self._previous = _forced_backend
        _forced_backend = self.backend
        return self

    def __exit__(self, *_exc: object) -> None:
        global _forced_backend
        _forced_backend = self._previous


def numpy_enabled() -> bool:
    """Whether the resolved backend is the numpy fast path."""
    return default_backend() == "numpy"


# --------------------------------------------------------------------- #
# Scalar reference semantics (shared by the pure-Python kernels)
# --------------------------------------------------------------------- #
def _certain_code(mask: int, positive_mask: int, negative_masks: Sequence[int]) -> int:
    """The certain-label code of one type under ``(M, N)``.

    Mirrors :meth:`ConsistentQuerySpace.certain_label_for
    <repro.core.space.ConsistentQuerySpace.certain_label_for>`: certain
    positive iff ``M ⊆ E(t)`` (no rejecting query), else certain negative iff
    ``M ∩ E(t)`` is contained in some negative type (no selecting query).
    """
    if positive_mask & ~mask == 0:
        return CERTAIN_POSITIVE
    restricted = positive_mask & mask
    for neg in negative_masks:
        if restricted & ~neg == 0:
            return CERTAIN_NEGATIVE
    return UNKNOWN


def _fits_int64(values: Iterable[int]) -> bool:
    return all(-_INT64_LIMIT <= value < _INT64_LIMIT for value in values)


def certain_codes(
    masks: Sequence[int],
    positive_mask: int,
    negative_masks: Sequence[int],
    backend: str | None = None,
) -> Iterator[int]:
    """Certain-label codes for a batch of type masks, lazily.

    The python path yields one code at a time so early-exit consumers (the
    loop-guard scan) stop at the first informative type; the numpy path
    classifies the whole batch in one vector pass.
    """
    chosen = backend or default_backend()
    if (
        chosen == "numpy"
        and HAVE_NUMPY
        and _fits_int64(masks)
        and _fits_int64((positive_mask, *negative_masks))
    ):
        return iter(
            _np_certain_codes(
                _np.asarray(masks, dtype=_np.int64), positive_mask, negative_masks
            ).tolist()
        )
    return (_certain_code(mask, positive_mask, negative_masks) for mask in masks)


def _np_certain_codes(masks_arr, positive_mask: int, negative_masks: Sequence[int]):
    """Vectorized :func:`_certain_code` over an int64 mask vector."""
    m = _np.int64(positive_mask)
    positive = (m & ~masks_arr) == 0
    restricted = m & masks_arr
    negative = _np.zeros(len(masks_arr), dtype=bool)
    for neg in negative_masks:
        negative |= (restricted & ~_np.int64(neg)) == 0
    codes = _np.full(len(masks_arr), UNKNOWN, dtype=_np.int8)
    codes[negative] = CERTAIN_NEGATIVE
    codes[positive] = CERTAIN_POSITIVE  # positive takes precedence, as in the scalar path
    return codes


def prune_counts_batch(
    info_masks: Sequence[int],
    info_counts: Sequence[int],
    restricted_candidates: Sequence[int],
    positive_mask: int,
    negative_masks: Sequence[int],
    backend: str | None = None,
) -> list[tuple[int, int]]:
    """``(resolved_if_positive, resolved_if_negative)`` per candidate type.

    ``info_masks`` / ``info_counts`` are the informative snapshot (full type
    masks and their unlabeled counts); each candidate is given by its
    *restricted* type ``E(t) ∩ M``, which fully determines its counts.  One
    K×I kernel evaluation replaces K independent per-candidate sweeps, and the
    subset tests against the negative list are shared across candidates.
    """
    chosen = backend or default_backend()
    if (
        chosen == "numpy"
        and HAVE_NUMPY
        and info_masks
        and restricted_candidates
        and _fits_int64(info_masks)
        and _fits_int64(restricted_candidates)
        and _fits_int64((positive_mask, sum(info_counts), *negative_masks))
    ):
        return _np_prune_counts(
            info_masks, info_counts, restricted_candidates, positive_mask, negative_masks
        )
    results: list[tuple[int, int]] = []
    for restricted_candidate in restricted_candidates:
        resolved_if_positive = 0
        resolved_if_negative = 0
        for mask, count in zip(info_masks, info_counts, strict=True):
            # If labeled positive: M shrinks to M ∩ E(t).
            restricted = restricted_candidate & mask
            if restricted_candidate & ~mask == 0:
                resolved_if_positive += count
            else:
                for neg in negative_masks:
                    if restricted & ~neg == 0:
                        resolved_if_positive += count
                        break
            # If labeled negative: E(t) joins the negative types.
            if (positive_mask & mask) & ~restricted_candidate == 0:
                resolved_if_negative += count
        results.append((resolved_if_positive, resolved_if_negative))
    return results


def _np_prune_counts(
    info_masks: Sequence[int],
    info_counts: Sequence[int],
    restricted_candidates: Sequence[int],
    positive_mask: int,
    negative_masks: Sequence[int],
) -> list[tuple[int, int]]:
    masks = _np.asarray(info_masks, dtype=_np.int64)[None, :]
    counts = _np.asarray(info_counts, dtype=_np.int64)[None, :]
    cand = _np.asarray(restricted_candidates, dtype=_np.int64)[:, None]
    positive = (cand & ~masks) == 0
    restricted = cand & masks
    negative = _np.zeros(restricted.shape, dtype=bool)
    for neg in negative_masks:
        negative |= (restricted & ~_np.int64(neg)) == 0
    resolved_plus = ((positive | negative) * counts).sum(axis=1)
    under_m = _np.int64(positive_mask) & masks
    resolved_minus = (((under_m & ~cand) == 0) * counts).sum(axis=1)
    return list(zip(resolved_plus.tolist(), resolved_minus.tolist(), strict=True))


# --------------------------------------------------------------------- #
# The type table
# --------------------------------------------------------------------- #
class _BaseTypeTable:
    """Shared surface of the two :class:`TypeTable` implementations.

    Rows are the distinct equality types, in interning order; ``certain`` and
    ``unlabeled`` are the mutable columns.  Mutators go through :meth:`_own`
    so that :meth:`copy` can lend the arrays out instead of duplicating them.
    """

    __slots__ = ("_masks", "_index", "_owned")

    def __init__(self, masks: Sequence[int]) -> None:
        self._masks: tuple[int, ...] = tuple(masks)
        self._index: dict[int, int] = {mask: i for i, mask in enumerate(self._masks)}
        self._owned = True

    def __len__(self) -> int:
        return len(self._masks)

    @property
    def masks(self) -> tuple[int, ...]:
        """The distinct type masks, in table order."""
        return self._masks

    def certain_of(self, mask: int) -> bool | None:
        """The memoised certain label of one type (``None`` = informative)."""
        raise NotImplementedError

    def unlabeled_of(self, mask: int) -> int:
        """Number of unlabeled tuples of one type."""
        raise NotImplementedError

    def decrement_unlabeled(self, mask: int) -> None:
        """One tuple of the type was labeled."""
        raise NotImplementedError

    def refresh_certain(
        self,
        positive_mask: int,
        negative_masks: Sequence[int],
        only_unknown: bool = True,
    ) -> tuple[list[int], list[int]]:
        """Re-derive certain labels against ``(M, N)``; report new flips.

        With ``only_unknown`` (the consistent-mode invariant) only currently
        informative rows are re-evaluated; otherwise every row is.  Returns
        the masks that went informative→certain-positive and
        informative→certain-negative, in table order.
        """
        raise NotImplementedError

    def informative_items(self) -> list[tuple[int, int]]:
        """``(mask, unlabeled_count)`` of every informative type, table order."""
        raise NotImplementedError

    def informative_count(self) -> int:
        """Total unlabeled tuples across informative types."""
        raise NotImplementedError

    def has_informative(self) -> bool:
        """Whether any informative tuple remains."""
        raise NotImplementedError

    def copy(self) -> TypeTable:
        """An O(1) copy-on-write clone sharing the column arrays."""
        raise NotImplementedError

    def prune_counts_informative(
        self,
        restricted_candidates: Sequence[int],
        positive_mask: int,
        negative_masks: Sequence[int],
        backend: str | None = None,
    ) -> list[tuple[int, int]]:
        """Score candidates against this table's own informative snapshot.

        The table-level entry point of the lookahead kernel: the snapshot is
        taken and consumed in one place, which is what lets
        :class:`ShardedTypeTable` override it with a fanned per-shard
        evaluation while callers stay backend- and sharding-agnostic.
        """
        items = self.informative_items()
        return prune_counts_batch(
            [mask for mask, _ in items],
            [count for _, count in items],
            restricted_candidates,
            positive_mask,
            negative_masks,
            backend=backend,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"{type(self).__name__}(types={len(self._masks)}, "
            f"informative={len(self.informative_items())}, owned={self._owned})"
        )


class PyTypeTable(_BaseTypeTable):
    """Pure-Python fallback: :mod:`array` columns, scalar loops."""

    __slots__ = ("_certain", "_unlabeled")

    def __init__(self, masks: Sequence[int], sizes: Sequence[int]) -> None:
        super().__init__(masks)
        self._certain = array("b", bytes(len(self._masks)))
        self._unlabeled = list(sizes)

    def _own(self) -> None:
        if not self._owned:
            self._certain = array("b", self._certain)
            self._unlabeled = list(self._unlabeled)
            self._owned = True

    def certain_of(self, mask: int) -> bool | None:
        return _LABEL_OF[self._certain[self._index[mask]]]

    def unlabeled_of(self, mask: int) -> int:
        return self._unlabeled[self._index[mask]]

    def decrement_unlabeled(self, mask: int) -> None:
        self._own()
        self._unlabeled[self._index[mask]] -= 1

    def refresh_certain(
        self,
        positive_mask: int,
        negative_masks: Sequence[int],
        only_unknown: bool = True,
    ) -> tuple[list[int], list[int]]:
        self._own()
        certain = self._certain
        flipped_positive: list[int] = []
        flipped_negative: list[int] = []
        for i, mask in enumerate(self._masks):
            old = certain[i]
            if only_unknown and old != UNKNOWN:
                continue
            new = _certain_code(mask, positive_mask, negative_masks)
            if new != old:
                certain[i] = new
                if old == UNKNOWN:
                    if new == CERTAIN_POSITIVE:
                        flipped_positive.append(mask)
                    else:
                        flipped_negative.append(mask)
        return flipped_positive, flipped_negative

    def informative_items(self) -> list[tuple[int, int]]:
        certain = self._certain
        unlabeled = self._unlabeled
        return [
            (mask, unlabeled[i])
            for i, mask in enumerate(self._masks)
            if certain[i] == UNKNOWN and unlabeled[i]
        ]

    def informative_count(self) -> int:
        certain = self._certain
        return sum(
            count for i, count in enumerate(self._unlabeled) if certain[i] == UNKNOWN
        )

    def has_informative(self) -> bool:
        certain = self._certain
        unlabeled = self._unlabeled
        return any(
            certain[i] == UNKNOWN and unlabeled[i] for i in range(len(self._masks))
        )

    def copy(self) -> PyTypeTable:
        clone = PyTypeTable.__new__(PyTypeTable)
        clone._masks = self._masks
        clone._index = self._index
        clone._certain = self._certain
        clone._unlabeled = self._unlabeled
        clone._owned = False
        self._owned = False
        return clone


class NumpyTypeTable(_BaseTypeTable):
    """numpy fast path: int64 mask lane, vectorized refresh and reductions."""

    __slots__ = ("_masks_arr", "_certain", "_unlabeled")

    def __init__(self, masks: Sequence[int], sizes: Sequence[int]) -> None:
        super().__init__(masks)
        self._masks_arr = _np.asarray(self._masks, dtype=_np.int64)
        self._certain = _np.zeros(len(self._masks), dtype=_np.int8)
        self._unlabeled = _np.asarray(sizes, dtype=_np.int64)

    def _own(self) -> None:
        if not self._owned:
            self._certain = self._certain.copy()
            self._unlabeled = self._unlabeled.copy()
            self._owned = True

    def certain_of(self, mask: int) -> bool | None:
        return _LABEL_OF[int(self._certain[self._index[mask]])]

    def unlabeled_of(self, mask: int) -> int:
        return int(self._unlabeled[self._index[mask]])

    def decrement_unlabeled(self, mask: int) -> None:
        self._own()
        self._unlabeled[self._index[mask]] -= 1

    def refresh_certain(
        self,
        positive_mask: int,
        negative_masks: Sequence[int],
        only_unknown: bool = True,
    ) -> tuple[list[int], list[int]]:
        self._own()
        certain = self._certain
        new_codes = _np_certain_codes(self._masks_arr, positive_mask, negative_masks)
        if only_unknown:
            stale = certain == UNKNOWN
            flip_pos = stale & (new_codes == CERTAIN_POSITIVE)
            flip_neg = stale & (new_codes == CERTAIN_NEGATIVE)
            certain[stale] = new_codes[stale]
        else:
            was_unknown = certain == UNKNOWN
            flip_pos = was_unknown & (new_codes == CERTAIN_POSITIVE)
            flip_neg = was_unknown & (new_codes == CERTAIN_NEGATIVE)
            certain[:] = new_codes
        masks = self._masks
        flipped_positive = [masks[i] for i in _np.nonzero(flip_pos)[0].tolist()]
        flipped_negative = [masks[i] for i in _np.nonzero(flip_neg)[0].tolist()]
        return flipped_positive, flipped_negative

    def informative_items(self) -> list[tuple[int, int]]:
        selector = (self._certain == UNKNOWN) & (self._unlabeled > 0)
        masks = self._masks
        unlabeled = self._unlabeled
        return [
            (masks[i], int(unlabeled[i])) for i in _np.nonzero(selector)[0].tolist()
        ]

    def informative_count(self) -> int:
        return int(self._unlabeled[self._certain == UNKNOWN].sum())

    def has_informative(self) -> bool:
        return bool(((self._certain == UNKNOWN) & (self._unlabeled > 0)).any())

    def copy(self) -> NumpyTypeTable:
        clone = NumpyTypeTable.__new__(NumpyTypeTable)
        clone._masks = self._masks
        clone._index = self._index
        clone._masks_arr = self._masks_arr
        clone._certain = self._certain
        clone._unlabeled = self._unlabeled
        clone._owned = False
        self._owned = False
        return clone


class ShardedTypeTable:
    """K contiguous shards of one type table, fanned across the worker pool.

    The table's rows (distinct types, interning order) are partitioned into
    contiguous spans via :func:`repro.core.parallel.even_ranges`; each span
    is an ordinary flat :class:`TypeTable` on its own backend.  The full
    contract holds with trace-identical results:

    * per-row reads/writes route to the owning shard through the row index;
    * :meth:`refresh_certain` fans per shard and concatenates the flip lists
      in shard order, which *is* table order (shards are contiguous);
    * :meth:`informative_items` concatenates shard snapshots the same way,
      so downstream tie-breaks (smallest unlabeled id) see the exact
      sequence an unsharded table would produce;
    * :meth:`prune_counts_informative` evaluates per-shard partial sums —
      exact integer sums over a partition of the snapshot — and merges them
      elementwise, reproducing the unsharded kernel bit for bit;
    * :meth:`copy` clones each shard copy-on-write, so clones stay O(1) and
      mutations on either side never leak across.

    How the fan-out executes follows the *ambient* parallel mode at call
    time (serial loop, thread pool, or process pool with fingerprint-cached
    shard columns), mirroring how flat tables follow the ambient kernel
    backend.
    """

    __slots__ = ("_masks", "_index", "_shards", "_starts", "_fingerprint")

    def __init__(
        self,
        masks: Sequence[int],
        sizes: Sequence[int],
        shards: int | None = None,
        backend: str | None = None,
    ) -> None:
        self._masks: tuple[int, ...] = tuple(masks)
        self._index: dict[int, int] = {mask: i for i, mask in enumerate(self._masks)}
        sizes = list(sizes)
        requested = shards if shards is not None else _parallel.shard_count()
        bounds = _parallel.even_ranges(len(self._masks), max(1, requested))
        self._starts: tuple[int, ...] = tuple(start for start, _ in bounds)
        self._shards: tuple[PyTypeTable | NumpyTypeTable, ...] = tuple(
            _make_flat_type_table(self._masks[start:stop], sizes[start:stop], backend)
            for start, stop in bounds
        )
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._masks)

    @property
    def masks(self) -> tuple[int, ...]:
        """The distinct type masks, in table order."""
        return self._masks

    @property
    def shards(self) -> tuple[PyTypeTable | NumpyTypeTable, ...]:
        """The per-shard flat tables, in table order (introspection/tests)."""
        return self._shards

    @property
    def fingerprint(self) -> str:
        """Content digest of the mask column (the worker-side cache key).

        Computed lazily, once; clones share their parent's value because
        they share the mask column itself.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            for mask in self._masks:
                digest.update(str(mask).encode())
                digest.update(b",")
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def _shard_of(self, mask: int) -> PyTypeTable | NumpyTypeTable:
        row = self._index[mask]
        return self._shards[bisect_right(self._starts, row) - 1]

    # ------------------------------------------------------------------ #
    # The TypeTable contract, fanned per shard
    # ------------------------------------------------------------------ #
    def certain_of(self, mask: int) -> bool | None:
        """The memoised certain label of one type (``None`` = informative)."""
        return self._shard_of(mask).certain_of(mask)

    def unlabeled_of(self, mask: int) -> int:
        """Number of unlabeled tuples of one type."""
        return self._shard_of(mask).unlabeled_of(mask)

    def decrement_unlabeled(self, mask: int) -> None:
        """One tuple of the type was labeled."""
        self._shard_of(mask).decrement_unlabeled(mask)

    def refresh_certain(
        self,
        positive_mask: int,
        negative_masks: Sequence[int],
        only_unknown: bool = True,
    ) -> tuple[list[int], list[int]]:
        """Per-shard refresh; flip lists concatenated in shard = table order.

        Thread mode fans the per-shard refreshes (the numpy refresh releases
        the GIL); serial and process modes loop parent-side — the shard
        columns are parent memory and a process pool cannot mutate them.
        """
        shards = self._shards
        if len(shards) > 1 and _parallel.parallel_mode() == "thread":
            executor = _parallel.get_executor("thread")
            results = executor.map(
                lambda shard: shard.refresh_certain(positive_mask, negative_masks, only_unknown),
                shards,
            )
        else:
            results = [
                shard.refresh_certain(positive_mask, negative_masks, only_unknown)
                for shard in shards
            ]
        flipped_positive: list[int] = []
        flipped_negative: list[int] = []
        for positive, negative in results:
            flipped_positive.extend(positive)
            flipped_negative.extend(negative)
        return flipped_positive, flipped_negative

    def informative_items(self) -> list[tuple[int, int]]:
        """``(mask, unlabeled_count)`` of every informative type, table order."""
        items: list[tuple[int, int]] = []
        for shard in self._shards:
            items.extend(shard.informative_items())
        return items

    def informative_count(self) -> int:
        """Total unlabeled tuples across informative types."""
        return sum(shard.informative_count() for shard in self._shards)

    def has_informative(self) -> bool:
        """Whether any informative tuple remains."""
        return any(shard.has_informative() for shard in self._shards)

    def copy(self) -> ShardedTypeTable:
        """An O(1) clone: per-shard copy-on-write, shared mask column."""
        clone = ShardedTypeTable.__new__(ShardedTypeTable)
        clone._masks = self._masks
        clone._index = self._index
        clone._starts = self._starts
        clone._shards = tuple(shard.copy() for shard in self._shards)
        clone._fingerprint = self._fingerprint
        return clone

    def prune_counts_informative(
        self,
        restricted_candidates: Sequence[int],
        positive_mask: int,
        negative_masks: Sequence[int],
        backend: str | None = None,
    ) -> list[tuple[int, int]]:
        """The lookahead kernel as a sum of per-shard partial evaluations."""
        candidates = list(restricted_candidates)
        if not candidates:
            return []
        shards = self._shards
        mode = _parallel.parallel_mode() if len(shards) > 1 else "serial"
        if mode == "process":
            partials = self._prune_counts_process(
                candidates, positive_mask, negative_masks, backend
            )
        elif mode == "thread":
            executor = _parallel.get_executor("thread")
            partials = executor.map(
                lambda shard: shard.prune_counts_informative(
                    candidates, positive_mask, negative_masks, backend=backend
                ),
                shards,
            )
        else:
            partials = [
                shard.prune_counts_informative(
                    candidates, positive_mask, negative_masks, backend=backend
                )
                for shard in shards
            ]
        return _parallel.merge_partial_counts(partials)

    def _prune_counts_process(
        self,
        candidates: list[int],
        positive_mask: int,
        negative_masks: Sequence[int],
        backend: str | None,
    ) -> list[list[tuple[int, int]]]:
        """Fan the per-shard partials over the process pool.

        Payloads reference the shard mask columns by fingerprint; a worker
        that has not seen a shard yet answers ``miss`` and gets exactly one
        resend with the column included (see
        :func:`repro.core.parallel.prune_shard_task`).
        """
        executor = _parallel.get_executor("process")
        chosen = backend or default_backend()
        negatives = tuple(negative_masks)
        payloads = []
        starts = self._starts
        for shard_id, shard in enumerate(self._shards):
            items = shard.informative_items()
            local_index = shard._index
            stop = starts[shard_id + 1] if shard_id + 1 < len(starts) else len(self._masks)
            payloads.append(
                {
                    "fingerprint": self.fingerprint,
                    "shard": shard_id,
                    "span": (starts[shard_id], stop),
                    "info_local": [local_index[mask] for mask, _ in items],
                    "info_counts": [count for _, count in items],
                    "candidates": candidates,
                    "positive_mask": positive_mask,
                    "negative_masks": negatives,
                    "backend": chosen,
                }
            )
        results = executor.map(_parallel.prune_shard_task, payloads)
        partials: list[list[tuple[int, int]] | None] = [None] * len(payloads)
        retries = []
        for payload, (status, counts) in zip(payloads, results, strict=True):
            if status == "ok":
                partials[payload["shard"]] = [tuple(pair) for pair in counts]
            else:
                resend = dict(payload)
                resend["masks"] = self._shards[payload["shard"]].masks
                retries.append(resend)
        if retries:
            for payload, (status, counts) in zip(
                retries, executor.map(_parallel.prune_shard_task, retries), strict=True
            ):
                if status != "ok":  # pragma: no cover - the resend carries the masks
                    raise RuntimeError(f"shard {payload['shard']} missed its own mask column")
                partials[payload["shard"]] = [tuple(pair) for pair in counts]
        return [partial for partial in partials if partial is not None]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ShardedTypeTable(types={len(self._masks)}, shards={len(self._shards)}, "
            f"informative={len(self.informative_items())})"
        )


TypeTable = PyTypeTable | NumpyTypeTable | ShardedTypeTable


def _make_flat_type_table(
    masks: Sequence[int], sizes: Sequence[int], backend: str | None
) -> PyTypeTable | NumpyTypeTable:
    chosen = backend or default_backend()
    if (
        chosen == "numpy"
        and HAVE_NUMPY
        and _fits_int64(masks)
        and _fits_int64((sum(sizes),))
    ):
        return NumpyTypeTable(masks, sizes)
    return PyTypeTable(masks, sizes)


def make_type_table(
    masks: Sequence[int],
    sizes: Sequence[int],
    backend: str | None = None,
    shards: int | None = None,
) -> TypeTable:
    """A fresh type table on the resolved backend (all labels UNKNOWN).

    The numpy table requires every mask to fit the int64 lane and the total
    tuple count to stay summable in int64; tables that do not fit (universes
    past 62 atoms) silently use the pure-Python implementation instead.

    When a parallel mode is active (:func:`repro.core.parallel.parallel_mode`)
    — or ``shards`` is given explicitly — the result is a
    :class:`ShardedTypeTable` over flat per-shard tables; under the default
    serial mode the flat table is returned directly, so existing callers see
    exactly the pre-sharding types and costs.
    """
    if shards is not None:
        return ShardedTypeTable(masks, sizes, shards=shards, backend=backend)
    if _parallel.parallel_enabled():
        return ShardedTypeTable(masks, sizes, backend=backend)
    return _make_flat_type_table(masks, sizes, backend)
