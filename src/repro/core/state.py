"""The mutable state of one interactive inference run.

:class:`InferenceState` ties together the candidate table, the atom universe,
the per-tuple equality types, the examples given so far and the consistent
query space, and exposes the operations the interactive scenario of the paper
(Figure 2) is built from:

* ``add_label`` — answer one membership query and propagate it (gray out the
  tuples that became uninformative);
* ``informative_ids`` / ``status`` — which tuples are still worth asking about;
* ``is_converged`` / ``inferred_query`` — detect that a unique query (up to
  instance-equivalence) remains and return it;
* ``prune_counts`` / ``prune_counts_all`` / ``simulate_label`` — the "what
  would this label give us?" primitives on which the lookahead strategies are
  built.

**Incremental propagation.**  The state never rebuilds its machinery from the
full example set.  One label is applied as a *delta*:

1. the consistent space folds the new example's equality type into ``(M, N)``
   (:meth:`ConsistentQuerySpace._delta`, O(|N|));
2. the :class:`~repro.core.informativeness.TypeStatusCache` re-evaluates only
   the currently informative equality types (certain types can never revert
   while the examples stay consistent) and reports which types flipped;
3. the :class:`~repro.core.propagation.PropagationResult` is assembled from
   the flipped types alone — no before/after full-table classification.

``statuses()``, ``informative_ids()`` and ``has_informative_tuple()`` read the
cache instead of sweeping the table, ``prune_counts_all`` scores a whole
candidate set against one shared informative-type snapshot (deduplicated by
restricted equality type), and :meth:`copy` clones the cache and space in
O(#types) so lookahead simulation (``simulate_label``) is copy-on-write
instead of rebuild-from-scratch.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..exceptions import InconsistentLabelError
from ..relational.candidate import CandidateTable
from .atoms import AtomScope, AtomUniverse
from .equality_types import EqualityTypeIndex
from .examples import ExampleSet, Label
from .informativeness import TupleStatus, TypeStatusCache, unlabeled_ids_of_types
from .propagation import PropagationResult, delta_result
from .queries import JoinQuery
from .space import ConsistentQuerySpace


class InferenceState:
    """All the information JIM maintains during one inference session."""

    def __init__(
        self,
        table: CandidateTable,
        universe: AtomUniverse | None = None,
        scope: AtomScope = AtomScope.CROSS_RELATION,
        examples: ExampleSet | None = None,
        strict: bool = True,
    ) -> None:
        self.table = table
        self.universe = universe if universe is not None else AtomUniverse.from_table(table, scope=scope)
        self.type_index = EqualityTypeIndex(self.universe)
        self.examples = examples.copy() if examples is not None else ExampleSet()
        self.strict = strict
        self.space = ConsistentQuerySpace(self.type_index, self.examples)
        self._cache = TypeStatusCache(self.space, self.examples)

    # ------------------------------------------------------------------ #
    # Labeling
    # ------------------------------------------------------------------ #
    def add_label(self, tuple_id: int, label: Label | str | bool) -> PropagationResult:
        """Record a membership-query answer and propagate it incrementally.

        Returns a :class:`~repro.core.propagation.PropagationResult` listing
        the tuples grayed out by the new label.  In strict mode (the default)
        a label that contradicts the current examples — e.g. labeling a
        certain-positive tuple as negative — raises
        :class:`~repro.exceptions.InconsistentLabelError` and leaves the state
        unchanged.

        The label is applied as a delta to the space and the status cache (see
        the module docstring); the cost is O(#informative types × |N|)
        instead of a full rebuild plus two table sweeps.
        """
        parsed = Label.from_value(label)
        if tuple_id not in self.table.tuple_ids:
            raise InconsistentLabelError(f"unknown tuple id {tuple_id}")
        status_before = self.status(tuple_id)
        if self.strict and status_before.implied_label not in (None, parsed):
            raise InconsistentLabelError(
                f"tuple {tuple_id} is {status_before.value}; labeling it {parsed.value!r} "
                "would contradict the labels given so far"
            )
        informative_before = self._cache.informative_count()
        already_labeled = self.examples.label_of(tuple_id) is not None
        self.examples.add(tuple_id, parsed)
        self.space = self.space._delta(self.examples, tuple_id, parsed.is_positive, already_labeled)
        consistent = self.space.is_consistent()
        if self.strict and not consistent:  # pragma: no cover - defensive; the guard above prevents it
            raise InconsistentLabelError(
                f"labeling tuple {tuple_id} as {parsed.value!r} leaves no consistent join query"
            )
        flipped_positive, flipped_negative = self._cache.apply_label(
            self.space, tuple_id, newly_labeled=not already_labeled, consistent=consistent
        )
        return delta_result(
            self.type_index,
            self.examples.labeled_ids,
            tuple_id,
            parsed,
            flipped_positive,
            flipped_negative,
            informative_before=informative_before,
            informative_after=self._cache.informative_count(),
            consistent=consistent,
        )

    # ------------------------------------------------------------------ #
    # Classification
    # ------------------------------------------------------------------ #
    def status(self, tuple_id: int) -> TupleStatus:
        """The status of one tuple under the current examples (O(1), cached)."""
        label = self.examples.label_of(tuple_id)
        if label is Label.POSITIVE:
            return TupleStatus.LABELED_POSITIVE
        if label is Label.NEGATIVE:
            return TupleStatus.LABELED_NEGATIVE
        certain = self._cache.certain_label_for(self.type_index.mask(tuple_id))
        if certain is True:
            return TupleStatus.CERTAIN_POSITIVE
        if certain is False:
            return TupleStatus.CERTAIN_NEGATIVE
        return TupleStatus.INFORMATIVE

    def statuses(self) -> dict[int, TupleStatus]:
        """The status of every tuple under the current examples.

        Reads the per-type cache, so the cost is O(#tuples) with no subset
        checks.
        """
        return {tuple_id: self.status(tuple_id) for tuple_id in range(len(self.type_index))}

    def informative_ids(self) -> list[int]:
        """Ids of the tuples still worth asking about, in id order."""
        return unlabeled_ids_of_types(
            self.type_index,
            (mask for mask, _ in self._cache.informative_types()),
            self.examples.labeled_ids,
        )

    def certain_ids(self) -> list[int]:
        """Ids of unlabeled tuples whose label is implied (grayed out)."""
        return unlabeled_ids_of_types(
            self.type_index,
            (
                mask
                for mask in self.type_index.distinct_masks
                if self._cache.certain_label_for(mask) is not None
            ),
            self.examples.labeled_ids,
        )

    def labeled_ids(self) -> frozenset[int]:
        """Ids of explicitly labeled tuples."""
        return self.examples.labeled_ids

    def informative_count(self) -> int:
        """Number of informative tuples (one cache read, no table sweep)."""
        return self._cache.informative_count()

    def has_informative_tuple(self) -> bool:
        """Whether the interactive loop should keep asking questions.

        Delegates to the status cache — the same source of truth as
        :func:`repro.core.informativeness.has_informative_tuple`.
        """
        return self._cache.has_informative()

    def is_converged(self) -> bool:
        """Whether all consistent queries are instance-equivalent (inference done)."""
        return not self.has_informative_tuple()

    def is_consistent(self) -> bool:
        """Whether at least one join query is consistent with the examples."""
        return self.space.is_consistent()

    def inferred_query(self) -> JoinQuery:
        """The canonical inferred query (most specific consistent query ``M``).

        Meaningful once :meth:`is_converged` is true; before convergence it is
        simply the most specific query consistent with the labels so far.
        """
        return self.space.canonical_query()

    # ------------------------------------------------------------------ #
    # Lookahead primitives
    # ------------------------------------------------------------------ #
    def informative_type_snapshot(self) -> list[tuple[int, int]]:
        """``(type_mask, unlabeled_count)`` per informative type, this step.

        The snapshot every lookahead score is computed against; taking it is
        O(#informative types) thanks to the status cache.
        """
        return list(self._cache.informative_types())

    def informative_restricted_types(self) -> list[tuple[int, list[int], int]]:
        """Informative types grouped by restricted type ``E(t) ∩ M``.

        Returns ``(restricted_mask, full_type_masks, unlabeled_count)`` per
        distinct restricted type, in first-appearance order of the snapshot.
        Every lookahead/local quantity of a candidate tuple depends on its
        type only through the restriction under ``M``, so this grouping is
        the candidate set the type-level strategies score — typically orders
        of magnitude smaller than the informative tuple set.
        """
        positive_mask = self.space.positive_mask
        full_types: dict[int, list[int]] = {}
        totals: dict[int, int] = {}
        for mask, count in self.informative_type_snapshot():
            restricted = mask & positive_mask
            if restricted not in full_types:
                full_types[restricted] = []
                totals[restricted] = 0
            full_types[restricted].append(mask)
            totals[restricted] += count
        return [
            (restricted, masks, totals[restricted])
            for restricted, masks in full_types.items()
        ]

    def prune_counts_for_restricted(
        self, restricted_masks: list[int]
    ) -> list[tuple[int, int]]:
        """Prune counts per restricted candidate type, in one kernel call.

        The counts only depend on a candidate through ``E(t) ∩ M``: a
        positive label shrinks ``M`` to ``M ∩ E(t)``, a negative label adds
        ``E(t)`` to the negative types, and every subset test happens under
        ``M``.  All candidates are scored against one shared informative
        snapshot, held and (when the table is sharded) fanned by the status
        cache's type table — the strategies built on this method parallelize
        without any per-strategy changes.
        """
        return self._cache.prune_counts_for_restricted(
            restricted_masks, self.space.positive_mask, self.space.negative_masks
        )

    def first_informative_id(self, type_masks: Iterable[int]) -> int | None:
        """The smallest unlabeled tuple id across the given equality types.

        Uses the index's :meth:`~repro.core.equality_types.EqualityTypeIndex.min_tuple_id`
        fast path (no per-type id materialisation on factorized tables) and
        only falls back to scanning a type's id list when its minimum happens
        to be labeled.
        """
        labeled = self.examples.labeled_ids
        type_index = self.type_index
        best: int | None = None
        for mask in type_masks:
            tuple_id = type_index.min_tuple_id(mask)
            if tuple_id is not None and tuple_id in labeled:
                tuple_id = next(
                    (t for t in type_index.tuples_with_mask(mask) if t not in labeled),
                    None,
                )
            if tuple_id is not None and (best is None or tuple_id < best):
                best = tuple_id
        return best

    def first_informative_ids(self, type_masks: Iterable[int], limit: int) -> list[int]:
        """Up to ``limit`` smallest unlabeled ids across the given types."""
        labeled = self.examples.labeled_ids
        collected: list[int] = []
        for mask in type_masks:
            taken = 0
            for tuple_id in self.type_index.tuples_with_mask(mask):
                if tuple_id in labeled:
                    continue
                collected.append(tuple_id)
                taken += 1
                if taken >= limit:
                    break
        collected.sort()
        return collected[:limit]

    def prune_counts(self, tuple_id: int) -> tuple[int, int]:
        """How many informative tuples each label of ``tuple_id`` would resolve.

        Returns ``(resolved_if_positive, resolved_if_negative)`` where
        *resolved* counts informative tuples (including ``tuple_id`` itself)
        that would stop being informative.  This is the quantity the paper's
        question "labeling which tuple allows us to prune as many tuples as
        possible?" refers to, and the building block of lookahead strategies.

        Scoring many candidates?  Use :meth:`prune_counts_all`, which shares
        one informative-type snapshot across the whole candidate set.
        """
        restricted = self.type_index.mask(tuple_id) & self.space.positive_mask
        return self.prune_counts_for_restricted([restricted])[0]

    def prune_counts_all(
        self, tuple_ids: Iterable[int] | None = None
    ) -> dict[int, tuple[int, int]]:
        """:meth:`prune_counts` for every candidate, against one shared snapshot.

        Candidates sharing a restricted equality type ``E(t) ∩ M`` share one
        score and the distinct restricted types are scored in a single
        batched kernel call, so scoring a whole candidate set costs one
        O(#distinct candidate types × #informative types × |N|) kernel
        evaluation plus O(#candidates) bookkeeping.  ``tuple_ids`` defaults
        to the informative tuples.
        """
        candidates = list(tuple_ids) if tuple_ids is not None else self.informative_ids()
        positive_mask = self.space.positive_mask
        mask_of = self.type_index.mask
        restricted_of: dict[int, int] = {}
        distinct: list[int] = []
        seen: set[int] = set()
        for tuple_id in candidates:
            restricted = mask_of(tuple_id) & positive_mask
            restricted_of[tuple_id] = restricted
            if restricted not in seen:
                seen.add(restricted)
                distinct.append(restricted)
        by_restricted_type = dict(zip(distinct, self.prune_counts_for_restricted(distinct), strict=True))
        return {tuple_id: by_restricted_type[restricted_of[tuple_id]] for tuple_id in candidates}

    def simulate_label(self, tuple_id: int, label: Label | str | bool) -> InferenceState:
        """A copy of the state with one extra label (the current state is untouched).

        Copy-on-write: the clone shares the table/universe/type index and
        starts from copies of the example set, space masks and status cache,
        so the simulation costs one delta update — not a rebuild.
        """
        clone = self.copy()
        clone.add_label(tuple_id, label)
        return clone

    # ------------------------------------------------------------------ #
    # Bookkeeping
    # ------------------------------------------------------------------ #
    def copy(self) -> InferenceState:
        """An independent copy sharing the immutable table/universe/type index.

        The example set and space masks are copied in O(#labels + |N|) and
        the status cache copy-on-write in O(1) — no re-derivation from the
        example set.
        """
        clone = type(self).__new__(type(self))
        clone.table = self.table
        clone.universe = self.universe
        clone.type_index = self.type_index
        clone.examples = self.examples.copy()
        clone.strict = self.strict
        clone.space = self.space._clone_with_examples(clone.examples)
        clone._cache = self._cache.copy()
        return clone

    def statistics(self) -> dict[str, float]:
        """Progress statistics shown in the demo interface.

        Counts and relative percentages of explicitly labeled tuples, tuples
        deemed uninformative (grayed out), and tuples still informative.
        Computed type-level (labeled + informative from the cache, certain as
        the remainder) — no per-tuple sweep.
        """
        total_tuples = len(self.table)
        total = total_tuples or 1
        labeled = len(self.examples.labeled_ids)
        informative = self._cache.informative_count()
        certain = total_tuples - labeled - informative
        return {
            "total_tuples": total_tuples,
            "labeled": labeled,
            "labeled_pct": 100.0 * labeled / total,
            "uninformative": certain,
            "uninformative_pct": 100.0 * certain / total,
            "informative": informative,
            "informative_pct": 100.0 * informative / total,
            "atoms_in_universe": self.universe.size,
            "atoms_in_canonical_query": len(self.inferred_query()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"InferenceState(tuples={len(self.table)}, atoms={self.universe.size}, "
            f"labeled={len(self.examples)}, converged={self.is_converged()})"
        )
