"""The mutable state of one interactive inference run.

:class:`InferenceState` ties together the candidate table, the atom universe,
the per-tuple equality types, the examples given so far and the consistent
query space, and exposes the operations the interactive scenario of the paper
(Figure 2) is built from:

* ``add_label`` — answer one membership query and propagate it (gray out the
  tuples that became uninformative);
* ``informative_ids`` / ``status`` — which tuples are still worth asking about;
* ``is_converged`` / ``inferred_query`` — detect that a unique query (up to
  instance-equivalence) remains and return it;
* ``prune_counts`` / ``simulate_label`` — the "what would this label give us?"
  primitives on which the lookahead strategies are built.
"""

from __future__ import annotations

from typing import Optional, Union

from ..exceptions import InconsistentLabelError
from ..relational.candidate import CandidateTable
from .atoms import AtomScope, AtomUniverse, is_subset
from .equality_types import EqualityTypeIndex
from .examples import ExampleSet, Label
from .informativeness import TupleStatus, classify_all, classify_tuple
from .propagation import PropagationResult, diff_statuses
from .queries import JoinQuery
from .space import ConsistentQuerySpace


class InferenceState:
    """All the information JIM maintains during one inference session."""

    def __init__(
        self,
        table: CandidateTable,
        universe: Optional[AtomUniverse] = None,
        scope: AtomScope = AtomScope.CROSS_RELATION,
        examples: Optional[ExampleSet] = None,
        strict: bool = True,
    ) -> None:
        self.table = table
        self.universe = universe if universe is not None else AtomUniverse.from_table(table, scope=scope)
        self.type_index = EqualityTypeIndex(self.universe)
        self.examples = examples.copy() if examples is not None else ExampleSet()
        self.strict = strict
        self.space = ConsistentQuerySpace(self.type_index, self.examples)

    # ------------------------------------------------------------------ #
    # Labeling
    # ------------------------------------------------------------------ #
    def add_label(self, tuple_id: int, label: Union[Label, str, bool]) -> PropagationResult:
        """Record a membership-query answer and propagate it.

        Returns a :class:`~repro.core.propagation.PropagationResult` listing
        the tuples grayed out by the new label.  In strict mode (the default)
        a label that contradicts the current examples — e.g. labeling a
        certain-positive tuple as negative — raises
        :class:`~repro.exceptions.InconsistentLabelError` and leaves the state
        unchanged.
        """
        parsed = Label.from_value(label)
        if tuple_id not in self.table.tuple_ids:
            raise InconsistentLabelError(f"unknown tuple id {tuple_id}")
        before = self.statuses()
        status_before = before[tuple_id]
        if self.strict and status_before.implied_label not in (None, parsed):
            raise InconsistentLabelError(
                f"tuple {tuple_id} is {status_before.value}; labeling it {parsed.value!r} "
                "would contradict the labels given so far"
            )
        self.examples.add(tuple_id, parsed)
        self.space = ConsistentQuerySpace(self.type_index, self.examples)
        consistent = self.space.is_consistent()
        if self.strict and not consistent:  # pragma: no cover - defensive; the guard above prevents it
            raise InconsistentLabelError(
                f"labeling tuple {tuple_id} as {parsed.value!r} leaves no consistent join query"
            )
        after = self.statuses()
        return diff_statuses(before, after, tuple_id, parsed, consistent=consistent)

    # ------------------------------------------------------------------ #
    # Classification
    # ------------------------------------------------------------------ #
    def status(self, tuple_id: int) -> TupleStatus:
        """The status of one tuple under the current examples."""
        return classify_tuple(self.space, self.examples, tuple_id)

    def statuses(self) -> dict[int, TupleStatus]:
        """The status of every tuple under the current examples."""
        return classify_all(self.space, self.examples)

    def informative_ids(self) -> list[int]:
        """Ids of the tuples still worth asking about, in id order."""
        return [
            tuple_id
            for tuple_id, status in self.statuses().items()
            if status is TupleStatus.INFORMATIVE
        ]

    def certain_ids(self) -> list[int]:
        """Ids of unlabeled tuples whose label is implied (grayed out)."""
        return [tuple_id for tuple_id, status in self.statuses().items() if status.is_certain]

    def labeled_ids(self) -> frozenset[int]:
        """Ids of explicitly labeled tuples."""
        return self.examples.labeled_ids

    def has_informative_tuple(self) -> bool:
        """Whether the interactive loop should keep asking questions."""
        labeled = self.examples.labeled_ids
        for mask in self.type_index.distinct_masks:
            if self.space.certain_label_for(mask) is not None:
                continue
            if any(tid not in labeled for tid in self.type_index.tuples_with_mask(mask)):
                return True
        return False

    def is_converged(self) -> bool:
        """Whether all consistent queries are instance-equivalent (inference done)."""
        return not self.has_informative_tuple()

    def is_consistent(self) -> bool:
        """Whether at least one join query is consistent with the examples."""
        return self.space.is_consistent()

    def inferred_query(self) -> JoinQuery:
        """The canonical inferred query (most specific consistent query ``M``).

        Meaningful once :meth:`is_converged` is true; before convergence it is
        simply the most specific query consistent with the labels so far.
        """
        return self.space.canonical_query()

    # ------------------------------------------------------------------ #
    # Lookahead primitives
    # ------------------------------------------------------------------ #
    def prune_counts(self, tuple_id: int) -> tuple[int, int]:
        """How many informative tuples each label of ``tuple_id`` would resolve.

        Returns ``(resolved_if_positive, resolved_if_negative)`` where
        *resolved* counts informative tuples (including ``tuple_id`` itself)
        that would stop being informative.  This is the quantity the paper's
        question "labeling which tuple allows us to prune as many tuples as
        possible?" refers to, and the building block of lookahead strategies.
        """
        positive_mask = self.space.positive_mask
        negative_masks = self.space.negative_masks
        candidate_type = self.type_index.mask(tuple_id)
        labeled = self.examples.labeled_ids

        informative_types: list[tuple[int, int]] = []
        for mask in self.type_index.distinct_masks:
            if self.space.certain_label_for(mask) is not None:
                continue
            count = sum(1 for tid in self.type_index.tuples_with_mask(mask) if tid not in labeled)
            if count:
                informative_types.append((mask, count))

        new_positive_mask = positive_mask & candidate_type
        resolved_if_positive = 0
        resolved_if_negative = 0
        for mask, count in informative_types:
            # If labeled positive: M shrinks to M ∩ E(t).
            restricted = new_positive_mask & mask
            certain_positive = is_subset(new_positive_mask, mask)
            certain_negative = any(is_subset(restricted, neg) for neg in negative_masks)
            if certain_positive or certain_negative:
                resolved_if_positive += count
            # If labeled negative: E(t) joins the negative types.
            if is_subset(positive_mask & mask, candidate_type):
                resolved_if_negative += count
        return resolved_if_positive, resolved_if_negative

    def simulate_label(self, tuple_id: int, label: Union[Label, str, bool]) -> "InferenceState":
        """A copy of the state with one extra label (the current state is untouched)."""
        clone = self.copy()
        clone.add_label(tuple_id, label)
        return clone

    # ------------------------------------------------------------------ #
    # Bookkeeping
    # ------------------------------------------------------------------ #
    def copy(self) -> "InferenceState":
        """An independent copy sharing the immutable table/universe/type index."""
        clone = InferenceState.__new__(InferenceState)
        clone.table = self.table
        clone.universe = self.universe
        clone.type_index = self.type_index
        clone.examples = self.examples.copy()
        clone.strict = self.strict
        clone.space = ConsistentQuerySpace(self.type_index, clone.examples)
        return clone

    def statistics(self) -> dict[str, float]:
        """Progress statistics shown in the demo interface.

        Counts and relative percentages of explicitly labeled tuples, tuples
        deemed uninformative (grayed out), and tuples still informative.
        """
        statuses = self.statuses()
        total = len(statuses) or 1
        labeled = sum(1 for status in statuses.values() if status.is_labeled)
        certain = sum(1 for status in statuses.values() if status.is_certain)
        informative = sum(1 for status in statuses.values() if status is TupleStatus.INFORMATIVE)
        return {
            "total_tuples": len(statuses),
            "labeled": labeled,
            "labeled_pct": 100.0 * labeled / total,
            "uninformative": certain,
            "uninformative_pct": 100.0 * certain / total,
            "informative": informative,
            "informative_pct": 100.0 * informative / total,
            "atoms_in_universe": self.universe.size,
            "atoms_in_canonical_query": len(self.inferred_query()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"InferenceState(tuples={len(self.table)}, atoms={self.universe.size}, "
            f"labeled={len(self.examples)}, converged={self.is_converged()})"
        )
