"""Equality types of candidate tuples.

The *equality type* ``E(t)`` of a tuple is the set of atoms of the universe
that hold on it; a join query θ selects ``t`` exactly when ``θ ⊆ E(t)``.  The
:class:`EqualityTypeIndex` precomputes ``E(t)`` for every tuple of a candidate
table (as bitmasks) and groups tuples by their type — two tuples with the same
type are indistinguishable to every join query, which both the pruning logic
and the lookahead strategies exploit.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from .atoms import AtomUniverse, popcount


class EqualityTypeIndex:
    """Per-tuple equality types (bitmasks) for one candidate table + universe."""

    def __init__(self, universe: AtomUniverse) -> None:
        self.universe = universe
        self.table = universe.table
        self._masks: tuple[int, ...] = tuple(
            universe.equality_mask(row) for row in self.table.rows
        )
        grouped: dict[int, list[int]] = {}
        for tuple_id, mask in enumerate(self._masks):
            grouped.setdefault(mask, []).append(tuple_id)
        self._by_mask: dict[int, tuple[int, ...]] = {
            mask: tuple(ids) for mask, ids in grouped.items()
        }

    # ------------------------------------------------------------------ #
    # Per-tuple access
    # ------------------------------------------------------------------ #
    def mask(self, tuple_id: int) -> int:
        """The equality type E(t) of a tuple, as a bitmask."""
        return self._masks[tuple_id]

    @property
    def masks(self) -> tuple[int, ...]:
        """E(t) for every tuple, indexed by tuple id."""
        return self._masks

    def atom_count(self, tuple_id: int) -> int:
        """Number of atoms that hold on the tuple."""
        return popcount(self._masks[tuple_id])

    # ------------------------------------------------------------------ #
    # Type-level access
    # ------------------------------------------------------------------ #
    @property
    def distinct_masks(self) -> tuple[int, ...]:
        """The distinct equality types occurring in the table."""
        return tuple(self._by_mask)

    def tuples_with_mask(self, mask: int) -> tuple[int, ...]:
        """Tuple ids whose equality type is exactly ``mask``."""
        return self._by_mask.get(mask, ())

    def type_sizes(self) -> Mapping[int, int]:
        """How many tuples share each distinct equality type."""
        return {mask: len(ids) for mask, ids in self._by_mask.items()}

    def selected_by(self, query_mask: int) -> frozenset[int]:
        """Tuple ids selected by the query encoded by ``query_mask``.

        A query selects a tuple iff its atom set is a subset of the tuple's
        equality type.
        """
        selected: list[int] = []
        for mask, ids in self._by_mask.items():
            if query_mask & ~mask == 0:
                selected.extend(ids)
        return frozenset(selected)

    def count_selected_by(self, query_mask: int) -> int:
        """Number of tuples selected by the query encoded by ``query_mask``."""
        return sum(
            len(ids) for mask, ids in self._by_mask.items() if query_mask & ~mask == 0
        )

    def __len__(self) -> int:
        return len(self._masks)

    def __iter__(self) -> Iterator[int]:
        return iter(self._masks)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"EqualityTypeIndex(tuples={len(self._masks)}, "
            f"distinct_types={len(self._by_mask)}, atoms={self.universe.size})"
        )
