"""Equality types of candidate tuples.

The *equality type* ``E(t)`` of a tuple is the set of atoms of the universe
that hold on it; a join query θ selects ``t`` exactly when ``θ ⊆ E(t)``.  The
:class:`EqualityTypeIndex` derives ``E(t)`` for every tuple of a candidate
table (as bitmasks) and groups tuples by their type — two tuples with the
same type are indistinguishable to every join query, which both the pruning
logic and the lookahead strategies exploit.

**Columnar / factorized construction.**  The index is no longer built by
evaluating every atom on every row:

* Flat tables (given rows, or sampled cross products) intern each referenced
  column into an integer code array once and compute each atom with one
  tight column-pair loop (:func:`~repro.relational.columnar.columnar_equality_masks`).
* Unsampled cross products are never enumerated at all.  Each base relation
  is grouped by the code vector of the columns any atom touches
  (:func:`~repro.relational.columnar.group_product`), and the distinct-type
  histogram is built *factorized*: one equality evaluation per combination
  of groups, weighted by the product of the group cardinalities — O(Σ|Rᵢ| +
  #combinations × #atoms) instead of O(Π|Rᵢ| × #atoms).  Per-tuple masks and
  per-type tuple-id lists are derived lazily, on demand, from the grouping.

The type-level API (:attr:`distinct_masks`, :meth:`type_sizes`,
:meth:`tuples_with_mask`, :meth:`count_selected_by`) is therefore the cheap
surface; downstream code should prefer it over sweeping per-tuple masks.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Mapping
from types import MappingProxyType

try:  # Optional: ids_of_mask merges per-combination id vectors with numpy.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

from ..relational.columnar import (
    ComboGrid,
    FactorGrouping,
    UnencodableValue,
    build_combo_histogram,
    columnar_equality_masks,
    combo_equalities,
)
from .atoms import AtomUniverse, popcount
from .kernels import numpy_enabled as _numpy_ids_on


class _FactorizedTypes:
    """The lazy per-tuple machinery of a factorized equality-type index.

    ``combo_masks`` maps a group combination to its equality mask — either a
    plain dict (serial construction) or a
    :class:`~repro.relational.columnar.ComboGrid` (parallel construction);
    both are indexed by combo tuple and enumerate ``(combo, mask)`` in the
    same product order.  The per-mask combination lists are built lazily on
    first id lookup when the constructor did not provide them — one pass over
    the grid, paid only by sessions that materialise per-type tuple ids.
    """

    __slots__ = ("grouping", "combo_masks", "_combos_by_mask")

    def __init__(
        self,
        grouping: FactorGrouping,
        combo_masks: dict[tuple[int, ...], int] | ComboGrid,
        combos_by_mask: dict[int, list[tuple[int, ...]]] | None = None,
    ) -> None:
        self.grouping = grouping
        self.combo_masks = combo_masks
        self._combos_by_mask = combos_by_mask

    def _by_mask(self) -> dict[int, list[tuple[int, ...]]]:
        if self._combos_by_mask is None:
            table: dict[int, list[tuple[int, ...]]] = {}
            for combo, mask in self.combo_masks.items():
                table.setdefault(mask, []).append(combo)
            self._combos_by_mask = table
        return self._combos_by_mask

    def mask_of(self, tuple_id: int) -> int:
        """E(t) of one tuple: locate its group combination, look the mask up."""
        return self.combo_masks[self.grouping.combo_of(tuple_id)]

    def iter_all_masks(self) -> Iterator[int]:
        """E(t) for every tuple, in ``tuple_id`` order, streamed."""
        combo_masks = self.combo_masks
        for combo in itertools.product(*self.grouping.row_gids):
            yield combo_masks[combo]

    def all_masks(self) -> tuple[int, ...]:
        """E(t) for every tuple, in ``tuple_id`` order (full materialisation)."""
        return tuple(self.iter_all_masks())

    #: Above this many combinations per type, per-combination numpy dispatch
    #: costs more than the ids it produces (large grids put most types on
    #: ~one candidate per combination); the bulk mixed-radix loop — which
    #: also fans across the pool in process mode — wins on both backends.
    _MANY_COMBOS = 4096

    def ids_of_mask(self, mask: int) -> tuple[int, ...]:
        """All tuple ids of one equality type, ascending."""
        combos = self._by_mask().get(mask, ())
        if not combos:
            return ()
        grouping = self.grouping
        if (
            len(combos) <= self._MANY_COMBOS
            and _numpy_ids_on()
            and grouping.factorization.num_rows < (1 << 62)
        ):
            arrays = [grouping.combo_id_array(combo) for combo in combos]
            if len(arrays) == 1:
                merged = arrays[0]  # each combination's ids are already ascending
            else:
                merged = _np.sort(_np.concatenate(arrays))
            return tuple(merged.tolist())
        return tuple(grouping.ids_of_combos(combos))

    def min_id_of_mask(self, mask: int) -> int | None:
        """The smallest tuple id of one equality type, without materialising.

        Each combination's smallest id uses the first (smallest) member of
        every factor group; the type's minimum is the smallest across its
        combinations — O(#combinations × #factors) instead of O(type size).
        """
        combos = self._by_mask().get(mask)
        if not combos:
            return None
        return self.grouping.min_id_of_combos(combos)


class EqualityTypeIndex:
    """Per-tuple equality types (bitmasks) for one candidate table + universe."""

    def __init__(self, universe: AtomUniverse) -> None:
        self.universe = universe
        self.table = universe.table
        pairs = universe.attribute_positions
        self._masks: tuple[int, ...] | None = None
        self._ids_by_mask: dict[int, tuple[int, ...]] = {}
        self._factorized: _FactorizedTypes | None = None
        factorization = self.table.factorization()
        try:
            if factorization is not None:
                self._build_factorized(factorization, pairs)
            else:
                self._build_columnar(pairs)
        except UnencodableValue:
            # Unhashable cells cannot be interned; fall back to evaluating
            # every atom on every (possibly reconstructed) row.
            self._build_rowwise()
        self._distinct: tuple[int, ...] = tuple(self._type_sizes)
        self._sizes_view: Mapping[int, int] = MappingProxyType(self._type_sizes)

    # ------------------------------------------------------------------ #
    # Construction paths
    # ------------------------------------------------------------------ #
    def _build_factorized(self, factorization, pairs) -> None:
        """Factorized histogram: one evaluation per group combination.

        When a parallel mode is active and the combination grid is large,
        the evaluation fans across the worker pool
        (:func:`~repro.relational.columnar.build_combo_histogram`) with the
        distinct-type order — and everything derived from it — byte-identical
        to this serial loop.
        """
        used_columns = sorted({position for pair in pairs for position in pair})
        grouping = self.table.factor_grouping(used_columns)
        fanned = build_combo_histogram(grouping, pairs)
        if fanned is not None:
            grid, sizes = fanned
            self._factorized = _FactorizedTypes(grouping, grid)
            self._type_sizes = sizes
            return
        combo_masks: dict[tuple[int, ...], int] = {}
        combos_by_mask: dict[int, list[tuple[int, ...]]] = {}
        sizes = {}
        for combo, mask, count in combo_equalities(grouping, pairs):
            combo_masks[combo] = mask
            sizes[mask] = sizes.get(mask, 0) + count
            combos_by_mask.setdefault(mask, []).append(combo)
        self._factorized = _FactorizedTypes(grouping, combo_masks, combos_by_mask)
        self._type_sizes = sizes

    def _build_columnar(self, pairs) -> None:
        """Flat tables: per-atom tight loops over interned code arrays."""
        used_columns = sorted({position for pair in pairs for position in pair})
        codes = dict(zip(used_columns, self.table.equality_codes(used_columns), strict=True))
        self._finish_flat(columnar_equality_masks(codes, len(self.table), pairs))

    def _build_rowwise(self) -> None:
        """Last-resort seed behaviour: one ``equality_mask`` call per row."""
        universe = self.universe
        self._finish_flat([universe.equality_mask(row) for row in self.table])

    def _finish_flat(self, masks: list[int]) -> None:
        self._masks = tuple(masks)
        grouped: dict[int, list[int]] = {}
        for tuple_id, mask in enumerate(masks):
            grouped.setdefault(mask, []).append(tuple_id)
        self._ids_by_mask = {mask: tuple(ids) for mask, ids in grouped.items()}
        self._type_sizes = {mask: len(ids) for mask, ids in self._ids_by_mask.items()}

    # ------------------------------------------------------------------ #
    # Per-tuple access
    # ------------------------------------------------------------------ #
    def mask(self, tuple_id: int) -> int:
        """The equality type E(t) of a tuple, as a bitmask."""
        if self._masks is not None:
            return self._masks[tuple_id]
        if not 0 <= tuple_id < len(self.table):
            raise IndexError(f"tuple id {tuple_id} out of range")
        assert self._factorized is not None
        return self._factorized.mask_of(tuple_id)

    @property
    def masks(self) -> tuple[int, ...]:
        """E(t) for every tuple, indexed by tuple id (materialised lazily).

        This caches an O(#tuples) tuple on the index for the rest of its
        lifetime; full sweeps that only need the masks once should prefer
        :meth:`iter_masks`.
        """
        if self._masks is None:
            assert self._factorized is not None
            self._masks = self._factorized.all_masks()
        return self._masks

    def iter_masks(self) -> Iterator[int]:
        """E(t) for every tuple in ``tuple_id`` order, streamed.

        Unlike :attr:`masks` this never materialises (nor caches) the full
        per-tuple tuple on a factorized index.
        """
        if self._masks is not None:
            return iter(self._masks)
        assert self._factorized is not None
        return self._factorized.iter_all_masks()

    def atom_count(self, tuple_id: int) -> int:
        """Number of atoms that hold on the tuple."""
        return popcount(self.mask(tuple_id))

    # ------------------------------------------------------------------ #
    # Type-level access
    # ------------------------------------------------------------------ #
    @property
    def distinct_masks(self) -> tuple[int, ...]:
        """The distinct equality types occurring in the table (cached)."""
        return self._distinct

    def tuples_with_mask(self, mask: int) -> tuple[int, ...]:
        """Tuple ids whose equality type is exactly ``mask`` (ascending)."""
        ids = self._ids_by_mask.get(mask)
        if ids is None:
            if self._factorized is None:
                return ()
            ids = self._factorized.ids_of_mask(mask)
            self._ids_by_mask[mask] = ids
        return ids

    def min_tuple_id(self, mask: int) -> int | None:
        """The smallest tuple id of one equality type, or ``None``.

        On factorized tables this avoids materialising (and caching) the
        type's full id list — the strategies' representative-picking helper
        only needs the minimum.
        """
        ids = self._ids_by_mask.get(mask)
        if ids is not None:
            return ids[0] if ids else None
        if self._factorized is None:
            return None
        return self._factorized.min_id_of_mask(mask)

    def type_sizes(self) -> Mapping[int, int]:
        """How many tuples share each distinct equality type (cached view)."""
        return self._sizes_view

    def selected_by(self, query_mask: int) -> frozenset[int]:
        """Tuple ids selected by the query encoded by ``query_mask``.

        A query selects a tuple iff its atom set is a subset of the tuple's
        equality type.
        """
        selected: list[int] = []
        for mask in self._distinct:
            if query_mask & ~mask == 0:
                selected.extend(self.tuples_with_mask(mask))
        return frozenset(selected)

    def count_selected_by(self, query_mask: int) -> int:
        """Number of tuples selected by ``query_mask`` (type-level, no ids)."""
        return sum(
            count for mask, count in self._type_sizes.items() if query_mask & ~mask == 0
        )

    def __len__(self) -> int:
        return len(self.table)

    def __iter__(self) -> Iterator[int]:
        return self.iter_masks()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"EqualityTypeIndex(tuples={len(self.table)}, "
            f"distinct_types={len(self._type_sizes)}, atoms={self.universe.size})"
        )
