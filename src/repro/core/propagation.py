"""Label propagation: what a new label makes uninformative.

The demo's central interaction is that *after each given label JIM
interactively grays out the tuples that become uninformative*.  The
:class:`PropagationResult` describes exactly that effect for one label: which
previously informative tuples became certain-positive or certain-negative,
and how many informative tuples remain.  It is what the sessions layer shows
to the user and what lookahead strategies simulate to score candidate tuples.

Two builders produce the result: :func:`diff_statuses` compares two full
before/after classifications (the from-scratch reference, kept for external
callers and tests), while :func:`delta_result` assembles the same result
directly from the equality types the :class:`~repro.core.informativeness.TypeStatusCache`
reports as flipped by the label — O(#flipped tuples) instead of two full
table sweeps, which is what the incremental engine uses.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from .equality_types import EqualityTypeIndex
from .examples import Label
from .informativeness import TupleStatus, unlabeled_ids_of_types


@dataclass(frozen=True)
class PropagationResult:
    """The effect of adding one label to the example set.

    Attributes
    ----------
    tuple_id / label:
        The membership query that was answered.
    newly_certain_positive / newly_certain_negative:
        Previously informative tuples whose label became implied.
    informative_before / informative_after:
        Number of informative tuples before and after the label (the labeled
        tuple itself counts in ``informative_before`` when it was informative).
    consistent:
        Whether the example set is still consistent after the label.
    """

    tuple_id: int
    label: Label
    newly_certain_positive: tuple[int, ...] = field(default_factory=tuple)
    newly_certain_negative: tuple[int, ...] = field(default_factory=tuple)
    informative_before: int = 0
    informative_after: int = 0
    consistent: bool = True

    @property
    def newly_uninformative(self) -> tuple[int, ...]:
        """All tuples grayed out by this label (excluding the labeled tuple)."""
        return tuple(sorted(self.newly_certain_positive + self.newly_certain_negative))

    @property
    def pruned_count(self) -> int:
        """Number of tuples grayed out by this label."""
        return len(self.newly_certain_positive) + len(self.newly_certain_negative)

    @property
    def resolved_count(self) -> int:
        """Informative tuples resolved by this interaction (pruned + the labeled one)."""
        return self.informative_before - self.informative_after

    def summary(self) -> str:
        """One-line human-readable description of the propagation."""
        return (
            f"tuple {self.tuple_id} labeled {self.label.value}: "
            f"{self.pruned_count} tuple(s) grayed out, "
            f"{self.informative_after} informative tuple(s) remaining"
        )


def diff_statuses(
    before: dict[int, TupleStatus],
    after: dict[int, TupleStatus],
    labeled_tuple_id: int,
    label: Label,
    consistent: bool = True,
) -> PropagationResult:
    """Build a :class:`PropagationResult` from before/after classifications."""
    newly_positive = []
    newly_negative = []
    for tuple_id, status in after.items():
        if tuple_id == labeled_tuple_id:
            continue
        if before.get(tuple_id) is not TupleStatus.INFORMATIVE:
            continue
        if status is TupleStatus.CERTAIN_POSITIVE:
            newly_positive.append(tuple_id)
        elif status is TupleStatus.CERTAIN_NEGATIVE:
            newly_negative.append(tuple_id)
    informative_before = sum(
        1 for status in before.values() if status is TupleStatus.INFORMATIVE
    )
    informative_after = sum(1 for status in after.values() if status is TupleStatus.INFORMATIVE)
    return PropagationResult(
        tuple_id=labeled_tuple_id,
        label=label,
        newly_certain_positive=tuple(sorted(newly_positive)),
        newly_certain_negative=tuple(sorted(newly_negative)),
        informative_before=informative_before,
        informative_after=informative_after,
        consistent=consistent,
    )


def delta_result(
    type_index: EqualityTypeIndex,
    labeled_ids: frozenset[int],
    labeled_tuple_id: int,
    label: Label,
    flipped_positive_types: Iterable[int],
    flipped_negative_types: Iterable[int],
    informative_before: int,
    informative_after: int,
    consistent: bool = True,
) -> PropagationResult:
    """Build a :class:`PropagationResult` from the types flipped by one label.

    ``flipped_*_types`` are the equality types that were informative before
    the label and became certain after it (as reported by
    :meth:`~repro.core.informativeness.TypeStatusCache.apply_label`); the
    grayed-out tuples are exactly the unlabeled tuples of those types,
    excluding the tuple that was just labeled — materialised through the
    shared (array-accelerated) :func:`~repro.core.informativeness.unlabeled_ids_of_types`
    helper.  ``labeled_ids`` must be the labeled set *after* the new label.
    """

    def _tuples(type_masks: Iterable[int]) -> tuple[int, ...]:
        return tuple(unlabeled_ids_of_types(type_index, type_masks, labeled_ids))

    return PropagationResult(
        tuple_id=labeled_tuple_id,
        label=label,
        newly_certain_positive=_tuples(flipped_positive_types),
        newly_certain_negative=_tuples(flipped_negative_types),
        informative_before=informative_before,
        informative_after=informative_after,
        consistent=consistent,
    )
