"""Strategy registry: build strategies from their names.

Experiments, benchmarks and the console demo all refer to strategies by name
(``"random"``, ``"local-most-specific"``, ``"lookahead-entropy"``, …); the
registry maps those names to factories so that a strategy sweep is just a
list of strings.
"""

from __future__ import annotations

from collections.abc import Callable

from ...exceptions import StrategyError
from .base import Strategy
from .local import (
    LargestTypeStrategy,
    LexicographicStrategy,
    LocalMostGeneralStrategy,
    LocalMostSpecificStrategy,
)
from .lookahead import (
    EntropyStrategy,
    ExpectedPruneStrategy,
    KStepLookaheadStrategy,
    MinMaxPruneStrategy,
)
from .optimal import OptimalStrategy
from .random_strategy import RandomStrategy

StrategyFactory = Callable[..., Strategy]

_REGISTRY: dict[str, StrategyFactory] = {
    RandomStrategy.name: RandomStrategy,
    LexicographicStrategy.name: LexicographicStrategy,
    LocalMostSpecificStrategy.name: LocalMostSpecificStrategy,
    LocalMostGeneralStrategy.name: LocalMostGeneralStrategy,
    LargestTypeStrategy.name: LargestTypeStrategy,
    ExpectedPruneStrategy.name: ExpectedPruneStrategy,
    MinMaxPruneStrategy.name: MinMaxPruneStrategy,
    EntropyStrategy.name: EntropyStrategy,
    KStepLookaheadStrategy.name: KStepLookaheadStrategy,
    OptimalStrategy.name: OptimalStrategy,
}

#: The strategy families the paper's demo compares (Section 3).
LOCAL_STRATEGIES: tuple[str, ...] = (
    LexicographicStrategy.name,
    LocalMostSpecificStrategy.name,
    LocalMostGeneralStrategy.name,
    LargestTypeStrategy.name,
)
LOOKAHEAD_STRATEGIES: tuple[str, ...] = (
    ExpectedPruneStrategy.name,
    MinMaxPruneStrategy.name,
    EntropyStrategy.name,
    KStepLookaheadStrategy.name,
)


def available_strategies() -> tuple[str, ...]:
    """All registered strategy names, in registration order."""
    return tuple(_REGISTRY)


def register_strategy(name: str, factory: StrategyFactory, overwrite: bool = False) -> None:
    """Register a custom strategy factory under ``name``."""
    if not overwrite and name in _REGISTRY:
        raise StrategyError(f"strategy {name!r} is already registered")
    _REGISTRY[name] = factory


def create_strategy(name: str, seed: int | None = None, **kwargs: object) -> Strategy:
    """Instantiate a strategy by name.

    ``seed`` is forwarded to strategies that accept one (currently the random
    strategy) and ignored otherwise, so sweeps can pass it unconditionally.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise StrategyError(f"unknown strategy {name!r}; known strategies: {known}") from exc
    if factory is RandomStrategy:
        return factory(seed=seed, **kwargs)  # type: ignore[call-arg]
    return factory(**kwargs)
