"""Lookahead strategies: weigh how much information each label would bring.

Where local strategies rely on fixed orders, lookahead strategies "take into
account the quantity of information that labeling an informative tuple could
bring to the inference process, by using a generalized notion of entropy"
(Section 2 of the paper).  All strategies below are built on the same
primitive, :meth:`InferenceState.prune_counts_all`: for every informative
tuple ``t`` it returns how many informative tuples would be *resolved*
(labeled or grayed out) if the user answered ``+`` and if she answered ``−``,
computing the informative-type snapshot those counts are scored against once
per step and sharing scores between candidates of the same restricted
equality type.

Given those two counts ``(a, b)`` for every informative tuple the strategies
differ only in the score they maximise:

* :class:`ExpectedPruneStrategy` — the average ``(a + b) / 2``; greedy
  expected progress under a uniform prior over the answer.
* :class:`MinMaxPruneStrategy` — the pessimistic ``min(a, b)``; greedy
  worst-case progress (a one-step approximation of the optimal strategy).
* :class:`EntropyStrategy` — the "generalized entropy" score
  ``H(a / (a + b)) · (a + b)``: it prefers questions that are both *balanced*
  (either answer teaches something, like a binary-search probe) and
  *far-reaching* (many tuples resolved either way).
* :class:`KStepLookaheadStrategy` — recursive worst-case lookahead of bounded
  depth, interpolating between :class:`MinMaxPruneStrategy` (depth 1) and the
  exponential optimal strategy.
"""

from __future__ import annotations

import math

from ...exceptions import StrategyError
from ..examples import Label
from ..state import InferenceState
from .base import Strategy


def binary_entropy(probability: float) -> float:
    """The binary entropy H(p) in bits, with H(0) = H(1) = 0."""
    if probability <= 0.0 or probability >= 1.0:
        return 0.0
    return -(
        probability * math.log2(probability)
        + (1.0 - probability) * math.log2(1.0 - probability)
    )


class _ScoredLookaheadStrategy(Strategy):
    """Common machinery: score every informative tuple from its prune counts.

    Scoring is type-level: candidates sharing a restricted equality type
    ``E(t) ∩ M`` share both prune counts, so the strategy scores one
    representative per distinct restricted type — all of them in a single
    batched kernel call (:meth:`InferenceState.prune_counts_for_restricted`)
    — and only then resolves the winning types back to the smallest unlabeled
    tuple id.  The chosen tuple is identical to scoring every candidate
    individually: the score maximum over candidates equals the maximum over
    their types, and the old smallest-id tie-break is exactly the smallest id
    across all types achieving that maximum.
    """

    def score(self, resolved_if_positive: int, resolved_if_negative: int) -> float:
        """The figure of merit to maximise; subclasses override this."""
        raise NotImplementedError

    def choose(self, state: InferenceState) -> int:
        """The informative tuple with the best score (ties: smallest id)."""
        self._require_informative(state)
        groups = state.informative_restricted_types()
        counts = state.prune_counts_for_restricted([restricted for restricted, _, _ in groups])
        best_score = -math.inf
        best_types: list[int] = []
        for (_, full_types, _), (resolved_plus, resolved_minus) in zip(groups, counts, strict=True):
            value = self.score(resolved_plus, resolved_minus)
            if value > best_score:
                best_score = value
                best_types = list(full_types)
            elif value == best_score:
                best_types.extend(full_types)
        chosen = state.first_informative_id(best_types)
        assert chosen is not None  # informative types always hold an unlabeled tuple
        return chosen


class ExpectedPruneStrategy(_ScoredLookaheadStrategy):
    """Maximises the expected number of resolved tuples (uniform answer prior)."""

    name = "lookahead-expected"

    def score(self, resolved_if_positive: int, resolved_if_negative: int) -> float:
        """Average of the two prune counts."""
        return (resolved_if_positive + resolved_if_negative) / 2.0


class MinMaxPruneStrategy(_ScoredLookaheadStrategy):
    """Maximises the guaranteed (worst-case) number of resolved tuples."""

    name = "lookahead-minmax"

    def score(self, resolved_if_positive: int, resolved_if_negative: int) -> float:
        """The smaller of the two prune counts."""
        return float(min(resolved_if_positive, resolved_if_negative))


class EntropyStrategy(_ScoredLookaheadStrategy):
    """Maximises a generalised-entropy score: balance × magnitude.

    ``H(a/(a+b)) · (a+b)`` is maximal for questions whose two possible answers
    resolve many tuples *and* split the remaining uncertainty evenly; it
    degenerates gracefully to zero for questions whose answer is lopsided.
    A small additive term keeps a total order when all splits are completely
    unbalanced (entropy 0), falling back to expected pruning.
    """

    name = "lookahead-entropy"

    def score(self, resolved_if_positive: int, resolved_if_negative: int) -> float:
        """Entropy-weighted magnitude of the split, with an expected-prune tie-break."""
        total = resolved_if_positive + resolved_if_negative
        if total == 0:
            return 0.0
        balance = binary_entropy(resolved_if_positive / total)
        expected = total / 2.0
        return balance * total + 1e-6 * expected


class KStepLookaheadStrategy(Strategy):
    """Bounded-depth worst-case lookahead.

    Depth 1 coincides with :class:`MinMaxPruneStrategy`; larger depths
    simulate both answers recursively and minimise the worst-case number of
    *remaining informative tuples* after ``depth`` questions.  The cost grows
    exponentially with the depth, so the strategy restricts itself to the
    ``beam_width`` most promising candidates (ranked by the depth-1 score) at
    every level.
    """

    name = "lookahead-kstep"

    def __init__(self, depth: int = 2, beam_width: int = 8) -> None:
        if depth < 1:
            raise StrategyError("lookahead depth must be at least 1")
        if beam_width < 1:
            raise StrategyError("beam width must be at least 1")
        self.depth = depth
        self.beam_width = beam_width

    def _beam(self, state: InferenceState) -> list[int]:
        """The most promising informative tuples according to the one-step score.

        Type-level: each restricted type is scored once in the shared kernel
        call and contributes its ``beam_width`` smallest unlabeled ids, which
        dominates any per-candidate ranking truncated to the same width.
        """
        groups = state.informative_restricted_types()
        if not groups:
            return []
        counts = state.prune_counts_for_restricted(
            [restricted for restricted, _, _ in groups]
        )
        scored: list[tuple[int, int]] = []
        for (_, full_types, _), (resolved_plus, resolved_minus) in zip(groups, counts, strict=True):
            value = min(resolved_plus, resolved_minus)
            for tuple_id in state.first_informative_ids(full_types, self.beam_width):
                scored.append((value, tuple_id))
        scored.sort(key=lambda item: (-item[0], item[1]))
        return [tuple_id for _, tuple_id in scored[: self.beam_width]]

    def _worst_case_remaining(self, state: InferenceState, tuple_id: int, depth: int) -> int:
        """Worst-case number of informative tuples left after asking about ``tuple_id``.

        The simulated outcome threads the parent's status cache through the
        recursion (``simulate_label`` clones it copy-on-write), so the
        remaining-informative count and the next beam are cache reads — the
        candidate statuses are never re-derived from scratch per depth.
        """
        worst = 0
        for label in (Label.POSITIVE, Label.NEGATIVE):
            outcome = state.simulate_label(tuple_id, label)
            remaining = outcome.informative_count()
            if depth <= 1 or not remaining:
                value = remaining
            else:
                value = min(
                    self._worst_case_remaining(outcome, next_id, depth - 1)
                    for next_id in self._beam(outcome)
                )
            worst = max(worst, value)
        return worst

    def choose(self, state: InferenceState) -> int:
        """The candidate minimising the worst-case remaining uncertainty."""
        self._require_informative(state)
        beam = self._beam(state)
        return min(
            beam,
            key=lambda tid: (self._worst_case_remaining(state, tid, self.depth), tid),
        )
