"""Lookahead strategies: weigh how much information each label would bring.

Where local strategies rely on fixed orders, lookahead strategies "take into
account the quantity of information that labeling an informative tuple could
bring to the inference process, by using a generalized notion of entropy"
(Section 2 of the paper).  All strategies below are built on the same
primitive, :meth:`InferenceState.prune_counts_all`: for every informative
tuple ``t`` it returns how many informative tuples would be *resolved*
(labeled or grayed out) if the user answered ``+`` and if she answered ``−``,
computing the informative-type snapshot those counts are scored against once
per step and sharing scores between candidates of the same restricted
equality type.

Given those two counts ``(a, b)`` for every informative tuple the strategies
differ only in the score they maximise:

* :class:`ExpectedPruneStrategy` — the average ``(a + b) / 2``; greedy
  expected progress under a uniform prior over the answer.
* :class:`MinMaxPruneStrategy` — the pessimistic ``min(a, b)``; greedy
  worst-case progress (a one-step approximation of the optimal strategy).
* :class:`EntropyStrategy` — the "generalized entropy" score
  ``H(a / (a + b)) · (a + b)``: it prefers questions that are both *balanced*
  (either answer teaches something, like a binary-search probe) and
  *far-reaching* (many tuples resolved either way).
* :class:`KStepLookaheadStrategy` — recursive worst-case lookahead of bounded
  depth, interpolating between :class:`MinMaxPruneStrategy` (depth 1) and the
  exponential optimal strategy.
"""

from __future__ import annotations

import math

from ...exceptions import StrategyError
from ..examples import Label
from ..state import InferenceState
from .base import Strategy


def binary_entropy(probability: float) -> float:
    """The binary entropy H(p) in bits, with H(0) = H(1) = 0."""
    if probability <= 0.0 or probability >= 1.0:
        return 0.0
    return -(
        probability * math.log2(probability)
        + (1.0 - probability) * math.log2(1.0 - probability)
    )


class _ScoredLookaheadStrategy(Strategy):
    """Common machinery: score every informative tuple from its prune counts."""

    def score(self, resolved_if_positive: int, resolved_if_negative: int) -> float:
        """The figure of merit to maximise; subclasses override this."""
        raise NotImplementedError

    def choose(self, state: InferenceState) -> int:
        """The informative tuple with the best score (ties: smallest id)."""
        candidates = self._informative_or_raise(state)
        counts = state.prune_counts_all(candidates)
        best_id = None
        best_key: tuple[float, int] = (-math.inf, 0)
        for tuple_id in candidates:
            resolved_plus, resolved_minus = counts[tuple_id]
            key = (self.score(resolved_plus, resolved_minus), -tuple_id)
            if key > best_key:
                best_key = key
                best_id = tuple_id
        assert best_id is not None  # candidates is non-empty
        return best_id


class ExpectedPruneStrategy(_ScoredLookaheadStrategy):
    """Maximises the expected number of resolved tuples (uniform answer prior)."""

    name = "lookahead-expected"

    def score(self, resolved_if_positive: int, resolved_if_negative: int) -> float:
        """Average of the two prune counts."""
        return (resolved_if_positive + resolved_if_negative) / 2.0


class MinMaxPruneStrategy(_ScoredLookaheadStrategy):
    """Maximises the guaranteed (worst-case) number of resolved tuples."""

    name = "lookahead-minmax"

    def score(self, resolved_if_positive: int, resolved_if_negative: int) -> float:
        """The smaller of the two prune counts."""
        return float(min(resolved_if_positive, resolved_if_negative))


class EntropyStrategy(_ScoredLookaheadStrategy):
    """Maximises a generalised-entropy score: balance × magnitude.

    ``H(a/(a+b)) · (a+b)`` is maximal for questions whose two possible answers
    resolve many tuples *and* split the remaining uncertainty evenly; it
    degenerates gracefully to zero for questions whose answer is lopsided.
    A small additive term keeps a total order when all splits are completely
    unbalanced (entropy 0), falling back to expected pruning.
    """

    name = "lookahead-entropy"

    def score(self, resolved_if_positive: int, resolved_if_negative: int) -> float:
        """Entropy-weighted magnitude of the split, with an expected-prune tie-break."""
        total = resolved_if_positive + resolved_if_negative
        if total == 0:
            return 0.0
        balance = binary_entropy(resolved_if_positive / total)
        expected = total / 2.0
        return balance * total + 1e-6 * expected


class KStepLookaheadStrategy(Strategy):
    """Bounded-depth worst-case lookahead.

    Depth 1 coincides with :class:`MinMaxPruneStrategy`; larger depths
    simulate both answers recursively and minimise the worst-case number of
    *remaining informative tuples* after ``depth`` questions.  The cost grows
    exponentially with the depth, so the strategy restricts itself to the
    ``beam_width`` most promising candidates (ranked by the depth-1 score) at
    every level.
    """

    name = "lookahead-kstep"

    def __init__(self, depth: int = 2, beam_width: int = 8) -> None:
        if depth < 1:
            raise StrategyError("lookahead depth must be at least 1")
        if beam_width < 1:
            raise StrategyError("beam width must be at least 1")
        self.depth = depth
        self.beam_width = beam_width

    def _beam(self, state: InferenceState, candidates: list[int]) -> list[int]:
        """The most promising candidates according to the one-step score."""
        counts = state.prune_counts_all(candidates)
        scored = sorted(
            candidates,
            key=lambda tid: (min(counts[tid]), -tid),
            reverse=True,
        )
        return scored[: self.beam_width]

    def _worst_case_remaining(self, state: InferenceState, tuple_id: int, depth: int) -> int:
        """Worst-case number of informative tuples left after asking about ``tuple_id``."""
        worst = 0
        for label in (Label.POSITIVE, Label.NEGATIVE):
            outcome = state.simulate_label(tuple_id, label)
            remaining = outcome.informative_ids()
            if depth <= 1 or not remaining:
                value = len(remaining)
            else:
                value = min(
                    self._worst_case_remaining(outcome, next_id, depth - 1)
                    for next_id in self._beam(outcome, remaining)
                )
            worst = max(worst, value)
        return worst

    def choose(self, state: InferenceState) -> int:
        """The candidate minimising the worst-case remaining uncertainty."""
        candidates = self._informative_or_raise(state)
        beam = self._beam(state, candidates)
        return min(
            beam,
            key=lambda tid: (self._worst_case_remaining(state, tid, self.depth), tid),
        )
