"""The optimal strategy: exact minimax over whole question trees.

The paper notes that "there exists an algorithm that computes the optimal
strategy of showing tuples to the user, but it requires exponential time,
which unfortunately renders it unusable in practice".  This module implements
that algorithm anyway — it is invaluable for validating the heuristics on
small instances (the efficient strategies can be compared against the true
optimum) and for the ablation experiments.

The value of a state is the smallest number of membership queries that
suffices to reach convergence *whatever the user answers* (the user is
adversarial but consistent).  It satisfies

    ``value(state) = 0``                                  if converged,
    ``value(state) = 1 + min_t max_label value(state+label)``  otherwise,

with ``t`` ranging over informative tuples (one representative per distinct
restricted equality type — tuples of the same type are interchangeable).
States are memoised on the pair ``(M, set of negative types)``, which fully
determines informativeness.
"""

from __future__ import annotations

from ...exceptions import StrategyError
from ..examples import Label
from ..state import InferenceState
from .base import Strategy


class OptimalStrategy(Strategy):
    """Chooses the first question of an optimal (minimax) question tree.

    ``max_states`` bounds the number of distinct memoised states; exceeding it
    raises :class:`~repro.exceptions.StrategyError` so that callers are never
    silently stuck in an exponential computation.
    """

    name = "optimal"

    def __init__(self, max_states: int = 200_000) -> None:
        if max_states < 1:
            raise StrategyError("max_states must be positive")
        self.max_states = max_states
        self._memo: dict[tuple[int, frozenset[int]], int] = {}

    def reset(self) -> None:
        """Drop the memoisation table."""
        self._memo = {}

    # ------------------------------------------------------------------ #
    # Core minimax
    # ------------------------------------------------------------------ #
    def _state_key(self, state: InferenceState) -> tuple[int, frozenset[int]]:
        positive_mask = state.space.positive_mask
        negatives = frozenset(mask & positive_mask for mask in state.space.negative_masks)
        return positive_mask, negatives

    def _representatives(self, state: InferenceState) -> list[int]:
        """One informative tuple per distinct restricted equality type.

        Reads the grouped informative snapshot instead of materialising every
        informative tuple id; the representative of a restricted type is its
        smallest unlabeled tuple id, as before.
        """
        representatives: list[int] = []
        for _, full_types, _ in state.informative_restricted_types():
            tuple_id = state.first_informative_id(full_types)
            if tuple_id is not None:
                representatives.append(tuple_id)
        return sorted(representatives)

    def value(self, state: InferenceState) -> int:
        """Minimum worst-case number of questions to convergence from ``state``."""
        if state.is_converged():
            return 0
        key = self._state_key(state)
        if key in self._memo:
            return self._memo[key]
        if len(self._memo) >= self.max_states:
            raise StrategyError(
                "optimal strategy exceeded its state budget "
                f"({self.max_states} memoised states); the instance is too large"
            )
        best = None
        for tuple_id in self._representatives(state):
            worst = 0
            for label in (Label.POSITIVE, Label.NEGATIVE):
                outcome = state.simulate_label(tuple_id, label)
                worst = max(worst, self.value(outcome))
                if best is not None and worst + 1 >= best:
                    break  # cannot improve on the best question found so far
            candidate_value = 1 + worst
            if best is None or candidate_value < best:
                best = candidate_value
        assert best is not None  # non-converged states have informative tuples
        self._memo[key] = best
        return best

    def choose(self, state: InferenceState) -> int:
        """An informative tuple starting an optimal question tree."""
        candidates = self._informative_or_raise(state)
        best_id: int | None = None
        best_value: int | None = None
        for tuple_id in self._representatives(state):
            worst = 0
            for label in (Label.POSITIVE, Label.NEGATIVE):
                outcome = state.simulate_label(tuple_id, label)
                worst = max(worst, self.value(outcome))
            if best_value is None or worst < best_value or (worst == best_value and tuple_id < best_id):
                best_value = worst
                best_id = tuple_id
        assert best_id is not None
        # Any informative tuple of the chosen representative's type is equivalent;
        # return the representative itself (smallest id of its type among candidates).
        return best_id if best_id in candidates else candidates[0]
