"""Strategies for choosing the next informative tuple to present to the user.

The paper's taxonomy: a *random* baseline, cheap *local* strategies based on
fixed orders, *lookahead* strategies based on a generalised notion of entropy,
and the exponential *optimal* strategy.  See the individual modules for the
exact definitions; :mod:`repro.core.strategies.registry` builds strategies by
name for experiments and benchmarks.
"""

from .base import Strategy
from .local import (
    LargestTypeStrategy,
    LexicographicStrategy,
    LocalMostGeneralStrategy,
    LocalMostSpecificStrategy,
)
from .lookahead import (
    EntropyStrategy,
    ExpectedPruneStrategy,
    KStepLookaheadStrategy,
    MinMaxPruneStrategy,
    binary_entropy,
)
from .optimal import OptimalStrategy
from .random_strategy import RandomStrategy
from .registry import (
    LOCAL_STRATEGIES,
    LOOKAHEAD_STRATEGIES,
    available_strategies,
    create_strategy,
    register_strategy,
)

__all__ = [
    "EntropyStrategy",
    "ExpectedPruneStrategy",
    "KStepLookaheadStrategy",
    "LOCAL_STRATEGIES",
    "LOOKAHEAD_STRATEGIES",
    "LargestTypeStrategy",
    "LexicographicStrategy",
    "LocalMostGeneralStrategy",
    "LocalMostSpecificStrategy",
    "MinMaxPruneStrategy",
    "OptimalStrategy",
    "RandomStrategy",
    "Strategy",
    "available_strategies",
    "binary_entropy",
    "create_strategy",
    "register_strategy",
]
