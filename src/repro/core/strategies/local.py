"""Local strategies: cheap choices based on fixed orders over the tuples.

The paper describes local strategies as "rather simple and based on some fixed
orders" — they look only at intrinsic properties of each informative tuple
(its equality type relative to the current candidate query ``M``) and never
simulate the effect of a label.  They are therefore very fast and, as the
paper's demo scenario points out, competitive on simple instances and queries.

The family implemented here:

* :class:`LocalMostSpecificStrategy` — prefer the tuple sharing the *most*
  atoms with ``M``: its positive label would barely shrink ``M`` but its
  negative label is extremely informative (it rules out ``M``'s large
  neighbourhood); this walks the specialisation lattice top-down.
* :class:`LocalMostGeneralStrategy` — prefer the tuple sharing the *fewest*
  atoms with ``M``: walks the lattice bottom-up.
* :class:`LexicographicStrategy` — the first informative tuple in table
  order; the weakest sensible fixed order, useful as a deterministic control.
* :class:`LargestTypeStrategy` — prefer the tuple whose equality type (within
  ``M``) is shared by the most still-informative tuples, so whatever the
  answer, many tuples of the same type are resolved at once.
"""

from __future__ import annotations

from ..atoms import popcount
from ..state import InferenceState
from .base import Strategy


class LexicographicStrategy(Strategy):
    """Always asks about the first informative tuple in table order."""

    name = "local-lexicographic"

    def choose(self, state: InferenceState) -> int:
        """The informative tuple with the smallest id."""
        return min(self._informative_or_raise(state))


class LocalMostSpecificStrategy(Strategy):
    """Prefers tuples agreeing with as many atoms of the candidate query as possible.

    Ties are broken by smallest tuple id, making the strategy deterministic.
    """

    name = "local-most-specific"

    def choose(self, state: InferenceState) -> int:
        """The informative tuple maximising ``|E(t) ∩ M|``."""
        candidates = self._informative_or_raise(state)
        positive_mask = state.space.positive_mask
        type_index = state.type_index
        return max(
            candidates,
            key=lambda tid: (popcount(type_index.mask(tid) & positive_mask), -tid),
        )


class LocalMostGeneralStrategy(Strategy):
    """Prefers tuples agreeing with as few atoms of the candidate query as possible.

    Ties are broken by smallest tuple id, making the strategy deterministic.
    """

    name = "local-most-general"

    def choose(self, state: InferenceState) -> int:
        """The informative tuple minimising ``|E(t) ∩ M|``."""
        candidates = self._informative_or_raise(state)
        positive_mask = state.space.positive_mask
        type_index = state.type_index
        return min(
            candidates,
            key=lambda tid: (popcount(type_index.mask(tid) & positive_mask), tid),
        )


class LargestTypeStrategy(Strategy):
    """Prefers the tuple whose (restricted) equality type is the most frequent.

    Whatever the user answers, every still-informative tuple sharing the same
    restricted type ``E(t) ∩ M`` is resolved along with it, so frequent types
    give a guaranteed batch of pruning without simulating labels.
    """

    name = "local-largest-type"

    def choose(self, state: InferenceState) -> int:
        """The informative tuple whose restricted type has the most members.

        The frequencies come from the state's informative-type snapshot (one
        cache read) rather than a per-candidate sweep; two full types with the
        same restriction under ``M`` pool their members, exactly as before.
        """
        candidates = self._informative_or_raise(state)
        positive_mask = state.space.positive_mask
        type_index = state.type_index
        frequency: dict[int, int] = {}
        for mask, count in state.informative_type_snapshot():
            restricted = mask & positive_mask
            frequency[restricted] = frequency.get(restricted, 0) + count
        return max(
            candidates,
            key=lambda tid: (frequency[type_index.mask(tid) & positive_mask], -tid),
        )
