"""Local strategies: cheap choices based on fixed orders over the tuples.

The paper describes local strategies as "rather simple and based on some fixed
orders" — they look only at intrinsic properties of each informative tuple
(its equality type relative to the current candidate query ``M``) and never
simulate the effect of a label.  They are therefore very fast and, as the
paper's demo scenario points out, competitive on simple instances and queries.

The family implemented here:

* :class:`LocalMostSpecificStrategy` — prefer the tuple sharing the *most*
  atoms with ``M``: its positive label would barely shrink ``M`` but its
  negative label is extremely informative (it rules out ``M``'s large
  neighbourhood); this walks the specialisation lattice top-down.
* :class:`LocalMostGeneralStrategy` — prefer the tuple sharing the *fewest*
  atoms with ``M``: walks the lattice bottom-up.
* :class:`LexicographicStrategy` — the first informative tuple in table
  order; the weakest sensible fixed order, useful as a deterministic control.
* :class:`LargestTypeStrategy` — prefer the tuple whose equality type (within
  ``M``) is shared by the most still-informative tuples, so whatever the
  answer, many tuples of the same type are resolved at once.
"""

from __future__ import annotations

from ..atoms import popcount
from ..state import InferenceState
from .base import Strategy


class LexicographicStrategy(Strategy):
    """Always asks about the first informative tuple in table order."""

    name = "local-lexicographic"

    def choose(self, state: InferenceState) -> int:
        """The informative tuple with the smallest id.

        The minimum over all informative tuples is the minimum over the
        informative types' smallest unlabeled ids — no candidate-id
        materialisation.
        """
        self._require_informative(state)
        chosen = state.first_informative_id(
            mask for mask, _ in state.informative_type_snapshot()
        )
        assert chosen is not None  # the guard above ensures an informative type
        return chosen


class LocalMostSpecificStrategy(Strategy):
    """Prefers tuples agreeing with as many atoms of the candidate query as possible.

    Ties are broken by smallest tuple id, making the strategy deterministic.
    """

    name = "local-most-specific"

    def choose(self, state: InferenceState) -> int:
        """The informative tuple maximising ``|E(t) ∩ M|``.

        Scored per informative type (the popcount only depends on the type);
        the old smallest-id tie-break is the smallest unlabeled id across all
        types achieving the maximal popcount.
        """
        self._require_informative(state)
        positive_mask = state.space.positive_mask
        best_pop = -1
        best_types: list[int] = []
        for mask, _ in state.informative_type_snapshot():
            pop = popcount(mask & positive_mask)
            if pop > best_pop:
                best_pop = pop
                best_types = [mask]
            elif pop == best_pop:
                best_types.append(mask)
        chosen = state.first_informative_id(best_types)
        assert chosen is not None
        return chosen


class LocalMostGeneralStrategy(Strategy):
    """Prefers tuples agreeing with as few atoms of the candidate query as possible.

    Ties are broken by smallest tuple id, making the strategy deterministic.
    """

    name = "local-most-general"

    def choose(self, state: InferenceState) -> int:
        """The informative tuple minimising ``|E(t) ∩ M|``.

        Mirror image of :class:`LocalMostSpecificStrategy`: minimal popcount
        over the informative types, then the smallest unlabeled id among the
        minimising types.
        """
        self._require_informative(state)
        positive_mask = state.space.positive_mask
        best_pop: int | None = None
        best_types: list[int] = []
        for mask, _ in state.informative_type_snapshot():
            pop = popcount(mask & positive_mask)
            if best_pop is None or pop < best_pop:
                best_pop = pop
                best_types = [mask]
            elif pop == best_pop:
                best_types.append(mask)
        chosen = state.first_informative_id(best_types)
        assert chosen is not None
        return chosen


class LargestTypeStrategy(Strategy):
    """Prefers the tuple whose (restricted) equality type is the most frequent.

    Whatever the user answers, every still-informative tuple sharing the same
    restricted type ``E(t) ∩ M`` is resolved along with it, so frequent types
    give a guaranteed batch of pruning without simulating labels.
    """

    name = "local-largest-type"

    def choose(self, state: InferenceState) -> int:
        """The informative tuple whose restricted type has the most members.

        The grouped snapshot pools two full types with the same restriction
        under ``M``, exactly as before; the winner is the smallest unlabeled
        id among the full types of the most frequent restricted type(s).
        """
        self._require_informative(state)
        best_count = -1
        best_types: list[int] = []
        for _, full_types, count in state.informative_restricted_types():
            if count > best_count:
                best_count = count
                best_types = list(full_types)
            elif count == best_count:
                best_types.extend(full_types)
        chosen = state.first_informative_id(best_types)
        assert chosen is not None
        return chosen
