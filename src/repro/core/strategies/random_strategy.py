"""The random strategy: the paper's baseline.

"For comparison we have also introduced the random strategy which chooses
randomly an informative tuple."  It still benefits from pruning (it never asks
about uninformative tuples) but ignores how much information each candidate
would bring.
"""

from __future__ import annotations

import random

from ..state import InferenceState
from .base import Strategy


class RandomStrategy(Strategy):
    """Chooses a uniformly random informative tuple."""

    name = "random"

    def __init__(self, seed: int | None = None) -> None:
        self._seed = seed
        self._rng = random.Random(seed)

    def choose(self, state: InferenceState) -> int:
        """A uniformly random informative tuple."""
        candidates = self._informative_or_raise(state)
        return self._rng.choice(candidates)

    def reset(self) -> None:
        """Restore the initial pseudo-random sequence (reproducible runs)."""
        self._rng = random.Random(self._seed)
