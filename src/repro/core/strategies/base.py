"""Strategy interface.

A *strategy* Υ is a function that, given the current inference state (the set
of tuples and the labels collected so far), returns the next informative tuple
to present to the user.  The paper classifies its strategies into *local*
(cheap, based on fixed orders over the tuples) and *lookahead* (weigh how much
information each candidate label would bring), plus a *random* baseline and an
exponential *optimal* strategy that is unusable in practice but interesting on
tiny instances.
"""

from __future__ import annotations

import abc

from ...exceptions import StrategyError
from ..state import InferenceState


class Strategy(abc.ABC):
    """Chooses which informative tuple to ask the user about next."""

    #: Registry/reporting identifier; subclasses override it.
    name: str = "strategy"

    @abc.abstractmethod
    def choose(self, state: InferenceState) -> int:
        """The tuple id of the next membership query.

        Implementations must return an *informative* tuple and must raise
        :class:`~repro.exceptions.StrategyError` when none remains.
        """

    def reset(self) -> None:
        """Forget per-session state (default: nothing to forget)."""

    def _informative_or_raise(self, state: InferenceState) -> list[int]:
        """The informative tuple ids, raising when the loop should have stopped."""
        candidates = state.informative_ids()
        if not candidates:
            raise self._converged_error()
        return candidates

    def _require_informative(self, state: InferenceState) -> None:
        """Raise when the loop should have stopped, without materialising ids.

        The type-level strategies work from the informative-type snapshot and
        never need the full candidate id list; this guard gives them the same
        contract as :meth:`_informative_or_raise` at cache-read cost.
        """
        if not state.has_informative_tuple():
            raise self._converged_error()

    def _converged_error(self) -> StrategyError:
        return StrategyError(
            f"strategy {self.name!r} was asked to choose a tuple but no informative "
            "tuple remains (inference has converged)"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}(name={self.name!r})"
