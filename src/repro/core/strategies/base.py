"""Strategy interface.

A *strategy* Υ is a function that, given the current inference state (the set
of tuples and the labels collected so far), returns the next informative tuple
to present to the user.  The paper classifies its strategies into *local*
(cheap, based on fixed orders over the tuples) and *lookahead* (weigh how much
information each candidate label would bring), plus a *random* baseline and an
exponential *optimal* strategy that is unusable in practice but interesting on
tiny instances.
"""

from __future__ import annotations

import abc

from ...exceptions import StrategyError
from ..state import InferenceState


class Strategy(abc.ABC):
    """Chooses which informative tuple to ask the user about next."""

    #: Registry/reporting identifier; subclasses override it.
    name: str = "strategy"

    @abc.abstractmethod
    def choose(self, state: InferenceState) -> int:
        """The tuple id of the next membership query.

        Implementations must return an *informative* tuple and must raise
        :class:`~repro.exceptions.StrategyError` when none remains.
        """

    def reset(self) -> None:
        """Forget per-session state (default: nothing to forget)."""

    def _informative_or_raise(self, state: InferenceState) -> list[int]:
        """The informative tuple ids, raising when the loop should have stopped."""
        candidates = state.informative_ids()
        if not candidates:
            raise StrategyError(
                f"strategy {self.name!r} was asked to choose a tuple but no informative "
                "tuple remains (inference has converged)"
            )
        return candidates

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}(name={self.name!r})"
