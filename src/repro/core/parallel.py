"""Intra-session data parallelism: the executor layer behind sharded scoring.

PR 5's cluster tier parallelizes *across* sessions; this module parallelizes
*inside* one.  It owns the worker pools that
:class:`~repro.core.kernels.ShardedTypeTable` fans per-shard kernel calls
across and that :func:`~repro.relational.columnar.build_combo_histogram`
distributes the factorized setup histogram over, and it is the **only
sanctioned pool-creation site** of the library (enforced by analysis rule
RPR007 — every other layer obtains pools through :func:`get_executor` or
:func:`create_thread_pool`).

Three execution modes, selected like the kernel backend
(:func:`~repro.core.kernels.use_backend`):

* ``serial`` — the default.  No pool is ever created; every existing caller
  and test runs exactly the code it ran before this module existed.
* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor`.  The fast
  path when numpy is active: the K×I kernel expressions release the GIL, so
  shards score concurrently against shared memory with nothing pickled.
* ``process`` — a :class:`~concurrent.futures.ProcessPoolExecutor` for the
  pure-Python kernels, whose loops hold the GIL.  Shard columns are shipped
  once and cached worker-side keyed by the table fingerprint (see
  :func:`prune_shard_task`); subsequent calls send only the per-call state.

Resolution order mirrors ``default_backend``: a :class:`parallel_scope`
override, then the ``REPRO_PARALLEL`` environment variable, then ``serial``.
``auto`` resolves to ``thread`` when numpy is importable and ``process``
otherwise.  ``REPRO_PARALLEL_SHARDS`` / ``parallel_scope(shards=...)`` pin
the shard count (default: the CPU count).

Pools are lazily started — the first fanned call creates the pool — and
explicitly shut down via :func:`shutdown_executors` (or
:meth:`ParallelExecutor.close` / ``with`` on an owned executor).  Pools
persist across calls and scopes by design: a lookahead step fans hundreds of
shard calls and pool startup (especially process fork) must not be paid per
call.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any

#: Execution-mode environment variable (``serial`` / ``thread`` / ``process`` / ``auto``).
_ENV_MODE = "REPRO_PARALLEL"
#: Shard-count environment variable (positive integer; default = CPU count).
_ENV_SHARDS = "REPRO_PARALLEL_SHARDS"

MODES = ("serial", "thread", "process", "auto")

_forced_mode: str | None = None
_forced_shards: int | None = None


def _validate_mode(mode: str) -> str:
    if mode not in MODES:
        raise ValueError(f"unknown parallel mode {mode!r}; use one of {', '.join(MODES)}")
    return mode


def available_cpus() -> int:
    """The CPU count the pools size themselves against (at least 1)."""
    return os.cpu_count() or 1


def parallel_mode() -> str:
    """The resolved execution mode: ``serial``, ``thread`` or ``process``.

    Resolution order: :class:`parallel_scope` override, then the
    ``REPRO_PARALLEL`` environment variable, then ``serial``.  ``auto``
    resolves to ``thread`` when numpy is importable (the array kernels
    release the GIL) and ``process`` otherwise.
    """
    mode = _forced_mode
    if mode is None:
        env = os.environ.get(_ENV_MODE, "").strip().lower()
        mode = _validate_mode(env) if env else "serial"
    if mode == "auto":
        from .kernels import HAVE_NUMPY

        mode = "thread" if HAVE_NUMPY else "process"
    return mode


def parallel_enabled() -> bool:
    """Whether fanned execution is on (any mode but ``serial``)."""
    return parallel_mode() != "serial"


def shard_count() -> int:
    """How many shards new sharded tables partition into.

    Resolution order: :class:`parallel_scope` override, then
    ``REPRO_PARALLEL_SHARDS``, then the CPU count.  Always at least 1;
    tables clamp further to their own row count.
    """
    shards = _forced_shards
    if shards is None:
        env = os.environ.get(_ENV_SHARDS, "").strip()
        shards = int(env) if env else available_cpus()
    return max(1, shards)


class parallel_scope:
    """Force the parallel mode (and optionally shard count) in a ``with`` block.

    The counterpart of :class:`~repro.core.kernels.use_backend` for the
    executor layer::

        with parallel_scope("thread", shards=8):
            state = InferenceState(table)   # builds a ShardedTypeTable

    Leaving the scope restores the previous mode but does **not** shut the
    pool down — pools are persistent; call :func:`shutdown_executors` when a
    process is done fanning work.
    """

    def __init__(self, mode: str, shards: int | None = None) -> None:
        self.mode = _validate_mode(mode)
        self.shards = shards
        self._previous: tuple[str | None, int | None] | None = None

    def __enter__(self) -> parallel_scope:
        global _forced_mode, _forced_shards
        self._previous = (_forced_mode, _forced_shards)
        _forced_mode = self.mode
        if self.shards is not None:
            _forced_shards = max(1, int(self.shards))
        return self

    def __exit__(self, *_exc: object) -> None:
        global _forced_mode, _forced_shards
        assert self._previous is not None
        _forced_mode, _forced_shards = self._previous


def even_ranges(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into contiguous spans whose sizes differ by ≤ 1.

    The shared chunking helper of the sharded table and the factorized
    histogram: spans are returned in order, cover ``range(total)`` exactly,
    and the first ``total % parts`` spans carry the extra element — so
    deliberately *uneven* boundaries exist whenever ``parts ∤ total``.
    """
    if total <= 0:
        return [(0, 0)]
    parts = max(1, min(parts, total))
    base, extra = divmod(total, parts)
    bounds: list[tuple[int, int]] = []
    start = 0
    for index in range(parts):
        stop = start + base + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def create_thread_pool(
    max_workers: int | None = None, thread_name_prefix: str = "repro-pool"
) -> ThreadPoolExecutor:
    """A plain thread pool for layers that own their executor (e.g. the
    asyncio facade's ``run_in_executor`` bridge).

    Keeping the construction here — rather than at each call site — is what
    lets rule RPR007 pin pool creation to this module; the *caller* still
    owns the pool and is responsible for shutting it down.
    """
    return ThreadPoolExecutor(max_workers=max_workers, thread_name_prefix=thread_name_prefix)


class ParallelExecutor:
    """One persistent worker pool: lazily started, explicitly shut down.

    The pool is created on the first :meth:`map` call, not in ``__init__``,
    so merely resolving an executor (or entering a :class:`parallel_scope`)
    never forks processes or spawns threads.  ``close()`` (or ``with``)
    releases the workers; a closed executor refuses further work.
    """

    def __init__(self, mode: str, max_workers: int | None = None) -> None:
        if mode not in ("thread", "process"):
            raise ValueError(f"ParallelExecutor runs 'thread' or 'process' pools, not {mode!r}")
        self.mode = mode
        self.max_workers = max_workers if max_workers is not None else available_cpus()
        self._lock = threading.Lock()
        self._pool: Executor | None = None
        self._closed = False

    def _ensure_pool(self) -> Executor:
        with self._lock:
            if self._closed:
                raise RuntimeError("ParallelExecutor is closed")
            if self._pool is None:
                if self.mode == "thread":
                    self._pool = create_thread_pool(
                        max_workers=self.max_workers, thread_name_prefix="repro-shard"
                    )
                else:
                    self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            return self._pool

    @property
    def started(self) -> bool:
        """Whether the underlying pool has been created yet."""
        with self._lock:
            return self._pool is not None

    def map(self, task: Callable[[Any], Any], payloads: Iterable[Any]) -> list[Any]:
        """Run ``task`` over ``payloads`` on the pool; results in input order.

        In process mode ``task`` must be a module-level (picklable) function;
        in thread mode closures are fine.
        """
        items = list(payloads)
        if not items:
            return []
        if len(items) == 1:
            # One payload cannot fan out; skip the pool round-trip (and, on a
            # cold executor, pool startup).
            return [task(items[0])]
        pool = self._ensure_pool()
        return list(pool.map(task, items))

    def close(self) -> None:
        """Shut the pool down and refuse further work (idempotent)."""
        with self._lock:
            pool = self._pool
            self._pool = None
            self._closed = True
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> ParallelExecutor:
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "closed" if self._closed else ("started" if self.started else "cold")
        return f"ParallelExecutor(mode={self.mode!r}, max_workers={self.max_workers}, {state})"


_registry_lock = threading.Lock()
_executors: dict[str, ParallelExecutor] = {}


def get_executor(mode: str | None = None) -> ParallelExecutor:
    """The shared executor for a mode (created cold on first request).

    One executor per mode per process; the pool inside it starts on first
    use and survives until :func:`shutdown_executors`.  ``mode`` defaults to
    the resolved :func:`parallel_mode` and must not be ``serial``.
    """
    resolved = mode if mode is not None else parallel_mode()
    if resolved == "auto":
        from .kernels import HAVE_NUMPY

        resolved = "thread" if HAVE_NUMPY else "process"
    if resolved == "serial":
        raise ValueError("serial execution needs no executor; check parallel_enabled() first")
    with _registry_lock:
        executor = _executors.get(resolved)
        if executor is None:
            executor = ParallelExecutor(resolved)
            _executors[resolved] = executor
        return executor


def shutdown_executors() -> None:
    """Close every shared executor (idempotent; fresh ones start cold again)."""
    with _registry_lock:
        executors = list(_executors.values())
        _executors.clear()
    for executor in executors:
        executor.close()


# --------------------------------------------------------------------- #
# Worker-side tasks (top-level so process pools can pickle them)
# --------------------------------------------------------------------- #
#: Per-worker-process cache of shard mask columns, keyed by
#: ``(table fingerprint, shard row span)``.  The span — not the shard index —
#: identifies the column: the same table sharded two different ways shares a
#: fingerprint but cuts different columns.  Masks are immutable, so the
#: parent ships them once per (table, span, worker) and every later call
#: sends only the per-call state; an LRU cap keeps long-lived workers
#: bounded.
_WORKER_CACHE_LIMIT = 64
_worker_mask_cache: OrderedDict[tuple[str, tuple[int, int]], tuple[int, ...]] = OrderedDict()


def prune_shard_task(payload: dict[str, Any]) -> tuple[str, list[tuple[int, int]] | None]:
    """Score one shard's informative snapshot against the candidate batch.

    The payload carries the shard's informative rows as *local indices* into
    the shard's mask column plus their unlabeled counts, the restricted
    candidates and the space ``(M, N)``.  The mask column itself travels only
    when ``payload["masks"]`` is set: on a cache miss the worker answers
    ``("miss", None)`` and the parent resends with the masks included —
    misses are bounded by workers × shards per table, not by call count.
    """
    key = (payload["fingerprint"], tuple(payload["span"]))
    masks = payload.get("masks")
    if masks is None:
        masks = _worker_mask_cache.get(key)
        if masks is None:
            return ("miss", None)
        _worker_mask_cache.move_to_end(key)
    else:
        masks = tuple(masks)
        _worker_mask_cache[key] = masks
        _worker_mask_cache.move_to_end(key)
        while len(_worker_mask_cache) > _WORKER_CACHE_LIMIT:
            _worker_mask_cache.popitem(last=False)
    from .kernels import prune_counts_batch

    info_masks = [masks[i] for i in payload["info_local"]]
    counts = prune_counts_batch(
        info_masks,
        payload["info_counts"],
        payload["candidates"],
        payload["positive_mask"],
        payload["negative_masks"],
        backend=payload["backend"],
    )
    return ("ok", counts)


def worker_cache_info() -> tuple[int, tuple[tuple[str, int], ...]]:
    """Size and keys of this process's shard-mask cache (tests/introspection)."""
    return len(_worker_mask_cache), tuple(_worker_mask_cache)


def merge_partial_counts(
    partials: Sequence[Sequence[tuple[int, int]]],
) -> list[tuple[int, int]]:
    """Elementwise sum of per-shard ``(if_positive, if_negative)`` partials.

    Prune counts are exact integer sums over the informative snapshot, and
    the snapshot is partitioned by the shards — so summing the per-shard
    partial sums reproduces the unsharded kernel's output bit for bit,
    regardless of shard boundaries or completion order.
    """
    if not partials:
        return []
    if len(partials) == 1:
        return list(partials[0])
    totals = [[positive, negative] for positive, negative in partials[0]]
    for partial in partials[1:]:
        for index, (positive, negative) in enumerate(partial):
            row = totals[index]
            row[0] += positive
            row[1] += negative
    return [(positive, negative) for positive, negative in totals]
