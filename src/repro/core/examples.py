"""Labels and example sets.

The user interacts with JIM exclusively through *membership queries*: she
labels candidate tuples as positive (``+``, the tuple belongs to the join
result she has in mind) or negative (``−``).  An :class:`ExampleSet` records
those labels and is the sole input of the consistent-query space.
"""

from __future__ import annotations

import enum
from collections.abc import Iterator, Mapping
from dataclasses import dataclass

from ..exceptions import InconsistentLabelError


class Label(enum.Enum):
    """A membership-query answer."""

    POSITIVE = "+"
    NEGATIVE = "-"

    @property
    def is_positive(self) -> bool:
        """Whether the label is positive."""
        return self is Label.POSITIVE

    @property
    def is_negative(self) -> bool:
        """Whether the label is negative."""
        return self is Label.NEGATIVE

    def opposite(self) -> Label:
        """The other label."""
        return Label.NEGATIVE if self is Label.POSITIVE else Label.POSITIVE

    @classmethod
    def from_value(cls, value: object) -> Label:
        """Parse a label from common user-facing spellings.

        Accepts :class:`Label` values, booleans, and the strings
        ``"+"/"-"``, ``"positive"/"negative"``, ``"yes"/"no"``, ``"y"/"n"``.
        """
        if isinstance(value, Label):
            return value
        if isinstance(value, bool):
            return cls.POSITIVE if value else cls.NEGATIVE
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in {"+", "positive", "pos", "yes", "y", "true", "1"}:
                return cls.POSITIVE
            if lowered in {"-", "–", "negative", "neg", "no", "n", "false", "0"}:
                return cls.NEGATIVE
        raise InconsistentLabelError(f"cannot interpret {value!r} as a label")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Example:
    """A labeled candidate tuple."""

    tuple_id: int
    label: Label

    @property
    def is_positive(self) -> bool:
        """Whether the example is positive."""
        return self.label.is_positive


class ExampleSet:
    """The labels collected so far, keyed by tuple id.

    Relabeling a tuple with the same label is a no-op; relabeling it with the
    opposite label raises :class:`~repro.exceptions.InconsistentLabelError`
    (the paper assumes a consistent user — noisy users are modelled at the
    oracle level instead).
    """

    def __init__(self, labels: Mapping[int, Label] | None = None) -> None:
        self._labels: dict[int, Label] = dict(labels) if labels else {}

    def add(self, tuple_id: int, label: Label) -> None:
        """Record a label for a tuple."""
        existing = self._labels.get(tuple_id)
        if existing is not None and existing is not label:
            raise InconsistentLabelError(
                f"tuple {tuple_id} was already labeled {existing.value!r}; "
                f"cannot relabel it {label.value!r}"
            )
        self._labels[tuple_id] = label

    def label_of(self, tuple_id: int) -> Label | None:
        """The label of a tuple, or ``None`` when unlabeled."""
        return self._labels.get(tuple_id)

    @property
    def positives(self) -> frozenset[int]:
        """Ids of positively labeled tuples."""
        return frozenset(tid for tid, label in self._labels.items() if label.is_positive)

    @property
    def negatives(self) -> frozenset[int]:
        """Ids of negatively labeled tuples."""
        return frozenset(tid for tid, label in self._labels.items() if label.is_negative)

    @property
    def labeled_ids(self) -> frozenset[int]:
        """Ids of all labeled tuples."""
        return frozenset(self._labels)

    def examples(self) -> tuple[Example, ...]:
        """All examples, in insertion order."""
        return tuple(Example(tid, label) for tid, label in self._labels.items())

    def as_dict(self) -> dict[int, Label]:
        """A copy of the underlying mapping."""
        return dict(self._labels)

    def copy(self) -> ExampleSet:
        """An independent copy of the example set."""
        return ExampleSet(self._labels)

    def __contains__(self, tuple_id: int) -> bool:
        return tuple_id in self._labels

    def __iter__(self) -> Iterator[Example]:
        return iter(self.examples())

    def __len__(self) -> int:
        return len(self._labels)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExampleSet):
            return NotImplemented
        return self._labels == other.as_dict()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ExampleSet(positives={len(self.positives)}, negatives={len(self.negatives)})"
