"""The space of join queries consistent with the examples.

Given positive examples ``P`` and negative examples ``N`` over a candidate
table, a query θ is *consistent* when it selects every positive and no
negative example.  With ``M = ⋂_{p∈P} E(p)`` (``M = Ω`` when ``P`` is empty)
the consistent queries are exactly

    ``C = { θ ⊆ M  :  ∀ n ∈ N, θ ⊄ E(n) }``

The class below maintains ``M`` and the negative equality types and answers
the three questions the interactive scenario needs after every label:

* is the example set still consistent? (``∀n: M ⊄ E(n)``)
* does *some* consistent query select a given tuple ``t``?
  (``∀n: M ∩ E(t) ⊄ E(n)``)
* does *some* consistent query reject ``t``? (``M ⊄ E(t)``)

All checks are O(|N|) bitmask operations.  The canonical consistent query is
``M`` itself — the most specific one — and it is what JIM returns once every
remaining consistent query is instance-equivalent to it.

**Delta updates.**  Because one label only ever touches the representation in
one of two ways — a positive example ANDs its equality type into ``M``, a
negative example appends its equality type to the negative list — the space
never needs to be rebuilt from the full example set after a label.
:meth:`ConsistentQuerySpace.with_label` applies exactly that delta in
O(|N|) instead of re-scanning every example, which is what makes the
interactive loop's per-step cost independent of the number of labels already
given (see :mod:`repro.core.state` for the companion status cache).
"""

from __future__ import annotations

from collections.abc import Iterator

from .atoms import AtomUniverse, is_subset
from .equality_types import EqualityTypeIndex
from .examples import ExampleSet
from .queries import JoinQuery


class ConsistentQuerySpace:
    """The set of join queries consistent with an example set.

    The space is represented implicitly by the pair ``(M, {E(n)}_{n∈N})``;
    explicit enumeration (:meth:`consistent_query_masks`) is only used by the
    optimal strategy and by tests, on small universes.
    """

    def __init__(self, type_index: EqualityTypeIndex, examples: ExampleSet | None = None) -> None:
        self.type_index = type_index
        self.universe: AtomUniverse = type_index.universe
        self.examples = examples if examples is not None else ExampleSet()
        self._positive_mask = self.universe.full_mask
        self._negative_masks: list[int] = []
        for example in self.examples:
            mask = type_index.mask(example.tuple_id)
            if example.label.is_positive:
                self._positive_mask &= mask
            else:
                self._negative_masks.append(mask)

    # ------------------------------------------------------------------ #
    # The implicit representation
    # ------------------------------------------------------------------ #
    @property
    def positive_mask(self) -> int:
        """``M`` — the intersection of the positive examples' equality types."""
        return self._positive_mask

    @property
    def negative_masks(self) -> tuple[int, ...]:
        """The equality types of the negative examples."""
        return tuple(self._negative_masks)

    def canonical_query(self) -> JoinQuery:
        """The most specific consistent query (``M`` decoded into atoms)."""
        return JoinQuery.from_mask(self.universe, self._positive_mask)

    # ------------------------------------------------------------------ #
    # Membership / existence tests
    # ------------------------------------------------------------------ #
    def is_consistent(self) -> bool:
        """Whether at least one query is consistent with the examples."""
        return all(not is_subset(self._positive_mask, neg) for neg in self._negative_masks)

    def admits(self, query: JoinQuery) -> bool:
        """Whether ``query`` is consistent with the examples."""
        return self.admits_mask(query.mask(self.universe))

    def admits_mask(self, query_mask: int) -> bool:
        """Whether the query encoded by ``query_mask`` is consistent."""
        if not is_subset(query_mask, self._positive_mask):
            return False
        return all(not is_subset(query_mask, neg) for neg in self._negative_masks)

    def exists_selecting(self, type_mask: int) -> bool:
        """Whether some consistent query selects a tuple of equality type ``type_mask``.

        A consistent query selecting such a tuple must be a subset of
        ``M ∩ E(t)``; since smaller queries select at least as much, it exists
        exactly when ``M ∩ E(t)`` itself avoids every negative type.
        """
        restricted = self._positive_mask & type_mask
        return all(not is_subset(restricted, neg) for neg in self._negative_masks)

    def exists_rejecting(self, type_mask: int) -> bool:
        """Whether some consistent query rejects a tuple of equality type ``type_mask``.

        ``M`` is the most restrictive consistent query, so a rejecting one
        exists exactly when ``M`` itself is not included in ``E(t)``.
        """
        return not is_subset(self._positive_mask, type_mask)

    def certain_label_for(self, type_mask: int) -> bool | None:
        """The implied label of a tuple with the given type, if any.

        Returns ``True`` when every consistent query selects it, ``False``
        when none does, and ``None`` when consistent queries disagree (the
        tuple is informative).
        """
        if not self.exists_rejecting(type_mask):
            return True
        if not self.exists_selecting(type_mask):
            return False
        return None

    # ------------------------------------------------------------------ #
    # Updates (functional: each returns a new space)
    # ------------------------------------------------------------------ #
    def with_label(self, tuple_id: int, positive: bool) -> ConsistentQuerySpace:
        """A new space with one extra example (the example set is copied).

        The update is a *delta*: the new space reuses the current ``M`` and
        negative types and folds in only the new example's equality type —
        O(|N|) instead of re-scanning the whole example set.
        """
        from .examples import Label

        already_labeled = self.examples.label_of(tuple_id) is not None
        updated = self.examples.copy()
        updated.add(tuple_id, Label.POSITIVE if positive else Label.NEGATIVE)
        return self._delta(updated, tuple_id, positive, already_labeled)

    def _delta(
        self,
        examples: ExampleSet,
        tuple_id: int,
        positive: bool,
        already_labeled: bool,
    ) -> ConsistentQuerySpace:
        """The space for ``examples`` = this space's examples + one label.

        ``examples`` must extend this space's example set by exactly the
        ``(tuple_id, positive)`` label (``already_labeled`` flags the no-op
        relabeling case, where the representation is unchanged).  Used by
        :meth:`with_label` and by :class:`~repro.core.state.InferenceState`,
        which shares its live example set with the space it holds.
        """
        clone = ConsistentQuerySpace.__new__(ConsistentQuerySpace)
        clone.type_index = self.type_index
        clone.universe = self.universe
        clone.examples = examples
        mask = self.type_index.mask(tuple_id)
        if positive:
            clone._positive_mask = self._positive_mask & mask
            clone._negative_masks = list(self._negative_masks)
        else:
            clone._positive_mask = self._positive_mask
            clone._negative_masks = list(self._negative_masks)
            if not already_labeled:
                clone._negative_masks.append(mask)
        return clone

    def _clone_with_examples(self, examples: ExampleSet) -> ConsistentQuerySpace:
        """A copy of this space bound to ``examples`` (which must be equal).

        Copy-on-write support for :meth:`InferenceState.copy`: the masks are
        reused verbatim instead of being rebuilt from the example set.
        """
        clone = ConsistentQuerySpace.__new__(ConsistentQuerySpace)
        clone.type_index = self.type_index
        clone.universe = self.universe
        clone.examples = examples
        clone._positive_mask = self._positive_mask
        clone._negative_masks = list(self._negative_masks)
        return clone

    # ------------------------------------------------------------------ #
    # Explicit enumeration (small universes only)
    # ------------------------------------------------------------------ #
    def consistent_query_masks(self, limit: int | None = None) -> Iterator[int]:
        """Enumerate the bitmasks of consistent queries (subsets of ``M``).

        The number of subsets of ``M`` is ``2^{|M|}``; callers must only use
        this on small universes (the optimal strategy and the test-suite do).
        ``limit`` bounds the number of yielded masks.
        """
        atoms_in_m = [pos for pos in range(self.universe.size) if self._positive_mask >> pos & 1]
        yielded = 0
        for subset_id in range(1 << len(atoms_in_m)):
            mask = 0
            for bit, pos in enumerate(atoms_in_m):
                if subset_id >> bit & 1:
                    mask |= 1 << pos
            if self.admits_mask(mask):
                yield mask
                yielded += 1
                if limit is not None and yielded >= limit:
                    return

    def count_consistent_queries(self, limit: int | None = None) -> int:
        """Number of consistent queries (possibly truncated by ``limit``)."""
        return sum(1 for _ in self.consistent_query_masks(limit))

    def consistent_queries(self, limit: int | None = None) -> list[JoinQuery]:
        """The consistent queries as :class:`JoinQuery` objects (small universes)."""
        return [
            JoinQuery.from_mask(self.universe, mask)
            for mask in self.consistent_query_masks(limit)
        ]

    def all_consistent_agree_everywhere(self) -> bool:
        """Whether every consistent query selects exactly the same tuples.

        This is the instance-equivalence convergence criterion, checked
        without enumerating queries: consistent queries all agree on the
        instance iff no tuple is informative.
        """
        return all(
            self.certain_label_for(mask) is not None for mask in self.type_index.distinct_masks
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ConsistentQuerySpace(M={self.universe.describe_mask(self._positive_mask)!r}, "
            f"negatives={len(self._negative_masks)})"
        )
