"""Join queries: conjunctions of equality atoms.

A :class:`JoinQuery` is the object JIM infers — the n-ary equi-join predicate
θ the user "has in mind".  Semantically a query is a set of equality atoms
interpreted conjunctively over the candidate table: θ selects tuple ``t`` iff
every atom of θ holds on ``t`` (equivalently ``θ ⊆ E(t)``).

Besides evaluation the module implements the notions the paper relies on:

* **containment / implication** — ``Q2 ⊆ Q1`` as result sets; in the paper's
  example Q2 (``To ≍ City ∧ Airline ≍ Discount``) is contained in Q1
  (``To ≍ City``), which is why positive examples alone cannot distinguish
  them and negative examples are necessary;
* **instance-equivalence** — two queries selecting exactly the same tuples of
  a given candidate table; inference stops when all consistent queries are
  instance-equivalent;
* **closure / normalisation** — equality atoms are transitive, so syntactically
  different queries can be logically equivalent.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import TYPE_CHECKING

from ..relational import columnar
from ..relational.candidate import CandidateTable
from .atoms import AtomUniverse, EqualityAtom

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    pass

AtomLike = EqualityAtom | tuple[str, str]


def _as_atom(value: AtomLike) -> EqualityAtom:
    if isinstance(value, EqualityAtom):
        return value
    left, right = value
    return EqualityAtom.of(left, right)


class JoinQuery:
    """An equi-join predicate: a finite set of equality atoms, conjunctively.

    Instances are immutable and hashable; the empty query (no atoms) selects
    every tuple.
    """

    __slots__ = ("_atoms",)

    def __init__(self, atoms: Iterable[AtomLike] = ()) -> None:
        self._atoms: frozenset[EqualityAtom] = frozenset(_as_atom(atom) for atom in atoms)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def of(cls, *atoms: AtomLike) -> JoinQuery:
        """Build a query from atoms or ``(left, right)`` attribute pairs."""
        return cls(atoms)

    @classmethod
    def empty(cls) -> JoinQuery:
        """The query with no atoms (selects every tuple)."""
        return cls()

    @classmethod
    def from_mask(cls, universe: AtomUniverse, mask: int) -> JoinQuery:
        """Decode a bitmask over ``universe`` into a query."""
        return cls(universe.atoms_of(mask))

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def atoms(self) -> frozenset[EqualityAtom]:
        """The atoms of the query."""
        return self._atoms

    @property
    def is_empty(self) -> bool:
        """Whether the query has no atoms (and thus selects everything)."""
        return not self._atoms

    def attributes(self) -> frozenset[str]:
        """All attribute names mentioned by the query."""
        return frozenset(name for atom in self._atoms for name in atom.attributes)

    def mask(self, universe: AtomUniverse) -> int:
        """Encode the query as a bitmask over ``universe``."""
        return universe.mask_of(self._atoms)

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def selects_row(self, row: Sequence[object], position_of: dict[str, int]) -> bool:
        """Whether every atom of the query holds on the given row."""
        return all(atom.holds_on(row, position_of) for atom in self._atoms)

    def selects(self, table: CandidateTable, tuple_id: int) -> bool:
        """Whether the query selects the tuple with the given id."""
        position_of = {name: pos for pos, name in enumerate(table.attribute_names)}
        return self.selects_row(table.row(tuple_id), position_of)

    def _factorized_match(self, table: CandidateTable):
        """``(grouping, pairs)`` for factorized evaluation, or ``None``.

        Applicable when the table is an unsampled cross product whose cells
        can be value-interned; the query is then evaluated once per
        combination of base-relation groups instead of once per candidate.
        """
        factorization = table.factorization()
        if factorization is None:
            return None
        position_of = {name: pos for pos, name in enumerate(table.attribute_names)}
        pairs = [
            (position_of[atom.left], position_of[atom.right]) for atom in sorted(self._atoms)
        ]
        used = sorted({position for pair in pairs for position in pair})
        try:
            grouping = table.factor_grouping(used)
        except columnar.UnencodableValue:
            return None
        return grouping, pairs

    def evaluate(self, table: CandidateTable) -> frozenset[int]:
        """The set of tuple ids of ``table`` selected by the query."""
        match = self._factorized_match(table)
        if match is not None:
            grouping, pairs = match
            full = (1 << len(pairs)) - 1
            selected: list[int] = []
            for combo, mask, _ in columnar.combo_equalities(grouping, pairs):
                if mask == full:
                    selected.extend(grouping.ids_of_combo(combo))
            return frozenset(selected)
        position_of = {name: pos for pos, name in enumerate(table.attribute_names)}
        # Streamed iteration: the fallback must not force a factorized table
        # (e.g. one with unhashable cells) to materialise its flat rows.
        return frozenset(
            tuple_id
            for tuple_id, row in enumerate(table)
            if self.selects_row(row, position_of)
        )

    def count_selected(self, table: CandidateTable) -> int:
        """Number of tuples selected — without enumerating them when factorized.

        On an unsampled cross product the count is the sum of the group-
        cardinality products of the matching group combinations, so it is
        independent of the candidate-table size.
        """
        match = self._factorized_match(table)
        if match is not None:
            grouping, pairs = match
            full = (1 << len(pairs)) - 1
            return sum(
                count
                for _, mask, count in columnar.combo_equalities(grouping, pairs)
                if mask == full
            )
        return len(self.evaluate(table))

    def selectivity(self, table: CandidateTable) -> float:
        """Fraction of candidate tuples selected (0.0 for an empty table)."""
        if len(table) == 0:
            return 0.0
        return self.count_selected(table) / len(table)

    # ------------------------------------------------------------------ #
    # Logical structure
    # ------------------------------------------------------------------ #
    def equivalence_classes(self) -> list[frozenset[str]]:
        """Partition of the mentioned attributes into classes forced equal."""
        parent: dict[str, str] = {}

        def find(node: str) -> str:
            while parent[node] != node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node

        for atom in self._atoms:
            for name in atom.attributes:
                parent.setdefault(name, name)
            left_root, right_root = find(atom.left), find(atom.right)
            if left_root != right_root:
                parent[left_root] = right_root
        classes: dict[str, set[str]] = {}
        for name in parent:
            classes.setdefault(find(name), set()).add(name)
        return [frozenset(members) for members in classes.values()]

    def closure(self, universe: AtomUniverse | None = None) -> JoinQuery:
        """All atoms implied by the query through transitivity of equality.

        Without a universe the closure contains every pair of attributes in
        the same equivalence class; with a universe it is intersected with the
        universe's atoms (the relevant notion when comparing against tuple
        equality types, which are themselves universe-restricted).
        """
        implied = set()
        for members in self.equivalence_classes():
            ordered = sorted(members)
            for i, left in enumerate(ordered):
                for right in ordered[i + 1 :]:
                    atom = EqualityAtom.of(left, right)
                    if universe is None or atom in universe:
                        implied.add(atom)
        return JoinQuery(implied)

    def implies(self, other: JoinQuery) -> bool:
        """Whether every atom of ``other`` is a logical consequence of this query.

        If ``self.implies(other)`` then every tuple selected by ``self`` is
        selected by ``other`` on every instance (``self`` is the more
        restrictive query).
        """
        return other.atoms <= self.closure().atoms

    def is_equivalent_to(self, other: JoinQuery) -> bool:
        """Logical equivalence: each query implies the other."""
        return self.implies(other) and other.implies(self)

    def instance_equivalent(self, other: JoinQuery, table: CandidateTable) -> bool:
        """Whether both queries select exactly the same tuples of ``table``."""
        return self.evaluate(table) == other.evaluate(table)

    def normalized(self) -> JoinQuery:
        """A canonical, minimal form: a spanning set of atoms per equivalence class.

        Two logically equivalent queries normalise to the same query.
        """
        atoms = []
        for members in self.equivalence_classes():
            ordered = sorted(members)
            first = ordered[0]
            atoms.extend(EqualityAtom.of(first, other) for other in ordered[1:])
        return JoinQuery(atoms)

    # ------------------------------------------------------------------ #
    # Set-like operations
    # ------------------------------------------------------------------ #
    def union(self, other: JoinQuery) -> JoinQuery:
        """The conjunction of both queries (union of their atom sets)."""
        return JoinQuery(self._atoms | other.atoms)

    def intersection(self, other: JoinQuery) -> JoinQuery:
        """The query made of the atoms common to both."""
        return JoinQuery(self._atoms & other.atoms)

    def without(self, other: JoinQuery) -> JoinQuery:
        """The query made of this query's atoms not present in ``other``."""
        return JoinQuery(self._atoms - other.atoms)

    __or__ = union
    __and__ = intersection
    __sub__ = without

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def to_sql(self, table: CandidateTable, flat: bool = False) -> str:
        """Render the query as SQL (relational form or flat candidate-table form)."""
        from ..relational.sql import render_flat_sql, render_join_sql

        if flat or not table.has_provenance():
            return render_flat_sql(self, table)
        return render_join_sql(self, table)

    def describe(self) -> str:
        """Human-readable conjunction, e.g. ``"Airline ≍ Discount ∧ To ≍ City"``."""
        if not self._atoms:
            return "⊤ (no equality required)"
        return " ∧ ".join(str(atom) for atom in sorted(self._atoms))

    # ------------------------------------------------------------------ #
    # Dunder plumbing
    # ------------------------------------------------------------------ #
    def __contains__(self, atom: AtomLike) -> bool:
        return _as_atom(atom) in self._atoms

    def __iter__(self) -> Iterator[EqualityAtom]:
        return iter(sorted(self._atoms))

    def __len__(self) -> int:
        return len(self._atoms)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JoinQuery):
            return NotImplemented
        return self._atoms == other.atoms

    def __hash__(self) -> int:
        return hash(self._atoms)

    def __le__(self, other: JoinQuery) -> bool:
        """Syntactic subset of atoms (NOT semantic containment)."""
        return self._atoms <= other.atoms

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"JoinQuery({self.describe()})"
