"""Classifying candidate tuples: informative, certain, or already labeled.

After each answered membership query JIM partitions the unlabeled candidate
tuples into

* **informative** tuples — consistent queries disagree on them, so labeling
  one of them narrows the space; these are the only tuples worth asking about;
* **certain-positive** tuples — every consistent query selects them; their
  label is implied, so they are "grayed out";
* **certain-negative** tuples — no consistent query selects them; likewise
  grayed out.

The classification of a tuple depends only on its equality type, the positive
mask ``M`` and the negative types (see :mod:`repro.core.space`), so all the
functions here work type-wise and are linear in the number of distinct types.
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional

from .examples import ExampleSet, Label
from .space import ConsistentQuerySpace


class TupleStatus(enum.Enum):
    """The status of one candidate tuple with respect to the current examples."""

    LABELED_POSITIVE = "labeled+"
    LABELED_NEGATIVE = "labeled-"
    CERTAIN_POSITIVE = "certain+"
    CERTAIN_NEGATIVE = "certain-"
    INFORMATIVE = "informative"

    @property
    def is_labeled(self) -> bool:
        """Whether the tuple was explicitly labeled by the user."""
        return self in (TupleStatus.LABELED_POSITIVE, TupleStatus.LABELED_NEGATIVE)

    @property
    def is_certain(self) -> bool:
        """Whether the tuple's label is implied but was not given by the user."""
        return self in (TupleStatus.CERTAIN_POSITIVE, TupleStatus.CERTAIN_NEGATIVE)

    @property
    def is_uninformative(self) -> bool:
        """Whether labeling the tuple would bring no new information.

        Both explicitly labeled tuples and certain tuples are uninformative;
        only :attr:`INFORMATIVE` tuples are worth presenting to the user.
        """
        return self is not TupleStatus.INFORMATIVE

    @property
    def implied_label(self) -> Optional[Label]:
        """The label the status implies, when there is one."""
        if self in (TupleStatus.LABELED_POSITIVE, TupleStatus.CERTAIN_POSITIVE):
            return Label.POSITIVE
        if self in (TupleStatus.LABELED_NEGATIVE, TupleStatus.CERTAIN_NEGATIVE):
            return Label.NEGATIVE
        return None


def classify_tuple(
    space: ConsistentQuerySpace,
    examples: ExampleSet,
    tuple_id: int,
) -> TupleStatus:
    """Status of a single tuple under the current examples."""
    label = examples.label_of(tuple_id)
    if label is Label.POSITIVE:
        return TupleStatus.LABELED_POSITIVE
    if label is Label.NEGATIVE:
        return TupleStatus.LABELED_NEGATIVE
    certain = space.certain_label_for(space.type_index.mask(tuple_id))
    if certain is True:
        return TupleStatus.CERTAIN_POSITIVE
    if certain is False:
        return TupleStatus.CERTAIN_NEGATIVE
    return TupleStatus.INFORMATIVE


def classify_all(
    space: ConsistentQuerySpace,
    examples: ExampleSet,
    tuple_ids: Optional[Iterable[int]] = None,
) -> dict[int, TupleStatus]:
    """Status of every tuple (or of the given ids), computed type-wise.

    The per-type certain label is computed once per distinct equality type,
    so the cost is O(#distinct types × #negatives) plus O(#tuples).
    """
    type_index = space.type_index
    ids = list(tuple_ids) if tuple_ids is not None else list(range(len(type_index)))
    certain_by_type: dict[int, Optional[bool]] = {}
    statuses: dict[int, TupleStatus] = {}
    for tuple_id in ids:
        label = examples.label_of(tuple_id)
        if label is Label.POSITIVE:
            statuses[tuple_id] = TupleStatus.LABELED_POSITIVE
            continue
        if label is Label.NEGATIVE:
            statuses[tuple_id] = TupleStatus.LABELED_NEGATIVE
            continue
        mask = type_index.mask(tuple_id)
        if mask not in certain_by_type:
            certain_by_type[mask] = space.certain_label_for(mask)
        certain = certain_by_type[mask]
        if certain is True:
            statuses[tuple_id] = TupleStatus.CERTAIN_POSITIVE
        elif certain is False:
            statuses[tuple_id] = TupleStatus.CERTAIN_NEGATIVE
        else:
            statuses[tuple_id] = TupleStatus.INFORMATIVE
    return statuses


def informative_ids(space: ConsistentQuerySpace, examples: ExampleSet) -> list[int]:
    """Ids of the informative tuples, in tuple-id order."""
    return [
        tuple_id
        for tuple_id, status in classify_all(space, examples).items()
        if status is TupleStatus.INFORMATIVE
    ]


def uninformative_ids(space: ConsistentQuerySpace, examples: ExampleSet) -> list[int]:
    """Ids of the unlabeled tuples whose label is already implied (grayed out)."""
    return [
        tuple_id
        for tuple_id, status in classify_all(space, examples).items()
        if status.is_certain
    ]


def has_informative_tuple(space: ConsistentQuerySpace, examples: ExampleSet) -> bool:
    """Whether at least one informative tuple remains (the loop's guard)."""
    type_index = space.type_index
    labeled = examples.labeled_ids
    for mask in type_index.distinct_masks:
        if space.certain_label_for(mask) is not None:
            continue
        if any(tuple_id not in labeled for tuple_id in type_index.tuples_with_mask(mask)):
            return True
    return False
