"""Classifying candidate tuples: informative, certain, or already labeled.

After each answered membership query JIM partitions the unlabeled candidate
tuples into

* **informative** tuples — consistent queries disagree on them, so labeling
  one of them narrows the space; these are the only tuples worth asking about;
* **certain-positive** tuples — every consistent query selects them; their
  label is implied, so they are "grayed out";
* **certain-negative** tuples — no consistent query selects them; likewise
  grayed out.

The classification of a tuple depends only on its equality type, the positive
mask ``M`` and the negative types (see :mod:`repro.core.space`), so all the
functions here work type-wise and are linear in the number of distinct types.

**Incremental classification.**  :class:`TypeStatusCache` memoises the
per-type certain label and the per-type count of unlabeled tuples, and
refreshes them with a *delta* after each label instead of re-deriving them
from scratch.  The invalidation rule exploits a monotonicity invariant of the
consistent space: while the example set stays consistent, a label only ever
shrinks ``M`` and grows the negative list, so a type that is already certain
can never become informative again (and never flips between certain-positive
and certain-negative).  After a label it therefore suffices to re-evaluate the
currently *informative* types; when the example set has become inconsistent
(non-strict mode) the invariant no longer holds and the cache falls back to a
full per-type recomputation.  The cache is the single source of truth for the
interactive loop's guard (:func:`has_informative_tuple` and
:meth:`InferenceState.has_informative_tuple` are both driven by it).
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator, Sequence

from .equality_types import EqualityTypeIndex
from .examples import ExampleSet, Label
from .kernels import UNKNOWN, TypeTable, certain_codes, make_type_table
from .space import ConsistentQuerySpace


class TupleStatus(enum.Enum):
    """The status of one candidate tuple with respect to the current examples."""

    LABELED_POSITIVE = "labeled+"
    LABELED_NEGATIVE = "labeled-"
    CERTAIN_POSITIVE = "certain+"
    CERTAIN_NEGATIVE = "certain-"
    INFORMATIVE = "informative"

    @property
    def is_labeled(self) -> bool:
        """Whether the tuple was explicitly labeled by the user."""
        return self in (TupleStatus.LABELED_POSITIVE, TupleStatus.LABELED_NEGATIVE)

    @property
    def is_certain(self) -> bool:
        """Whether the tuple's label is implied but was not given by the user."""
        return self in (TupleStatus.CERTAIN_POSITIVE, TupleStatus.CERTAIN_NEGATIVE)

    @property
    def is_uninformative(self) -> bool:
        """Whether labeling the tuple would bring no new information.

        Both explicitly labeled tuples and certain tuples are uninformative;
        only :attr:`INFORMATIVE` tuples are worth presenting to the user.
        """
        return self is not TupleStatus.INFORMATIVE

    @property
    def implied_label(self) -> Label | None:
        """The label the status implies, when there is one."""
        if self in (TupleStatus.LABELED_POSITIVE, TupleStatus.CERTAIN_POSITIVE):
            return Label.POSITIVE
        if self in (TupleStatus.LABELED_NEGATIVE, TupleStatus.CERTAIN_NEGATIVE):
            return Label.NEGATIVE
        return None


def classify_tuple(
    space: ConsistentQuerySpace,
    examples: ExampleSet,
    tuple_id: int,
) -> TupleStatus:
    """Status of a single tuple under the current examples."""
    label = examples.label_of(tuple_id)
    if label is Label.POSITIVE:
        return TupleStatus.LABELED_POSITIVE
    if label is Label.NEGATIVE:
        return TupleStatus.LABELED_NEGATIVE
    certain = space.certain_label_for(space.type_index.mask(tuple_id))
    if certain is True:
        return TupleStatus.CERTAIN_POSITIVE
    if certain is False:
        return TupleStatus.CERTAIN_NEGATIVE
    return TupleStatus.INFORMATIVE


def classify_all(
    space: ConsistentQuerySpace,
    examples: ExampleSet,
    tuple_ids: Iterable[int] | None = None,
) -> dict[int, TupleStatus]:
    """Status of every tuple (or of the given ids), computed type-wise.

    The per-type certain label is computed once per distinct equality type,
    so the cost is O(#distinct types × #negatives) plus O(#tuples).
    """
    type_index = space.type_index
    if tuple_ids is not None:
        pairs = ((tuple_id, type_index.mask(tuple_id)) for tuple_id in tuple_ids)
    else:
        # Full sweep: stream the masks in tuple_id order — cheaper than a
        # per-id decode on factorized tables, without caching an O(#tuples)
        # materialisation on the index.
        pairs = zip(range(len(type_index)), type_index.iter_masks(), strict=True)
    certain_by_type: dict[int, bool | None] = {}
    statuses: dict[int, TupleStatus] = {}
    for tuple_id, mask in pairs:
        label = examples.label_of(tuple_id)
        if label is Label.POSITIVE:
            statuses[tuple_id] = TupleStatus.LABELED_POSITIVE
            continue
        if label is Label.NEGATIVE:
            statuses[tuple_id] = TupleStatus.LABELED_NEGATIVE
            continue
        if mask not in certain_by_type:
            certain_by_type[mask] = space.certain_label_for(mask)
        certain = certain_by_type[mask]
        if certain is True:
            statuses[tuple_id] = TupleStatus.CERTAIN_POSITIVE
        elif certain is False:
            statuses[tuple_id] = TupleStatus.CERTAIN_NEGATIVE
        else:
            statuses[tuple_id] = TupleStatus.INFORMATIVE
    return statuses


class TypeStatusCache:
    """Per-equality-type statuses, kept up to date by deltas.

    For every distinct equality type of the table the cache holds

    * the *certain label* the consistent space implies for the type
      (``True`` / ``False`` / ``None`` when consistent queries disagree), and
    * the number of *unlabeled* tuples of that type.

    A type is *informative* exactly when its certain label is ``None`` and it
    still has unlabeled tuples.  The state lives in an array-backed
    :class:`~repro.core.kernels.TypeTable` (numpy fast path, pure-Python
    fallback): :meth:`apply_label` refreshes all stale rows in one vectorized
    pass — certain types are never re-evaluated while the example set stays
    consistent (see the module docstring for why that is sound) — and
    :meth:`copy` is an O(1) copy-on-write of the column arrays, which makes
    cloning an inference state for lookahead simulation cheap.
    """

    def __init__(self, space: ConsistentQuerySpace, examples: ExampleSet) -> None:
        type_index = space.type_index
        masks = type_index.distinct_masks
        sizes = type_index.type_sizes()
        # Type-level: start from the cached type sizes and subtract the
        # (few) labeled tuples, instead of enumerating every tuple per type.
        self._table = make_type_table(masks, [sizes[mask] for mask in masks])
        self._table.refresh_certain(space.positive_mask, space.negative_masks)
        for tuple_id in examples.labeled_ids:
            self._table.decrement_unlabeled(type_index.mask(tuple_id))

    @property
    def kernel_table(self) -> TypeTable:
        """The underlying array-backed table (introspection/tests)."""
        return self._table

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def certain_label_for(self, type_mask: int) -> bool | None:
        """The memoised certain label of a type (``None`` = informative)."""
        return self._table.certain_of(type_mask)

    def unlabeled_count(self, type_mask: int) -> int:
        """Number of unlabeled tuples of the type."""
        return self._table.unlabeled_of(type_mask)

    def informative_types(self) -> Iterator[tuple[int, int]]:
        """``(type_mask, unlabeled_count)`` for every informative type."""
        return iter(self._table.informative_items())

    def informative_count(self) -> int:
        """Number of informative tuples (unlabeled tuples of informative types)."""
        return self._table.informative_count()

    def has_informative(self) -> bool:
        """Whether at least one informative tuple remains (the loop's guard)."""
        return self._table.has_informative()

    def prune_counts_for_restricted(
        self,
        restricted_masks: Sequence[int],
        positive_mask: int,
        negative_masks: Sequence[int],
    ) -> list[tuple[int, int]]:
        """Prune counts per restricted candidate type, via the table kernel.

        Delegates to :meth:`TypeTable.prune_counts_informative
        <repro.core.kernels._BaseTypeTable.prune_counts_informative>`, so a
        sharded table fans the evaluation across the worker pool while flat
        tables run the single batched kernel — callers (the strategies, via
        :class:`~repro.core.state.InferenceState`) never know the difference.
        """
        return self._table.prune_counts_informative(
            restricted_masks, positive_mask, negative_masks
        )

    @classmethod
    def scan_has_informative(
        cls, space: ConsistentQuerySpace, examples: ExampleSet
    ) -> bool:
        """One-shot loop-guard check, stopping at the first informative type.

        For callers without a long-lived cache: answers the same question as
        :meth:`has_informative` without materialising per-type state.  The
        per-type certain labels come from the batch
        :func:`~repro.core.kernels.certain_codes` kernel; its pure-Python
        path is lazy, so the scan still stops at the first informative type.
        """
        type_index = space.type_index
        labeled_per_type: dict[int, int] = {}
        for tuple_id in examples.labeled_ids:
            mask = type_index.mask(tuple_id)
            labeled_per_type[mask] = labeled_per_type.get(mask, 0) + 1
        sizes = type_index.type_sizes()
        masks = type_index.distinct_masks
        codes = certain_codes(masks, space.positive_mask, space.negative_masks)
        for mask, code in zip(masks, codes, strict=True):
            if code == UNKNOWN and sizes[mask] > labeled_per_type.get(mask, 0):
                return True
        return False

    # ------------------------------------------------------------------ #
    # Delta maintenance
    # ------------------------------------------------------------------ #
    def apply_label(
        self,
        space: ConsistentQuerySpace,
        tuple_id: int,
        newly_labeled: bool,
        consistent: bool = True,
    ) -> tuple[list[int], list[int]]:
        """Refresh the cache after one label against the post-label ``space``.

        Returns ``(types_now_certain_positive, types_now_certain_negative)``
        — the types that were informative before the label and are certain
        after it, which is exactly what a
        :class:`~repro.core.propagation.PropagationResult` needs.  The
        refresh is one vectorized pass over the stale rows; when the example
        set has become inconsistent the monotonicity invariant no longer
        holds and every row is re-evaluated.
        """
        if newly_labeled:
            self._table.decrement_unlabeled(space.type_index.mask(tuple_id))
        return self._table.refresh_certain(
            space.positive_mask, space.negative_masks, only_unknown=consistent
        )

    def copy(self) -> TypeStatusCache:
        """An independent copy (O(1) copy-on-write of the column arrays)."""
        clone = TypeStatusCache.__new__(TypeStatusCache)
        clone._table = self._table.copy()
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        informative = len(self._table.informative_items())
        return f"TypeStatusCache(types={len(self._table)}, informative_types={informative})"


def unlabeled_ids_of_types(
    type_index: EqualityTypeIndex,
    type_masks: Iterable[int],
    labeled_ids: frozenset[int],
) -> list[int]:
    """The unlabeled tuple ids of the given equality types, ascending.

    The shared materialisation step of :meth:`InferenceState.informative_ids
    <repro.core.state.InferenceState.informative_ids>` and
    :func:`~repro.core.propagation.delta_result`: per-type id lists come from
    the (possibly factorized, numpy-accelerated) index and are merged here.
    """
    ids = [
        tuple_id
        for mask in type_masks
        for tuple_id in type_index.tuples_with_mask(mask)
        if tuple_id not in labeled_ids
    ]
    ids.sort()
    return ids


def informative_ids(space: ConsistentQuerySpace, examples: ExampleSet) -> list[int]:
    """Ids of the informative tuples, in tuple-id order."""
    return [
        tuple_id
        for tuple_id, status in classify_all(space, examples).items()
        if status is TupleStatus.INFORMATIVE
    ]


def uninformative_ids(space: ConsistentQuerySpace, examples: ExampleSet) -> list[int]:
    """Ids of the unlabeled tuples whose label is already implied (grayed out)."""
    return [
        tuple_id
        for tuple_id, status in classify_all(space, examples).items()
        if status.is_certain
    ]


def has_informative_tuple(space: ConsistentQuerySpace, examples: ExampleSet) -> bool:
    """Whether at least one informative tuple remains (the loop's guard).

    Single source of truth for the guard: both this function and
    :meth:`InferenceState.has_informative_tuple` answer it through
    :class:`TypeStatusCache` — the state through its long-lived incremental
    cache, this convenience wrapper through the early-exit
    :meth:`TypeStatusCache.scan_has_informative`.
    """
    return TypeStatusCache.scan_has_informative(space, examples)
