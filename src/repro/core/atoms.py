"""Equality atoms and the atom universe.

A join predicate in JIM is a conjunction of *equality atoms* ``A ≍ B`` between
attributes of the candidate table.  The :class:`AtomUniverse` fixes, for a
given candidate table, the set Ω of candidate atoms the inferred query may use
(by default every type-compatible pair of attributes coming from different
base relations) and provides a compact bitmask encoding of atom sets: the
whole inference core manipulates subsets of Ω as Python integers, which makes
the subset checks at the heart of informativeness reasoning cheap.
"""

from __future__ import annotations

import enum
import itertools
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from ..exceptions import AtomUniverseError
from ..relational.candidate import CandidateTable
from ..relational.types import are_compatible


@dataclass(frozen=True, order=True)
class EqualityAtom:
    """An equality atom ``left ≍ right`` between two attributes.

    Atoms are normalised so that ``left < right`` lexicographically; two atoms
    relating the same attributes therefore always compare equal.
    """

    left: str
    right: str

    def __post_init__(self) -> None:
        if self.left == self.right:
            raise AtomUniverseError(f"an atom must relate two distinct attributes, got {self.left!r}")
        if self.left > self.right:
            # Normalise the orientation; done through __setattr__ because the
            # dataclass is frozen.
            original_left, original_right = self.left, self.right
            object.__setattr__(self, "left", original_right)
            object.__setattr__(self, "right", original_left)

    @classmethod
    def of(cls, left: str, right: str) -> EqualityAtom:
        """Build a (normalised) atom between two attribute names."""
        return cls(left, right)

    @property
    def attributes(self) -> tuple[str, str]:
        """The pair of attribute names this atom relates."""
        return (self.left, self.right)

    def holds_on(self, row: Sequence[object], position_of: dict[str, int]) -> bool:
        """Whether the atom holds on a row (``None`` never equals anything)."""
        left_value = row[position_of[self.left]]
        right_value = row[position_of[self.right]]
        if left_value is None or right_value is None:
            return False
        return left_value == right_value

    def __str__(self) -> str:
        return f"{self.left} ≍ {self.right}"


class AtomScope(enum.Enum):
    """Which attribute pairs are admitted as candidate atoms.

    ``CROSS_RELATION``
        Only pairs whose attributes come from different base relations — the
        natural choice when the candidate table is a cross product, since
        intra-relation equalities are selections, not join predicates.  Falls
        back to ``ALL_PAIRS`` when the table has no provenance information
        (the paper's denormalised-table scenario).
    ``ALL_PAIRS``
        Every pair of attributes.
    """

    CROSS_RELATION = "cross-relation"
    ALL_PAIRS = "all-pairs"


class AtomUniverse:
    """The ordered set Ω of candidate equality atoms over a candidate table.

    Every atom is assigned a bit position; sets of atoms are manipulated as
    integer bitmasks throughout the inference core.
    """

    def __init__(self, table: CandidateTable, atoms: Sequence[EqualityAtom]) -> None:
        if not atoms:
            raise AtomUniverseError(
                "the atom universe is empty: no candidate equality atoms exist for this table"
            )
        self.table = table
        self.atoms: tuple[EqualityAtom, ...] = tuple(atoms)
        if len(set(self.atoms)) != len(self.atoms):
            raise AtomUniverseError("duplicate atoms in the universe")
        self._position_of = {name: pos for pos, name in enumerate(table.attribute_names)}
        for atom in self.atoms:
            for attribute in atom.attributes:
                if attribute not in self._position_of:
                    raise AtomUniverseError(
                        f"atom {atom} refers to unknown attribute {attribute!r}"
                    )
        self._index = {atom: pos for pos, atom in enumerate(self.atoms)}
        self._attribute_positions = [
            (self._position_of[atom.left], self._position_of[atom.right]) for atom in self.atoms
        ]

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_table(
        cls,
        table: CandidateTable,
        scope: AtomScope = AtomScope.CROSS_RELATION,
        require_type_compatible: bool = True,
        include_attributes: Iterable[str] | None = None,
        exclude_attributes: Iterable[str] | None = None,
    ) -> AtomUniverse:
        """Build the default atom universe for a candidate table.

        Parameters
        ----------
        scope:
            See :class:`AtomScope`.  ``CROSS_RELATION`` silently widens to
            ``ALL_PAIRS`` when the table has no provenance information.
        require_type_compatible:
            Skip pairs whose column types can never compare equal.
        include_attributes / exclude_attributes:
            Optional allow/deny lists of attribute names.
        """
        included = set(include_attributes) if include_attributes is not None else None
        excluded = set(exclude_attributes) if exclude_attributes is not None else set()
        effective_scope = scope
        if scope is AtomScope.CROSS_RELATION and not table.has_provenance():
            effective_scope = AtomScope.ALL_PAIRS
        atoms = []
        for left, right in itertools.combinations(table.attributes, 2):
            if left.name in excluded or right.name in excluded:
                continue
            if included is not None and (left.name not in included or right.name not in included):
                continue
            if effective_scope is AtomScope.CROSS_RELATION and (
                left.source_relation == right.source_relation
            ):
                continue
            if require_type_compatible and not are_compatible(left.data_type, right.data_type):
                continue
            atoms.append(EqualityAtom.of(left.name, right.name))
        return cls(table, atoms)

    # ------------------------------------------------------------------ #
    # Bitmask encoding
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of atoms in the universe."""
        return len(self.atoms)

    @property
    def full_mask(self) -> int:
        """Bitmask with every atom present (the most specific query Ω)."""
        return (1 << len(self.atoms)) - 1

    @property
    def attribute_positions(self) -> tuple[tuple[int, int], ...]:
        """Per atom, the (left, right) column positions it relates.

        The column-pair view of the universe, in bit order — what the
        columnar equality-type construction iterates over.
        """
        return tuple(self._attribute_positions)

    def index_of(self, atom: EqualityAtom) -> int:
        """Bit position of an atom."""
        try:
            return self._index[atom]
        except KeyError as exc:
            raise AtomUniverseError(f"atom {atom} is not part of this universe") from exc

    def __contains__(self, atom: EqualityAtom) -> bool:
        return atom in self._index

    def mask_of(self, atoms: Iterable[EqualityAtom]) -> int:
        """Bitmask of a collection of atoms."""
        mask = 0
        for atom in atoms:
            mask |= 1 << self.index_of(atom)
        return mask

    def atoms_of(self, mask: int) -> tuple[EqualityAtom, ...]:
        """Atoms present in a bitmask, in universe order."""
        if mask < 0 or mask > self.full_mask:
            raise AtomUniverseError(f"mask {mask} is outside this universe")
        return tuple(atom for pos, atom in enumerate(self.atoms) if mask >> pos & 1)

    def equality_mask(self, row: Sequence[object]) -> int:
        """The equality type E(t) of a row, as a bitmask.

        Bit ``i`` is set exactly when atom ``i`` holds on the row; ``None``
        (null) values never satisfy any atom.
        """
        mask = 0
        for pos, (left_pos, right_pos) in enumerate(self._attribute_positions):
            left_value = row[left_pos]
            if left_value is None:
                continue
            if left_value == row[right_pos]:
                mask |= 1 << pos
        return mask

    def describe_mask(self, mask: int) -> str:
        """Human-readable rendering of a bitmask (``"A ≍ B ∧ C ≍ D"``)."""
        atoms = self.atoms_of(mask)
        if not atoms:
            return "⊤ (no equality required)"
        return " ∧ ".join(str(atom) for atom in atoms)

    def __iter__(self) -> Iterator[EqualityAtom]:
        return iter(self.atoms)

    def __len__(self) -> int:
        return len(self.atoms)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"AtomUniverse(table={self.table.name!r}, atoms={len(self.atoms)})"


def popcount(mask: int) -> int:
    """Number of set bits in a mask (number of atoms in the encoded set)."""
    return bin(mask).count("1")


def is_subset(inner: int, outer: int) -> bool:
    """Whether the atom set encoded by ``inner`` is a subset of ``outer``."""
    return inner & ~outer == 0
