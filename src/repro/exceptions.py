"""Exception hierarchy for the JIM reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError` so that
callers can catch library errors with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class SchemaError(ReproError):
    """A relation or database schema is malformed or used inconsistently.

    Examples: duplicate attribute names, a tuple whose arity does not match
    its relation schema, or referencing an unknown relation.
    """


class DataTypeError(ReproError):
    """A value cannot be coerced to, or is incompatible with, a data type."""


class UnknownAttributeError(SchemaError):
    """An attribute name was referenced that does not exist in the schema."""


class UnknownRelationError(SchemaError):
    """A relation name was referenced that does not exist in the database."""


class CandidateTableError(ReproError):
    """The candidate (denormalised) table is malformed or cannot be built."""


class AtomUniverseError(ReproError):
    """The atom universe is empty or an atom refers to unknown attributes."""


class InconsistentLabelError(ReproError):
    """A label contradicts the labels given so far.

    Raised when the user labels a tuple in a way that leaves no consistent
    join query (e.g. labeling a *certain-positive* tuple as negative), or
    when the same tuple receives two different labels.
    """


class ConvergenceError(ReproError):
    """The interactive inference loop could not reach a unique query."""


class StrategyError(ReproError):
    """A strategy was asked to choose a tuple in an invalid state.

    For instance requesting the next informative tuple when none remains, or
    instantiating an unknown strategy name from the registry.
    """


class OracleError(ReproError):
    """An oracle could not produce a label for the requested tuple."""


class ExperimentError(ReproError):
    """An experiment or benchmark harness was configured incorrectly."""
