"""E7 — scalability: time per interaction as the candidate table grows.

The demo's value proposition only holds if choosing the next informative tuple
and propagating a label stay interactive as the instance grows.  This
experiment measures, per strategy, the wall-clock time of a full inference run
and the average time per interaction while the candidate-table size increases,
so the expected shape — roughly linear growth for the local strategies, a
larger but still interactive cost for the lookahead ones — can be checked.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..datasets.synthetic import SyntheticConfig
from ..datasets.workloads import Workload, synthetic_workload
from .results import ResultTable
from .runner import run_single


def scalability_workloads(
    tuples_per_relation: Sequence[int] = (10, 20, 30, 45),
    goal_atoms: int = 2,
    domain_size: int = 4,
    seed: int = 0,
    max_candidate_rows: int | None = None,
) -> list[Workload]:
    """Synthetic workloads of growing candidate-table size (quadratic in rows)."""
    return [
        synthetic_workload(
            SyntheticConfig(
                num_relations=2,
                attributes_per_relation=3,
                tuples_per_relation=tuples,
                domain_size=domain_size,
                max_candidate_rows=max_candidate_rows,
                seed=seed,
            ),
            goal_atoms=goal_atoms,
        )
        for tuples in tuples_per_relation
    ]


def setup_scale_workloads(
    tuples_per_relation: Sequence[int] = (100, 200, 400),
    goal_atoms: int = 2,
    domain_size: int = 4,
    seed: int = 0,
) -> list[Workload]:
    """Large instances exercising the *setup* pipeline, not the question loop.

    These sizes (10⁴–10⁵+ candidate tuples) were out of reach for the seed's
    row-at-a-time construction — the cross product was materialised eagerly
    and every tuple's equality type was computed individually.  The
    columnar/factorized pipeline builds them in milliseconds, which is what
    ``benchmarks/bench_setup_pipeline.py`` measures.  Workload generation
    itself stays factorized end to end: goal queries are drawn with
    count-only evaluation, so no flat row tuple is ever materialised here.
    """
    return scalability_workloads(
        tuples_per_relation=tuples_per_relation,
        goal_atoms=goal_atoms,
        domain_size=domain_size,
        seed=seed,
    )


def measure_scalability(
    workloads: Sequence[Workload] | None = None,
    strategies: Sequence[str] = ("local-most-specific", "lookahead-entropy", "random"),
    seed: int = 0,
) -> ResultTable:
    """Per-run timing across workload sizes and strategies."""
    if workloads is None:
        workloads = scalability_workloads(seed=seed)
    table = ResultTable(
        [
            "candidates",
            "strategy",
            "interactions",
            "total_seconds",
            "seconds_per_interaction",
            "correct",
        ]
    )
    for workload in workloads:
        for strategy in strategies:
            record = run_single(workload, strategy, seed=seed)
            table.add_row(
                {
                    "candidates": workload.num_candidates,
                    "strategy": strategy,
                    "interactions": record["interactions"],
                    "total_seconds": record["total_seconds"],
                    "seconds_per_interaction": record["seconds_per_interaction"],
                    "correct": record["correct"],
                }
            )
    return table
