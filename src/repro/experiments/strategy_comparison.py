"""E5 — comparing strategies across instance sizes and query complexities.

The second part of the demonstration lets the attendee "infer more or less
complex join queries on different instances" and observe that "for more
complex instances and join queries a lookahead strategy performs better than a
local one while for simpler instances and queries a local strategy is better"
(better here meaning: at least as few interactions at a much smaller cost).

The sweep below crosses synthetic instances (varying candidate-table size and
value-domain size) and goal-query complexities (number of atoms) with the
strategy families, and reports the mean number of interactions per strategy.
On tiny instances the exponential optimal strategy can be included to measure
how far the heuristics are from the true optimum.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.strategies.registry import LOCAL_STRATEGIES, LOOKAHEAD_STRATEGIES
from ..datasets.synthetic import SyntheticConfig
from ..datasets.workloads import Workload, synthetic_workload
from .results import ResultTable
from .runner import run_matrix

#: A compact default strategy panel: the random baseline plus one
#: representative per family (keeps the default sweeps fast).
DEFAULT_STRATEGY_PANEL: tuple[str, ...] = (
    "random",
    "local-most-specific",
    "local-largest-type",
    "lookahead-minmax",
    "lookahead-entropy",
)


def sweep_workloads(
    tuples_per_relation: Sequence[int] = (6, 10, 14),
    goal_atoms: Sequence[int] = (1, 2, 3),
    domain_size: int = 3,
    attributes_per_relation: int = 3,
    seeds: Sequence[int] = (0, 1),
) -> list[Workload]:
    """The synthetic workload grid of the strategy-comparison experiment."""
    workloads = []
    for tuples in tuples_per_relation:
        for atoms in goal_atoms:
            for seed in seeds:
                workloads.append(
                    synthetic_workload(
                        SyntheticConfig(
                            num_relations=2,
                            attributes_per_relation=attributes_per_relation,
                            tuples_per_relation=tuples,
                            domain_size=domain_size,
                            seed=seed,
                        ),
                        goal_atoms=atoms,
                    )
                )
    return workloads


def compare_strategies(
    workloads: Sequence[Workload] | None = None,
    strategies: Sequence[str] = DEFAULT_STRATEGY_PANEL,
    seeds: Sequence[int] = (0,),
) -> ResultTable:
    """Run the full workload × strategy matrix (one row per run)."""
    if workloads is None:
        workloads = sweep_workloads()
    return run_matrix(list(workloads), list(strategies), seeds=seeds)


def summarize_by_complexity(results: ResultTable) -> ResultTable:
    """Mean interactions per (goal complexity, strategy) — the paper's headline series."""
    means = results.group_mean(["goal_atoms", "strategy"], "interactions")
    summary = ResultTable(["goal_atoms", "strategy", "mean_interactions"])
    for (goal_atoms, strategy), value in sorted(means.items(), key=lambda item: (item[0][0], item[0][1])):
        summary.add_row(
            {
                "goal_atoms": goal_atoms,
                "strategy": strategy,
                "mean_interactions": round(value, 2),
            }
        )
    return summary


def summarize_by_size(results: ResultTable) -> ResultTable:
    """Mean interactions per (candidate-table size, strategy)."""
    means = results.group_mean(["candidates", "strategy"], "interactions")
    summary = ResultTable(["candidates", "strategy", "mean_interactions"])
    for (candidates, strategy), value in sorted(means.items(), key=lambda item: (item[0][0], item[0][1])):
        summary.add_row(
            {
                "candidates": candidates,
                "strategy": strategy,
                "mean_interactions": round(value, 2),
            }
        )
    return summary


def family_of(strategy: str) -> str:
    """The family a strategy name belongs to (random / local / lookahead / optimal)."""
    if strategy in LOCAL_STRATEGIES:
        return "local"
    if strategy in LOOKAHEAD_STRATEGIES:
        return "lookahead"
    if strategy == "optimal":
        return "optimal"
    return "random"


def summarize_by_family(results: ResultTable) -> ResultTable:
    """Mean interactions per strategy family, split by goal complexity."""
    augmented = ResultTable(["goal_atoms", "family", "interactions"])
    for row in results:
        augmented.add_row(
            {
                "goal_atoms": row["goal_atoms"],
                "family": family_of(str(row["strategy"])),
                "interactions": row["interactions"],
            }
        )
    means = augmented.group_mean(["goal_atoms", "family"], "interactions")
    summary = ResultTable(["goal_atoms", "family", "mean_interactions"])
    for (goal_atoms, family), value in sorted(means.items(), key=lambda item: (item[0][0], item[0][1])):
        summary.add_row(
            {
                "goal_atoms": goal_atoms,
                "family": family,
                "mean_interactions": round(value, 2),
            }
        )
    return summary
