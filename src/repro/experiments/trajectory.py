"""Machine-readable perf trajectory: benchmark results keyed by commit + config.

Every benchmark run can append its measurements to a ``BENCH_<name>.json``
file so the repository accumulates a *trajectory* of performance over its
history instead of one-off console numbers.  A record is keyed by the git
commit it was measured at plus a hash of the benchmark configuration:
re-running the same benchmark at the same commit with the same configuration
*replaces* the old record (timings drift between machines; the latest
measurement wins), while new commits or new configurations append.

The file layout is deliberately flat so that trend tooling can consume it
with nothing but ``json``::

    {
      "name": "incremental_engine",
      "records": [
        {
          "commit": "311a834…",
          "config_hash": "9f2c41d0a7b3",
          "config": {"quick": false, "repeats": 3, …},
          "results": {"wall_speedup": 12.4, …},
          "timestamp": 1754550000.0
        },
        …
      ]
    }
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import time
from collections.abc import Mapping, Sequence
from pathlib import Path
from typing import Any

#: File-name template of one benchmark's trajectory.
FILE_TEMPLATE = "BENCH_{name}.json"


def config_hash(config: Mapping[str, Any]) -> str:
    """A short stable digest of a benchmark configuration.

    Canonical JSON (sorted keys, no whitespace variance) hashed with sha256;
    12 hex characters are plenty to tell configurations apart in one file.
    """
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def git_commit(directory: str | Path | None = None) -> str:
    """The current git commit hash, or ``"unknown"`` outside a repository."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(directory) if directory is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    commit = completed.stdout.strip()
    return commit if completed.returncode == 0 and commit else "unknown"


def trajectory_path(name: str, directory: str | Path) -> Path:
    """Where ``BENCH_<name>.json`` lives under ``directory``."""
    return Path(directory) / FILE_TEMPLATE.format(name=name)


def load_records(name: str, directory: str | Path) -> list[dict[str, Any]]:
    """All recorded results of one benchmark (empty when none were recorded)."""
    path = trajectory_path(name, directory)
    if not path.exists():
        return []
    document = json.loads(path.read_text(encoding="utf-8"))
    records = document.get("records", [])
    return records if isinstance(records, list) else []


def find_record(
    name: str,
    directory: str | Path,
    commit: str,
    config: Mapping[str, Any],
) -> dict[str, Any] | None:
    """The record of one (commit, configuration) pair, if present."""
    digest = config_hash(config)
    for record in load_records(name, directory):
        if record.get("commit") == commit and record.get("config_hash") == digest:
            return record
    return None


def latest_record(
    name: str,
    directory: str | Path,
    config: Mapping[str, Any],
) -> dict[str, Any] | None:
    """The newest record with this configuration, across commits.

    CI regression checks compare a fresh measurement against whatever the
    trajectory last recorded for the *same configuration* — the commit is
    deliberately ignored, since the point is to catch the current commit
    drifting from the recorded history.
    """
    digest = config_hash(config)
    matching = [
        record
        for record in load_records(name, directory)
        if record.get("config_hash") == digest
    ]
    if not matching:
        return None
    return max(matching, key=lambda record: record.get("timestamp", 0.0))


def _lookup(results: Mapping[str, Any], dotted: str) -> Any:
    value: Any = results
    for part in dotted.split("."):
        if not isinstance(value, Mapping) or part not in value:
            return None
        value = value[part]
    return value


def compare_results(
    recorded: Mapping[str, Any],
    fresh: Mapping[str, Any],
    metrics: Sequence[str],
    tolerance: float = 0.25,
) -> list[str]:
    """Regressions of ratio metrics against a recorded baseline.

    ``metrics`` names the results to compare, with dots reaching into nested
    sections (``"seed_gate.wall_speedup"``).  Only *ratio* metrics belong
    here — speedups are comparable across machines, raw wall-clock seconds
    are not.  A metric regresses when the fresh value falls below the
    recorded one by more than ``tolerance`` (fractional); a metric missing
    from either side is reported as well.  Returns human-readable regression
    lines — empty means the comparison is green.
    """
    regressions: list[str] = []
    for metric in metrics:
        baseline = _lookup(recorded, metric)
        current = _lookup(fresh, metric)
        if not isinstance(baseline, (int, float)) or not isinstance(current, (int, float)):
            missing = "baseline" if not isinstance(baseline, (int, float)) else "fresh run"
            regressions.append(f"{metric}: missing from the {missing}")
            continue
        floor = baseline * (1.0 - tolerance)
        if current < floor:
            regressions.append(
                f"{metric}: {current:.3g} < {baseline:.3g} recorded "
                f"(tolerance {tolerance:.0%}, floor {floor:.3g})"
            )
    return regressions


def compare_to_trajectory(
    name: str,
    directory: str | Path,
    config: Mapping[str, Any],
    results: Mapping[str, Any],
    metrics: Sequence[str],
    tolerance: float = 0.25,
) -> tuple[list[str], dict[str, Any] | None]:
    """Compare a fresh run against the latest recorded same-config baseline.

    Returns ``(regressions, baseline_record)``.  With no matching baseline
    the comparison is vacuously green (first run of a new configuration) and
    the record is ``None``.
    """
    baseline = latest_record(name, directory, config)
    if baseline is None:
        return [], None
    recorded = baseline.get("results")
    if not isinstance(recorded, Mapping):
        return [f"baseline record for {name} has no results section"], baseline
    return compare_results(recorded, results, metrics, tolerance), baseline


def record_benchmark(
    name: str,
    config: Mapping[str, Any],
    results: Mapping[str, Any],
    directory: str | Path,
    commit: str | None = None,
    timestamp: float | None = None,
) -> Path:
    """Append (or replace) one benchmark measurement in the trajectory file.

    The record is keyed by ``(commit, config_hash(config))``: a rerun of the
    same benchmark at the same commit and configuration replaces its previous
    record in place, preserving the position in the file; anything else
    appends.  Returns the path written.
    """
    path = trajectory_path(name, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    records = load_records(name, directory)
    resolved_commit = commit if commit is not None else git_commit(path.parent)
    record = {
        "commit": resolved_commit,
        "config_hash": config_hash(config),
        "config": dict(config),
        "results": dict(results),
        "timestamp": timestamp if timestamp is not None else time.time(),
    }
    for position, existing in enumerate(records):
        if (
            existing.get("commit") == record["commit"]
            and existing.get("config_hash") == record["config_hash"]
        ):
            records[position] = record
            break
    else:
        records.append(record)
    document = {"name": name, "records": records}
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
