"""Machine-readable perf trajectory: benchmark results keyed by commit + config.

Every benchmark run can append its measurements to a ``BENCH_<name>.json``
file so the repository accumulates a *trajectory* of performance over its
history instead of one-off console numbers.  A record is keyed by the git
commit it was measured at plus a hash of the benchmark configuration:
re-running the same benchmark at the same commit with the same configuration
*replaces* the old record (timings drift between machines; the latest
measurement wins), while new commits or new configurations append.

The file layout is deliberately flat so that trend tooling can consume it
with nothing but ``json``::

    {
      "name": "incremental_engine",
      "records": [
        {
          "commit": "311a834…",
          "config_hash": "9f2c41d0a7b3",
          "config": {"quick": false, "repeats": 3, …},
          "results": {"wall_speedup": 12.4, …},
          "timestamp": 1754550000.0
        },
        …
      ]
    }
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import time
from collections.abc import Mapping
from pathlib import Path
from typing import Any

#: File-name template of one benchmark's trajectory.
FILE_TEMPLATE = "BENCH_{name}.json"


def config_hash(config: Mapping[str, Any]) -> str:
    """A short stable digest of a benchmark configuration.

    Canonical JSON (sorted keys, no whitespace variance) hashed with sha256;
    12 hex characters are plenty to tell configurations apart in one file.
    """
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def git_commit(directory: str | Path | None = None) -> str:
    """The current git commit hash, or ``"unknown"`` outside a repository."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(directory) if directory is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    commit = completed.stdout.strip()
    return commit if completed.returncode == 0 and commit else "unknown"


def trajectory_path(name: str, directory: str | Path) -> Path:
    """Where ``BENCH_<name>.json`` lives under ``directory``."""
    return Path(directory) / FILE_TEMPLATE.format(name=name)


def load_records(name: str, directory: str | Path) -> list[dict[str, Any]]:
    """All recorded results of one benchmark (empty when none were recorded)."""
    path = trajectory_path(name, directory)
    if not path.exists():
        return []
    document = json.loads(path.read_text(encoding="utf-8"))
    records = document.get("records", [])
    return records if isinstance(records, list) else []


def find_record(
    name: str,
    directory: str | Path,
    commit: str,
    config: Mapping[str, Any],
) -> dict[str, Any] | None:
    """The record of one (commit, configuration) pair, if present."""
    digest = config_hash(config)
    for record in load_records(name, directory):
        if record.get("commit") == commit and record.get("config_hash") == digest:
            return record
    return None


def record_benchmark(
    name: str,
    config: Mapping[str, Any],
    results: Mapping[str, Any],
    directory: str | Path,
    commit: str | None = None,
    timestamp: float | None = None,
) -> Path:
    """Append (or replace) one benchmark measurement in the trajectory file.

    The record is keyed by ``(commit, config_hash(config))``: a rerun of the
    same benchmark at the same commit and configuration replaces its previous
    record in place, preserving the position in the file; anything else
    appends.  Returns the path written.
    """
    path = trajectory_path(name, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    records = load_records(name, directory)
    resolved_commit = commit if commit is not None else git_commit(path.parent)
    record = {
        "commit": resolved_commit,
        "config_hash": config_hash(config),
        "config": dict(config),
        "results": dict(results),
        "timestamp": timestamp if timestamp is not None else time.time(),
    }
    for position, existing in enumerate(records):
        if (
            existing.get("commit") == record["commit"]
            and existing.get("config_hash") == record["config_hash"]
        ):
            records[position] = record
            break
    else:
        records.append(record)
    document = {"name": name, "records": records}
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
