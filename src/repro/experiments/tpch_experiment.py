"""E8 — PK/FK join inference on the TPC-H-like database.

The research paper's benchmark experiments infer the natural primary-key /
foreign-key joins of TPC-H.  This experiment rebuilds them on the miniature
TPC-H-like instance: for each canonical join (orders⋈customer,
lineitem⋈orders, the three-way customer⋈orders⋈lineitem, …) it runs the
interactive inference with each strategy and records the interaction count —
the shape to check is that a handful of membership queries suffices even
though the candidate cross products have hundreds to thousands of tuples.

It also demonstrates the constraint-discovery substrate: the foreign keys that
drive the workloads can be re-discovered from the generated data with
:func:`repro.relational.integrity.foreign_key_candidates`.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..datasets.tpch import TPCHConfig, generate_tpch
from ..datasets.workloads import Workload, tpch_workload
from ..relational.integrity import ranked_foreign_keys
from .results import ResultTable
from .runner import run_matrix

#: The joins reported by the default TPC-H experiment.
DEFAULT_JOINS: tuple[str, ...] = (
    "orders-customer",
    "lineitem-orders",
    "customer-nation",
    "customer-orders-lineitem",
)


def tpch_workload_suite(
    joins: Sequence[str] = DEFAULT_JOINS,
    config: TPCHConfig | None = None,
    max_rows: int | None = 1200,
) -> list[Workload]:
    """One workload per canonical TPC-H join."""
    return [tpch_workload(join, config=config, max_rows=max_rows) for join in joins]


def run_tpch_experiment(
    joins: Sequence[str] = DEFAULT_JOINS,
    strategies: Sequence[str] = ("random", "local-most-specific", "lookahead-entropy"),
    config: TPCHConfig | None = None,
    max_rows: int | None = 1200,
    seeds: Sequence[int] = (0,),
) -> ResultTable:
    """Interactions per (join, strategy) on the TPC-H-like instance."""
    workloads = tpch_workload_suite(joins, config=config, max_rows=max_rows)
    return run_matrix(workloads, list(strategies), seeds=seeds)


def discovered_foreign_keys(
    config: TPCHConfig | None = None,
    min_score: float = 0.6,
) -> ResultTable:
    """Foreign keys re-discovered from the generated data (sanity of the substrate).

    Candidates are ranked by attribute-name similarity and key/non-key shape
    (see :func:`repro.relational.integrity.ranked_foreign_keys`); only those
    scoring at least ``min_score`` are reported, which filters the chance
    inclusions that tiny integer key domains inevitably produce.
    """
    instance = generate_tpch(config)
    table = ResultTable(["dependent", "referenced", "score"])
    for candidate in ranked_foreign_keys(instance, min_score=min_score):
        left, right = candidate.dependency.as_equality
        table.add_row({"dependent": left, "referenced": right, "score": round(candidate.score, 2)})
    return table
