"""E2–E4 — user effort under the different interaction types.

* **E2** (Figure 2): interactions needed by the interactive loop vs labeling
  every candidate tuple, as the candidate table grows.
* **E3** (Figure 3): user effort (labels given) under the four interaction
  types — free labeling, free labeling with graying out, top-k proposals,
  fully guided.
* **E4** (Figure 4): the "benefit of using a strategy" report — how many
  interactions an unguided user performs vs what a guided strategy would have
  needed for the same goal query.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from ..baselines.label_all import label_all_interactions
from ..baselines.random_order import RandomOrderBaseline
from ..core.oracle import GoalQueryOracle
from ..datasets.synthetic import SyntheticConfig
from ..datasets.workloads import Workload, figure1_workload, synthetic_workload
from ..sessions.benefit import compute_benefit
from ..sessions.modes import GuidedSession, ManualSession, TopKSession
from .results import ResultTable
from .runner import run_single


def default_e2_workloads(
    tuple_counts: Sequence[int] = (6, 10, 14, 20),
    goal_atoms: int = 2,
    seed: int = 0,
) -> list[Workload]:
    """Figure 1 plus a synthetic size sweep (cross products of two relations)."""
    workloads: list[Workload] = [figure1_workload("q2")]
    for tuples_per_relation in tuple_counts:
        workloads.append(
            synthetic_workload(
                SyntheticConfig(
                    num_relations=2,
                    attributes_per_relation=3,
                    tuples_per_relation=tuples_per_relation,
                    domain_size=4,
                    seed=seed,
                ),
                goal_atoms=goal_atoms,
            )
        )
    return workloads


def interactive_vs_label_all(
    workloads: Sequence[Workload] | None = None,
    strategy: str = "lookahead-entropy",
    seed: int = 0,
) -> ResultTable:
    """E2: guided interactive inference vs labeling every tuple."""
    workloads = list(workloads) if workloads is not None else default_e2_workloads(seed=seed)
    table = ResultTable(
        [
            "workload",
            "candidates",
            "goal_atoms",
            "interactive_labels",
            "label_all_labels",
            "saving_pct",
            "correct",
        ]
    )
    for workload in workloads:
        record = run_single(workload, strategy, seed=seed)
        exhaustive = label_all_interactions(workload.table)
        interactive = int(record["interactions"])
        saving = 100.0 * (exhaustive - interactive) / exhaustive if exhaustive else 0.0
        table.add_row(
            {
                "workload": workload.name,
                "candidates": workload.num_candidates,
                "goal_atoms": workload.goal_size,
                "interactive_labels": interactive,
                "label_all_labels": exhaustive,
                "saving_pct": round(saving, 1),
                "correct": record["correct"],
            }
        )
    return table


def interaction_mode_effort(
    workloads: Sequence[Workload] | None = None,
    k: int = 3,
    seed: int = 0,
) -> ResultTable:
    """E3: labels the user gives under each of the four interaction types.

    The simulated attendee of interaction types 1 and 2 labels tuples in a
    random order (she has no insight into informativeness); types 3 and 4 are
    system-driven.  All four infer the same goal query.
    """
    if workloads is None:
        workloads = [
            figure1_workload("q2"),
            synthetic_workload(
                SyntheticConfig(
                    num_relations=2,
                    attributes_per_relation=3,
                    tuples_per_relation=10,
                    domain_size=3,
                    seed=seed,
                ),
                goal_atoms=2,
            ),
        ]
    table = ResultTable(
        ["workload", "candidates", "mode", "labels_given", "grayed_out", "correct"]
    )
    for workload in workloads:
        goal_oracle = GoalQueryOracle(workload.goal)
        order = list(workload.table.tuple_ids)
        random.Random(seed).shuffle(order)

        # Type 1: free labeling, no help.
        manual = ManualSession(workload.table, gray_out=False)
        manual.run(goal_oracle, order=order)
        table.add_row(
            {
                "workload": workload.name,
                "candidates": workload.num_candidates,
                "mode": "1-manual",
                "labels_given": manual.num_interactions,
                "grayed_out": 0,
                "correct": manual.inferred_query().instance_equivalent(
                    workload.goal, workload.table
                ),
            }
        )

        # Type 2: free labeling with interactive graying out.
        assisted = ManualSession(workload.table, gray_out=True)
        assisted.run(goal_oracle, order=order)
        table.add_row(
            {
                "workload": workload.name,
                "candidates": workload.num_candidates,
                "mode": "2-manual+pruning",
                "labels_given": assisted.num_interactions,
                "grayed_out": assisted.statistics().grayed_out,
                "correct": assisted.inferred_query().instance_equivalent(
                    workload.goal, workload.table
                ),
            }
        )

        # Type 3: top-k proposals.
        top_k = TopKSession(workload.table, k=k)
        top_k.run(goal_oracle)
        table.add_row(
            {
                "workload": workload.name,
                "candidates": workload.num_candidates,
                "mode": f"3-top-{k}",
                "labels_given": top_k.num_interactions,
                "grayed_out": top_k.statistics().grayed_out,
                "correct": top_k.inferred_query().instance_equivalent(
                    workload.goal, workload.table
                ),
            }
        )

        # Type 4: fully guided (most informative tuple).
        guided = GuidedSession(workload.table, strategy="lookahead-entropy")
        guided.run(goal_oracle)
        table.add_row(
            {
                "workload": workload.name,
                "candidates": workload.num_candidates,
                "mode": "4-guided",
                "labels_given": guided.num_interactions,
                "grayed_out": guided.statistics().grayed_out,
                "correct": guided.inferred_query().instance_equivalent(
                    workload.goal, workload.table
                ),
            }
        )
    return table


def strategy_benefit(
    workloads: Sequence[Workload] | None = None,
    strategy: str = "lookahead-entropy",
    seeds: Sequence[int] = (0, 1, 2),
) -> ResultTable:
    """E4: unguided random-order users vs the guided strategy (Figure 4).

    For each seed an unguided user labels random tuples until her labels
    identify the goal query; the benefit report then replays the inference
    with the guided strategy and records the saving.
    """
    if workloads is None:
        workloads = [
            figure1_workload("q2"),
            synthetic_workload(
                SyntheticConfig(
                    num_relations=2,
                    attributes_per_relation=3,
                    tuples_per_relation=10,
                    domain_size=3,
                    seed=1,
                ),
                goal_atoms=2,
            ),
        ]
    table = ResultTable(
        [
            "workload",
            "candidates",
            "seed",
            "user_interactions",
            "strategy_interactions",
            "saved_interactions",
            "saved_pct",
        ]
    )
    for workload in workloads:
        for seed in seeds:
            oracle = GoalQueryOracle(workload.goal)
            baseline = RandomOrderBaseline(seed=seed, informed_pruning=False)
            user_run = baseline.run(workload.table, oracle)
            # Reconstruct the user's final state to produce the benefit report.
            session = ManualSession(workload.table, gray_out=False)
            session.run(
                GoalQueryOracle(workload.goal),
                order=_replay_order(workload, seed),
            )
            report = compute_benefit(
                session.state,
                user_run.num_interactions,
                strategy=strategy,
                goal=workload.goal,
            )
            table.add_row(
                {
                    "workload": workload.name,
                    "candidates": workload.num_candidates,
                    "seed": seed,
                    "user_interactions": report.user_interactions,
                    "strategy_interactions": report.strategy_interactions,
                    "saved_interactions": report.saved_interactions,
                    "saved_pct": round(report.saved_pct, 1),
                }
            )
    return table


def _replay_order(workload: Workload, seed: int) -> list[int]:
    """The same random labeling order the random-order baseline uses."""
    order = list(workload.table.tuple_ids)
    random.Random(seed).shuffle(order)
    return order
