"""Generic experiment runner: inference runs over workloads × strategies.

Every experiment in this reproduction boils down to "run the interactive
inference loop on workload W with strategy S and a goal-query oracle, and
record how many membership queries it took (and how long)".  The runner
provides that primitive plus the sweep that crosses workloads, strategies and
seeds into a :class:`~repro.experiments.results.ResultTable`.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from ..core.engine import JoinInferenceEngine
from ..core.oracle import GoalQueryOracle
from ..core.strategies.registry import create_strategy
from ..datasets.workloads import Workload
from .results import Record, ResultTable

#: Columns of the per-run records produced by :func:`run_single`.
RUN_COLUMNS: tuple[str, ...] = (
    "workload",
    "candidates",
    "goal_atoms",
    "goal_selectivity",
    "strategy",
    "seed",
    "interactions",
    "converged",
    "correct",
    "total_seconds",
    "seconds_per_interaction",
)


def run_single(
    workload: Workload,
    strategy: str,
    seed: int = 0,
    max_interactions: int | None = None,
) -> Record:
    """Run one guided inference session and return its record."""
    engine = JoinInferenceEngine(workload.table, strategy=create_strategy(strategy, seed=seed))
    oracle = GoalQueryOracle(workload.goal)
    started = time.perf_counter()
    result = engine.run(oracle, max_interactions=max_interactions)
    elapsed = time.perf_counter() - started
    interactions = result.num_interactions
    return {
        "workload": workload.name,
        "candidates": workload.num_candidates,
        "goal_atoms": workload.goal_size,
        "goal_selectivity": round(workload.goal_selectivity(), 4),
        "strategy": strategy,
        "seed": seed,
        "interactions": interactions,
        "converged": result.converged,
        "correct": result.matches_goal(workload.goal),
        "total_seconds": round(elapsed, 6),
        "seconds_per_interaction": round(elapsed / interactions, 6) if interactions else 0.0,
    }


def run_matrix(
    workloads: Sequence[Workload],
    strategies: Sequence[str],
    seeds: Sequence[int] = (0,),
    max_interactions: int | None = None,
) -> ResultTable:
    """Cross workloads × strategies × seeds into a result table."""
    table = ResultTable(RUN_COLUMNS)
    for workload in workloads:
        for strategy in strategies:
            for seed in seeds:
                table.add_row(
                    run_single(workload, strategy, seed=seed, max_interactions=max_interactions)
                )
    return table


def mean_interactions_by_strategy(results: ResultTable) -> dict[str, float]:
    """Average interaction count per strategy (the headline series of E5)."""
    return {
        str(key[0]): value
        for key, value in results.group_mean(["strategy"], "interactions").items()
    }
