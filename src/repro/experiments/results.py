"""Result tables: the uniform output format of every experiment.

Each experiment produces a :class:`ResultTable` — an ordered list of records
with named columns — which can be rendered as aligned text (what the
benchmarks print and what EXPERIMENTS.md quotes), exported to CSV, and
aggregated (grouped means) for the summary rows of the paper-style figures.
"""

from __future__ import annotations

import csv
import io
import statistics
from collections.abc import Iterable, Iterator, Mapping, Sequence

from ..exceptions import ExperimentError

Record = dict[str, object]


class ResultTable:
    """An ordered collection of records sharing a column set."""

    def __init__(self, columns: Sequence[str], rows: Iterable[Mapping[str, object]] = ()) -> None:
        if not columns:
            raise ExperimentError("a result table needs at least one column")
        self.columns: tuple[str, ...] = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise ExperimentError("result table columns must be unique")
        self.rows: list[Record] = []
        for row in rows:
            self.add_row(row)

    def add_row(self, row: Mapping[str, object]) -> None:
        """Append a record; missing columns become ``None``, extras are rejected."""
        unknown = set(row) - set(self.columns)
        if unknown:
            raise ExperimentError(f"unknown result columns: {', '.join(sorted(map(str, unknown)))}")
        self.rows.append({column: row.get(column) for column in self.columns})

    def extend(self, rows: Iterable[Mapping[str, object]]) -> None:
        """Append several records."""
        for row in rows:
            self.add_row(row)

    def column(self, name: str) -> list[object]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise ExperimentError(f"unknown column {name!r}")
        return [row[name] for row in self.rows]

    def filter(self, **criteria: object) -> ResultTable:
        """A new table with the rows matching all ``column=value`` criteria."""
        table = ResultTable(self.columns)
        for row in self.rows:
            if all(row.get(column) == value for column, value in criteria.items()):
                table.add_row(row)
        return table

    def group_mean(
        self,
        group_by: Sequence[str],
        value_column: str,
    ) -> dict[tuple[object, ...], float]:
        """Mean of ``value_column`` per distinct combination of ``group_by`` columns."""
        groups: dict[tuple[object, ...], list[float]] = {}
        for row in self.rows:
            key = tuple(row[column] for column in group_by)
            value = row[value_column]
            if value is None:
                continue
            groups.setdefault(key, []).append(float(value))  # type: ignore[arg-type]
        return {key: statistics.fmean(values) for key, values in groups.items() if values}

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def _formatted(self, value: object) -> str:
        if value is None:
            return ""
        if isinstance(value, float):
            return f"{value:.3f}".rstrip("0").rstrip(".") if value else "0"
        return str(value)

    def to_text(self, max_rows: int | None = None) -> str:
        """Aligned, human-readable rendering (what benchmarks print)."""
        rows = self.rows if max_rows is None else self.rows[:max_rows]
        cells = [[self._formatted(row[column]) for column in self.columns] for row in rows]
        widths = [len(column) for column in self.columns]
        for row in cells:
            for position, cell in enumerate(row):
                widths[position] = max(widths[position], len(cell))
        header = "  ".join(column.ljust(width) for column, width in zip(self.columns, widths, strict=True))
        separator = "  ".join("-" * width for width in widths)
        body = [
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths, strict=True)).rstrip()
            for row in cells
        ]
        lines = [header.rstrip(), separator]
        lines.extend(body)
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"… {len(self.rows) - max_rows} more row(s)")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV rendering with a header row."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(self.columns))
        writer.writeheader()
        for row in self.rows:
            writer.writerow({column: "" if value is None else value for column, value in row.items()})
        return buffer.getvalue()

    def __iter__(self) -> Iterator[Record]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ResultTable(columns={list(self.columns)}, rows={len(self.rows)})"
