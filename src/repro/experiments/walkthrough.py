"""E1 — the Section 2 walkthrough on the Figure 1 table.

Replays, programmatically, every claim the paper makes about its motivating
example and returns them as a structured report:

* with tuple (3) labeled ``+``, tuple (4) is uninformative and both Q1 and Q2
  remain consistent;
* tuple (8) distinguishes Q1 from Q2 (Q1 selects it, Q2 does not);
* after (3) ``+``, labeling tuple (12) ``+`` grays out (3), (4), (7), while
  labeling it ``−`` grays out (1), (5), (9);
* the labels {(3) ``+``, (7) ``−``, (8) ``−``} identify Q2 uniquely (up to
  instance-equivalence).

The benchmark ``benchmarks/bench_fig1_walkthrough.py`` prints this report; the
unit tests in ``tests/core/test_paper_example.py`` assert every item.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.examples import Label
from ..core.state import InferenceState
from ..datasets import flights_hotels
from .results import ResultTable


@dataclass
class WalkthroughReport:
    """The paper's worked-example facts, as computed by this implementation."""

    q1_selected: tuple[int, ...] = ()
    q2_selected: tuple[int, ...] = ()
    tuple4_uninformative_after_3: bool = False
    q1_consistent_after_3: bool = False
    q2_consistent_after_3: bool = False
    tuple8_informative_after_3: bool = False
    grayed_if_12_positive: tuple[int, ...] = ()
    grayed_if_12_negative: tuple[int, ...] = ()
    final_query: str = ""
    final_matches_q2: bool = False
    interactions_replayed: tuple[tuple[int, str], ...] = field(default_factory=tuple)

    def to_table(self) -> ResultTable:
        """The report as a two-column (fact, value) result table."""
        paper_numbers = lambda ids: ", ".join(str(i + 1) for i in ids)  # noqa: E731
        table = ResultTable(["fact", "value"])
        table.extend(
            [
                {"fact": "tuples selected by Q1 (paper numbering)", "value": paper_numbers(self.q1_selected)},
                {"fact": "tuples selected by Q2 (paper numbering)", "value": paper_numbers(self.q2_selected)},
                {"fact": "after (3)+: tuple (4) uninformative", "value": self.tuple4_uninformative_after_3},
                {"fact": "after (3)+: Q1 still consistent", "value": self.q1_consistent_after_3},
                {"fact": "after (3)+: Q2 still consistent", "value": self.q2_consistent_after_3},
                {"fact": "after (3)+: tuple (8) informative", "value": self.tuple8_informative_after_3},
                {"fact": "labeling (12)+ grays out", "value": paper_numbers(self.grayed_if_12_positive)},
                {"fact": "labeling (12)- grays out", "value": paper_numbers(self.grayed_if_12_negative)},
                {"fact": "query after (3)+, (7)-, (8)-", "value": self.final_query},
                {"fact": "… which is Q2", "value": self.final_matches_q2},
            ]
        )
        return table


def run_walkthrough() -> WalkthroughReport:
    """Compute the Section 2 walkthrough facts on the Figure 1 table."""
    table = flights_hotels.figure1_table()
    q1 = flights_hotels.query_q1()
    q2 = flights_hotels.query_q2()
    tid = flights_hotels.paper_tuple_id

    report = WalkthroughReport(
        q1_selected=tuple(sorted(q1.evaluate(table))),
        q2_selected=tuple(sorted(q2.evaluate(table))),
    )

    # After labeling tuple (3) positive.
    state = InferenceState(table)
    state.add_label(tid(3), Label.POSITIVE)
    report.tuple4_uninformative_after_3 = state.status(tid(4)).is_uninformative
    report.q1_consistent_after_3 = state.space.admits(q1)
    report.q2_consistent_after_3 = state.space.admits(q2)
    report.tuple8_informative_after_3 = not state.status(tid(8)).is_uninformative

    # Labeling tuple (12) positive vs negative: the paper describes the effect of
    # this single label on the otherwise unlabeled instance ("If the user labels
    # it as a positive example, we are able to prune the tuples that become
    # uninformative: (3), (4), (7).  Conversely, … (1), (5), (9).").
    fresh = InferenceState(table)
    positive_branch = fresh.simulate_label(tid(12), Label.POSITIVE)
    negative_branch = fresh.simulate_label(tid(12), Label.NEGATIVE)
    before = fresh.statuses()
    report.grayed_if_12_positive = tuple(
        sorted(
            tuple_id
            for tuple_id, status in positive_branch.statuses().items()
            if status.is_certain and not before[tuple_id].is_uninformative and tuple_id != tid(12)
        )
    )
    report.grayed_if_12_negative = tuple(
        sorted(
            tuple_id
            for tuple_id, status in negative_branch.statuses().items()
            if status.is_certain and not before[tuple_id].is_uninformative and tuple_id != tid(12)
        )
    )

    # The label set the paper says identifies Q2: (3)+, (7)-, (8)-.
    final_state = InferenceState(table)
    replay = ((tid(3), Label.POSITIVE), (tid(7), Label.NEGATIVE), (tid(8), Label.NEGATIVE))
    for tuple_id, label in replay:
        final_state.add_label(tuple_id, label)
    inferred = final_state.inferred_query()
    report.final_query = inferred.describe()
    report.final_matches_q2 = (
        final_state.is_converged() and inferred.instance_equivalent(q2, table)
    )
    report.interactions_replayed = tuple((tuple_id, label.value) for tuple_id, label in replay)
    return report
