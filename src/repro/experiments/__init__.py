"""Experiments: the harnesses that regenerate every figure of the paper.

See DESIGN.md (experiment index E1–E10) and EXPERIMENTS.md (measured results).
Each module exposes plain functions returning
:class:`~repro.experiments.results.ResultTable` objects; the corresponding
benchmarks in ``benchmarks/`` call them and print the tables.
"""

from . import (
    ablation,
    crowd,
    interactions,
    results,
    runner,
    scalability,
    strategy_comparison,
    tpch_experiment,
    trajectory,
    walkthrough,
)
from .results import ResultTable
from .runner import run_matrix, run_single
from .trajectory import load_records, record_benchmark

__all__ = [
    "ResultTable",
    "ablation",
    "crowd",
    "interactions",
    "load_records",
    "record_benchmark",
    "results",
    "run_matrix",
    "run_single",
    "runner",
    "scalability",
    "strategy_comparison",
    "tpch_experiment",
    "trajectory",
    "walkthrough",
]
