"""E10 — ablations of JIM's design choices.

Three design choices called out in DESIGN.md are ablated here:

* **Pruning of uninformative tuples** — the heart of the system: compare the
  guided loop (which never asks about uninformative tuples) against an
  unguided user who may waste labels on them.
* **Atom-universe scope** — restricting candidate atoms to cross-relation
  pairs (the join-predicate reading) vs admitting every attribute pair; the
  latter enlarges the query space and should cost extra interactions.
* **Lookahead depth / strategy family** — how much the extra computation of
  deeper lookahead buys in interactions, including the exponential optimal
  strategy on tiny instances as the lower bound.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from ..baselines.random_order import RandomOrderBaseline
from ..core.atoms import AtomScope, AtomUniverse
from ..core.engine import JoinInferenceEngine
from ..core.oracle import GoalQueryOracle
from ..core.strategies.lookahead import KStepLookaheadStrategy
from ..core.strategies.optimal import OptimalStrategy
from ..core.strategies.registry import create_strategy
from ..datasets.synthetic import SyntheticConfig
from ..datasets.workloads import Workload, figure1_workload, synthetic_workload
from .results import ResultTable


def default_ablation_workloads(seed: int = 0) -> list[Workload]:
    """Small workloads on which even the optimal strategy is tractable."""
    return [
        figure1_workload("q2"),
        synthetic_workload(
            SyntheticConfig(
                num_relations=2,
                attributes_per_relation=2,
                tuples_per_relation=6,
                domain_size=3,
                seed=seed,
            ),
            goal_atoms=2,
        ),
        synthetic_workload(
            SyntheticConfig(
                num_relations=2,
                attributes_per_relation=3,
                tuples_per_relation=8,
                domain_size=3,
                seed=seed + 1,
            ),
            goal_atoms=2,
        ),
    ]


def ablate_pruning(
    workloads: Sequence[Workload] | None = None,
    strategy: str = "lookahead-entropy",
    seeds: Sequence[int] = (0, 1, 2),
) -> ResultTable:
    """Guided loop (with pruning) vs an unguided user who may label anything."""
    if workloads is None:
        workloads = default_ablation_workloads()
    table = ResultTable(
        ["workload", "candidates", "variant", "seed", "interactions", "wasted_labels"]
    )
    for workload in workloads:
        for seed in seeds:
            engine = JoinInferenceEngine(workload.table, strategy=create_strategy(strategy, seed=seed))
            guided = engine.run(GoalQueryOracle(workload.goal))
            table.add_row(
                {
                    "workload": workload.name,
                    "candidates": workload.num_candidates,
                    "variant": "with-pruning (guided)",
                    "seed": seed,
                    "interactions": guided.num_interactions,
                    "wasted_labels": 0,
                }
            )
            unguided = RandomOrderBaseline(seed=seed, informed_pruning=False).run(
                workload.table, GoalQueryOracle(workload.goal)
            )
            table.add_row(
                {
                    "workload": workload.name,
                    "candidates": workload.num_candidates,
                    "variant": "no-pruning (random order)",
                    "seed": seed,
                    "interactions": unguided.num_interactions,
                    "wasted_labels": unguided.wasted_interactions,
                }
            )
    return table


def ablate_atom_scope(
    workloads: Sequence[Workload] | None = None,
    strategy: str = "lookahead-entropy",
) -> ResultTable:
    """Cross-relation atom universe vs the all-pairs universe."""
    if workloads is None:
        workloads = default_ablation_workloads()
    table = ResultTable(
        ["workload", "scope", "universe_size", "interactions", "correct"]
    )
    for workload in workloads:
        if not workload.table.has_provenance():
            continue
        for scope in (AtomScope.CROSS_RELATION, AtomScope.ALL_PAIRS):
            universe = AtomUniverse.from_table(workload.table, scope=scope)
            engine = JoinInferenceEngine(workload.table, strategy=strategy, universe=universe)
            result = engine.run(GoalQueryOracle(workload.goal))
            table.add_row(
                {
                    "workload": workload.name,
                    "scope": scope.value,
                    "universe_size": universe.size,
                    "interactions": result.num_interactions,
                    "correct": result.matches_goal(workload.goal),
                }
            )
    return table


def ablate_lookahead_depth(
    workloads: Sequence[Workload] | None = None,
    depths: Sequence[int] = (1, 2),
    include_optimal: bool = True,
    optimal_max_states: int = 100_000,
    optimal_max_atoms: int = 7,
    optimal_max_candidates: int = 60,
) -> ResultTable:
    """Interactions and choice time as lookahead depth grows, vs the optimum.

    The exponential optimal strategy is only attempted on workloads whose atom
    universe and candidate table are small enough
    (``optimal_max_atoms`` / ``optimal_max_candidates``); larger workloads get
    the heuristic rows only.
    """
    if workloads is None:
        workloads = default_ablation_workloads()
    table = ResultTable(
        ["workload", "candidates", "strategy", "interactions", "total_seconds"]
    )
    for workload in workloads:
        strategies = [("lookahead-minmax", create_strategy("lookahead-minmax"))]
        strategies.extend(
            (f"lookahead-kstep(depth={depth})", KStepLookaheadStrategy(depth=depth))
            for depth in depths
            if depth >= 2
        )
        universe = AtomUniverse.from_table(workload.table)
        optimal_feasible = (
            universe.size <= optimal_max_atoms
            and workload.num_candidates <= optimal_max_candidates
        )
        if include_optimal and optimal_feasible:
            strategies.append(("optimal", OptimalStrategy(max_states=optimal_max_states)))
        for name, strategy in strategies:
            engine = JoinInferenceEngine(workload.table, strategy=strategy)
            started = time.perf_counter()
            result = engine.run(GoalQueryOracle(workload.goal))
            elapsed = time.perf_counter() - started
            table.add_row(
                {
                    "workload": workload.name,
                    "candidates": workload.num_candidates,
                    "strategy": name,
                    "interactions": result.num_interactions,
                    "total_seconds": round(elapsed, 4),
                }
            )
    return table
