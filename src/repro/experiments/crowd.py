"""E9 — crowdsourcing cost: JIM vs pairwise entity-resolution joins.

Section 1 of the paper motivates JIM for crowdsourced joins: "minimizing the
number of interactions entails lower financial costs", and existing crowd-join
systems resolve *pairs of tuples* (entity resolution) rather than inferring a
join predicate.  This experiment compares the number of crowd questions:

* the pairwise baseline asks about (up to) every candidate pair;
* JIM asks membership questions only about informative tuples.

The expected shape: the pairwise cost grows with the product of the relation
sizes while JIM's question count stays near the information-theoretic size of
the query space (a handful of questions), independent of the instance size.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..baselines.entity_resolution import PairwiseCrowdJoin, pairwise_question_count
from ..core.oracle import GoalQueryOracle
from ..datasets.synthetic import SyntheticConfig
from ..datasets.workloads import Workload, synthetic_workload
from .results import ResultTable
from .runner import run_single


def crowd_workloads(
    tuples_per_relation: Sequence[int] = (8, 12, 16, 24),
    goal_atoms: int = 1,
    domain_size: int = 4,
    seed: int = 0,
) -> list[Workload]:
    """Two-relation joins of growing size (each pair is one crowd question)."""
    return [
        synthetic_workload(
            SyntheticConfig(
                num_relations=2,
                attributes_per_relation=3,
                tuples_per_relation=tuples,
                domain_size=domain_size,
                seed=seed,
            ),
            goal_atoms=goal_atoms,
        )
        for tuples in tuples_per_relation
    ]


def compare_crowd_cost(
    workloads: Sequence[Workload] | None = None,
    strategy: str = "lookahead-entropy",
    seed: int = 0,
    run_pairwise_oracle: bool = True,
) -> ResultTable:
    """Questions asked by JIM vs the pairwise crowd-join baseline.

    ``run_pairwise_oracle`` actually drives the pairwise baseline through the
    oracle (so its answer pattern is validated); switching it off only reports
    the analytic all-pairs count, which is what matters for large sweeps.
    """
    if workloads is None:
        workloads = crowd_workloads(seed=seed)
    table = ResultTable(
        [
            "workload",
            "candidate_pairs",
            "jim_questions",
            "pairwise_questions",
            "reduction_factor",
            "correct",
        ]
    )
    for workload in workloads:
        record = run_single(workload, strategy, seed=seed)
        pairs = len(workload.table)
        if run_pairwise_oracle:
            baseline = PairwiseCrowdJoin(use_transitivity=False)
            crowd = baseline.run(workload.table, GoalQueryOracle(workload.goal))
            pairwise_questions = crowd.questions_asked
        else:
            pairwise_questions = pairwise_question_count(pairs, 1)
        jim_questions = int(record["interactions"])
        table.add_row(
            {
                "workload": workload.name,
                "candidate_pairs": pairs,
                "jim_questions": jim_questions,
                "pairwise_questions": pairwise_questions,
                "reduction_factor": round(pairwise_questions / jim_questions, 1)
                if jim_questions
                else None,
                "correct": record["correct"],
            }
        )
    return table
