"""Synthetic instances and goal queries for the strategy experiments.

The underlying research paper evaluates its strategies on "benchmark and
synthetic datasets"; since the original synthetic generator is not published,
this module provides a controllable substitute.  The key knobs are the ones
the paper's analysis cares about:

* the number of relations (arity of the join) and attributes per relation —
  together they determine the size of the atom universe, i.e. the size of the
  query space;
* the number of tuples per relation — it determines the candidate-table size;
* the size of the shared value domain — it controls how often attribute
  values coincide by chance, i.e. how rich the equality types are and how
  hard queries are to tell apart;
* the complexity of the goal query (number of atoms).

All generation is deterministic given a seed.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass

from ..core.atoms import AtomScope, AtomUniverse
from ..core.queries import JoinQuery
from ..exceptions import ExperimentError
from ..relational.candidate import CandidateTable
from ..relational.instance import DatabaseInstance
from ..relational.relation import Relation


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of a synthetic instance.

    Attributes
    ----------
    num_relations / attributes_per_relation:
        Shape of the schema; the candidate table has
        ``num_relations × attributes_per_relation`` columns.
    tuples_per_relation:
        Rows per base relation; the full cross product has
        ``tuples_per_relation ** num_relations`` candidate tuples.
    domain_size:
        Attribute values are integers drawn uniformly from
        ``range(domain_size)`` — smaller domains mean more chance equalities.
    max_candidate_rows:
        Optional cap on the materialised cross product (uniform sample).
    seed:
        Seed of all pseudo-random choices.
    """

    num_relations: int = 2
    attributes_per_relation: int = 3
    tuples_per_relation: int = 10
    domain_size: int = 4
    max_candidate_rows: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_relations < 1:
            raise ExperimentError("num_relations must be at least 1")
        if self.attributes_per_relation < 1:
            raise ExperimentError("attributes_per_relation must be at least 1")
        if self.tuples_per_relation < 1:
            raise ExperimentError("tuples_per_relation must be at least 1")
        if self.domain_size < 2:
            raise ExperimentError("domain_size must be at least 2")

    @property
    def relation_names(self) -> tuple[str, ...]:
        """Names ``R1 … Rn`` of the generated relations."""
        return tuple(f"R{i + 1}" for i in range(self.num_relations))

    @property
    def candidate_rows(self) -> int:
        """Size of the (unsampled) cross product."""
        return self.tuples_per_relation**self.num_relations


def generate_instance(config: SyntheticConfig) -> DatabaseInstance:
    """Generate the synthetic database instance described by ``config``."""
    rng = random.Random(config.seed)
    relations = []
    for relation_name in config.relation_names:
        attribute_names = [f"a{j + 1}" for j in range(config.attributes_per_relation)]
        rows = [
            tuple(rng.randrange(config.domain_size) for _ in attribute_names)
            for _ in range(config.tuples_per_relation)
        ]
        relations.append(Relation.build(relation_name, attribute_names, rows))
    return DatabaseInstance("synthetic", relations)


def generate_candidate_table(config: SyntheticConfig) -> CandidateTable:
    """The (optionally sampled) cross product of the synthetic instance."""
    instance = generate_instance(config)
    return CandidateTable.cross_product(
        instance,
        name="synthetic_candidates",
        max_rows=config.max_candidate_rows,
        rng=random.Random(config.seed + 1),
    )


def random_goal_query(
    table: CandidateTable,
    num_atoms: int,
    seed: int = 0,
    universe: AtomUniverse | None = None,
    require_nonempty: bool = True,
    require_proper: bool = True,
    max_attempts: int = 500,
) -> JoinQuery:
    """Draw a random goal query of ``num_atoms`` atoms over the candidate table.

    By default the query must be *non-trivial on the instance*: it selects at
    least one tuple (``require_nonempty``) and not all of them
    (``require_proper``), so that inferring it actually requires interaction.
    Raises :class:`~repro.exceptions.ExperimentError` when no such query is
    found within ``max_attempts`` draws.
    """
    if num_atoms < 1:
        raise ExperimentError("a goal query needs at least one atom")
    universe = universe or AtomUniverse.from_table(table, scope=AtomScope.CROSS_RELATION)
    if num_atoms > universe.size:
        raise ExperimentError(
            f"cannot draw {num_atoms} atoms from a universe of size {universe.size}"
        )
    rng = random.Random(seed)
    total = len(table)
    for _ in range(max_attempts):
        atoms = rng.sample(list(universe.atoms), num_atoms)
        goal = JoinQuery(atoms)
        # Count-only check: on factorized cross products this never
        # enumerates (or materialises) the candidate tuples, which is what
        # makes goal drawing over large instances feasible.
        selected = goal.count_selected(table)
        if require_nonempty and selected == 0:
            continue
        if require_proper and selected == total:
            continue
        return goal
    raise ExperimentError(
        f"could not draw a goal query with {num_atoms} atom(s) that is non-trivial on the "
        f"instance after {max_attempts} attempts; adjust domain_size or num_atoms"
    )


def planted_goal_instance(
    config: SyntheticConfig,
    num_atoms: int,
) -> tuple[CandidateTable, JoinQuery]:
    """A synthetic candidate table together with a non-trivial goal query.

    Convenience wrapper combining :func:`generate_candidate_table` and
    :func:`random_goal_query`; both draws use the configuration's seed so the
    pair is fully reproducible.
    """
    table = generate_candidate_table(config)
    goal = random_goal_query(table, num_atoms, seed=config.seed + 2)
    return table, goal


def all_goal_queries(
    table: CandidateTable,
    num_atoms: int,
    universe: AtomUniverse | None = None,
) -> list[JoinQuery]:
    """Every query with exactly ``num_atoms`` atoms over the table's universe.

    Only practical for small universes; used by exhaustive tests and by the
    optimal-strategy validation experiments.
    """
    universe = universe or AtomUniverse.from_table(table, scope=AtomScope.CROSS_RELATION)
    return [
        JoinQuery(combination)
        for combination in itertools.combinations(universe.atoms, num_atoms)
    ]
