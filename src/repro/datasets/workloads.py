"""Named workloads: (candidate table, goal query) pairs used by experiments.

A *workload* bundles everything an experiment run needs: the candidate table
the user would be shown, the goal join query the simulated user has in mind,
and a human-readable description.  The builders below cover the paper's
scenarios — the Figure 1 travel example, the Set-game picture joins, the
synthetic strategy-comparison sweeps and the TPC-H-like PK/FK joins.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.queries import JoinQuery
from ..relational.candidate import CandidateTable
from . import flights_hotels, setgame, synthetic, tpch


@dataclass(frozen=True)
class Workload:
    """A candidate table together with the goal query to infer on it."""

    name: str
    table: CandidateTable
    goal: JoinQuery
    description: str = ""

    @property
    def num_candidates(self) -> int:
        """Number of candidate tuples the user could be asked about."""
        return len(self.table)

    @property
    def goal_size(self) -> int:
        """Number of atoms in the goal query (its complexity)."""
        return len(self.goal)

    def goal_selectivity(self) -> float:
        """Fraction of candidate tuples selected by the goal query."""
        return self.goal.selectivity(self.table)


def figure1_workload(goal: str = "q2") -> Workload:
    """The paper's motivating example with goal ``Q1`` or ``Q2``."""
    table = flights_hotels.figure1_table()
    if goal.lower() == "q1":
        return Workload(
            name="figure1-q1",
            table=table,
            goal=flights_hotels.query_q1(),
            description="Flight&hotel packages, goal Q1: To ≍ City",
        )
    if goal.lower() == "q2":
        return Workload(
            name="figure1-q2",
            table=table,
            goal=flights_hotels.query_q2(),
            description="Flight&hotel packages, goal Q2: To ≍ City ∧ Airline ≍ Discount",
        )
    raise ValueError(f"Figure 1 has goals 'q1' and 'q2', got {goal!r}")


def setgame_workload(
    features: tuple[str, ...] = ("color", "shading"),
    deck_size: int | None = 12,
    max_rows: int | None = None,
    seed: int = 0,
) -> Workload:
    """Joining sets of pictures: pairs of Set cards sharing the given features."""
    table = setgame.pair_table(deck_size=deck_size, max_rows=max_rows, seed=seed)
    goal = setgame.same_feature_query(*features)
    label = " & ".join(features)
    return Workload(
        name=f"setgame-{'-'.join(features)}",
        table=table,
        goal=goal,
        description=f"Pairs of Set cards with the same {label}",
    )


def synthetic_workload(
    config: synthetic.SyntheticConfig | None = None,
    goal_atoms: int = 2,
) -> Workload:
    """A synthetic instance with a randomly drawn, non-trivial goal query."""
    config = config or synthetic.SyntheticConfig()
    table, goal = synthetic.planted_goal_instance(config, goal_atoms)
    return Workload(
        name=(
            f"synthetic-r{config.num_relations}a{config.attributes_per_relation}"
            f"t{config.tuples_per_relation}d{config.domain_size}-g{goal_atoms}-s{config.seed}"
        ),
        table=table,
        goal=goal,
        description=(
            f"Synthetic: {config.num_relations} relations × {config.tuples_per_relation} tuples, "
            f"domain {config.domain_size}, goal with {goal_atoms} atom(s)"
        ),
    )


def tpch_workload(
    join_name: str = "orders-customer",
    config: tpch.TPCHConfig | None = None,
    max_rows: int | None = 2000,
) -> Workload:
    """A TPC-H-like PK/FK join inference workload."""
    table = tpch.tpch_candidate_table(join_name, config=config, max_rows=max_rows)
    return Workload(
        name=f"tpch-{join_name}",
        table=table,
        goal=tpch.fk_join_goal(join_name),
        description=f"TPC-H-like PK/FK join: {join_name}",
    )


def default_workload_suite(seed: int = 0) -> list[Workload]:
    """A small, varied suite covering all dataset families (used by tests/benches)."""
    return [
        figure1_workload("q1"),
        figure1_workload("q2"),
        setgame_workload(("color",), deck_size=9, seed=seed),
        setgame_workload(("color", "shading"), deck_size=9, seed=seed),
        synthetic_workload(
            synthetic.SyntheticConfig(
                num_relations=2,
                attributes_per_relation=3,
                tuples_per_relation=8,
                domain_size=3,
                seed=seed,
            ),
            goal_atoms=2,
        ),
        tpch_workload("orders-customer", tpch.TPCHConfig(customers=6, orders_per_customer=2)),
    ]
