"""The Set card game dataset — joining sets of tagged pictures (Figure 5).

The last part of the demonstration shows that JIM infers joins "not only
between relational tables, but also between different types of tagged media":
the preloaded database consists of the cards of the game Set, which vary in
four features — number (one, two, three), symbol (diamond, squiggle, oval),
shading (solid, striped, open) and color (red, green, purple).  The attendee
labels *pairs of pictures* until JIM infers joins such as "select the pairs of
pictures having the same color and the same shading".

Pictures are represented by their tags (exactly what the inference operates
on): a card is a tuple over the four features, and the candidate space is the
cross product of two copies of the deck (``Left`` × ``Right``).
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Sequence

from ..core.queries import JoinQuery
from ..relational.candidate import CandidateTable
from ..relational.instance import DatabaseInstance
from ..relational.relation import Relation

#: The four features of a Set card and their possible values.
FEATURES: tuple[str, ...] = ("number", "symbol", "shading", "color")
FEATURE_VALUES: dict[str, tuple[str, ...]] = {
    "number": ("one", "two", "three"),
    "symbol": ("diamond", "squiggle", "oval"),
    "shading": ("solid", "striped", "open"),
    "color": ("red", "green", "purple"),
}

#: Number of cards in a full Set deck (3^4).
FULL_DECK_SIZE = 81


def full_deck() -> tuple[tuple[str, str, str, str], ...]:
    """All 81 Set cards as (number, symbol, shading, color) tuples."""
    return tuple(
        itertools.product(
            FEATURE_VALUES["number"],
            FEATURE_VALUES["symbol"],
            FEATURE_VALUES["shading"],
            FEATURE_VALUES["color"],
        )
    )


def card_deck(
    size: int | None = None,
    seed: int | None = 0,
) -> tuple[tuple[str, str, str, str], ...]:
    """A deck of ``size`` distinct cards (the full deck when ``size`` is omitted).

    Sampling is reproducible through ``seed``; asking for more cards than the
    full deck holds is an error.
    """
    deck = full_deck()
    if size is None or size >= len(deck):
        if size is not None and size > len(deck):
            raise ValueError(f"a Set deck has only {len(deck)} cards, asked for {size}")
        return deck
    rng = random.Random(seed)
    return tuple(rng.sample(deck, size))


def cards_relation(name: str, cards: Sequence[tuple[str, str, str, str]] | None = None) -> Relation:
    """A relation of Set cards under the given relation name."""
    return Relation.build(name, list(FEATURES), cards if cards is not None else full_deck())


def setgame_instance(deck_size: int | None = None, seed: int | None = 0) -> DatabaseInstance:
    """Two copies of (a sample of) the deck, named ``Left`` and ``Right``."""
    cards = card_deck(deck_size, seed)
    return DatabaseInstance(
        "setgame",
        [cards_relation("Left", cards), cards_relation("Right", cards)],
    )


def pair_table(
    deck_size: int | None = None,
    max_rows: int | None = None,
    seed: int | None = 0,
) -> CandidateTable:
    """The candidate table of card *pairs* (``Left`` × ``Right``).

    The full deck yields 81 × 81 = 6561 pairs; ``deck_size`` and ``max_rows``
    keep interactive demos and benchmarks snappy while exercising the same
    code path.
    """
    instance = setgame_instance(deck_size, seed)
    return CandidateTable.cross_product(
        instance, name="card_pairs", max_rows=max_rows, rng=random.Random(seed)
    )


def same_feature_query(*features: str) -> JoinQuery:
    """The join "pairs of pictures having the same ⟨features⟩".

    ``same_feature_query("color", "shading")`` is the example query of the
    demonstration scenario.
    """
    unknown = [feature for feature in features if feature not in FEATURES]
    if unknown:
        raise ValueError(f"unknown Set card feature(s): {', '.join(unknown)}")
    if not features:
        raise ValueError("at least one feature is required")
    return JoinQuery.of(*((f"Left.{feature}", f"Right.{feature}") for feature in features))


def demo_goal_query() -> JoinQuery:
    """The query the paper uses as its picture-join example (same color & shading)."""
    return same_feature_query("color", "shading")
