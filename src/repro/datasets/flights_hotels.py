"""The paper's motivating dataset: flight & hotel packages (Figure 1).

A travel-agency employee wants to build flight&hotel packages from a flight
relation and a hotel relation she only sees denormalised, with no metadata.
The twelve candidate tuples of Figure 1 are the cross product of four flights
and three hotels; the two goal queries discussed in the paper are

* ``Q1``: ``To ≍ City`` — the hotel is in the flight's destination city;
* ``Q2``: ``To ≍ City ∧ Airline ≍ Discount`` — additionally the hotel's
  discount programme matches the airline.

The module exposes the base relations, the database instance, the exact
denormalised candidate table of Figure 1 (tuple ids 0–11 correspond to the
paper's tuple numbers 1–12) and both goal queries, so that the worked example
of Section 2 can be replayed verbatim in tests, examples and benchmarks.
"""

from __future__ import annotations

from ..core.queries import JoinQuery
from ..relational.candidate import CandidateTable
from ..relational.instance import DatabaseInstance
from ..relational.relation import Relation

#: Column names of the denormalised table, in the paper's order.
FIGURE1_COLUMNS: tuple[str, ...] = ("From", "To", "Airline", "City", "Discount")

#: Which base relation each column of the denormalised table comes from.
FIGURE1_SOURCES: tuple[str, ...] = ("Flights", "Flights", "Flights", "Hotels", "Hotels")

#: The four flights of the motivating example (From, To, Airline).
FLIGHT_ROWS: tuple[tuple[str, str, str], ...] = (
    ("Paris", "Lille", "AF"),
    ("Lille", "NYC", "AA"),
    ("NYC", "Paris", "AA"),
    ("Paris", "NYC", "AF"),
)

#: The three hotels of the motivating example (City, Discount); ``None`` means
#: the hotel offers no airline discount.
HOTEL_ROWS: tuple[tuple[str, object], ...] = (
    ("NYC", "AA"),
    ("Paris", None),
    ("Lille", "AF"),
)

#: The twelve rows of Figure 1, in the paper's order (tuples (1)–(12)).
FIGURE1_ROWS: tuple[tuple[object, ...], ...] = tuple(
    (*flight, *hotel) for flight in FLIGHT_ROWS for hotel in HOTEL_ROWS
)


def flights_relation() -> Relation:
    """The ``Flights(From, To, Airline)`` relation."""
    return Relation.build("Flights", ["From", "To", "Airline"], FLIGHT_ROWS)


def hotels_relation() -> Relation:
    """The ``Hotels(City, Discount)`` relation."""
    return Relation.build("Hotels", ["City", "Discount"], HOTEL_ROWS)


def travel_instance() -> DatabaseInstance:
    """The two-relation database instance behind Figure 1."""
    return DatabaseInstance("travel", [flights_relation(), hotels_relation()])


def figure1_table() -> CandidateTable:
    """The denormalised candidate table of Figure 1.

    Tuple id ``i`` corresponds to the paper's tuple ``(i + 1)``.  Column names
    are the paper's unqualified names; provenance information (flight vs.
    hotel columns) is preserved so the default atom universe contains exactly
    the six cross-relation attribute pairs.
    """
    return CandidateTable.from_rows(
        FIGURE1_COLUMNS,
        FIGURE1_ROWS,
        name="flight_hotel_packages",
        source_relations=FIGURE1_SOURCES,
    )


def qualified_figure1_table() -> CandidateTable:
    """The same candidate table built as a cross product with qualified names.

    Useful for exercising the relational pipeline end to end (SQL rendering,
    SQLite execution); column names are ``Flights.From`` … ``Hotels.Discount``.
    """
    return CandidateTable.cross_product(travel_instance())


def paper_tuple_id(paper_number: int) -> int:
    """Translate the paper's 1-based tuple number into a 0-based tuple id."""
    if not 1 <= paper_number <= len(FIGURE1_ROWS):
        raise ValueError(f"Figure 1 has tuples (1)–({len(FIGURE1_ROWS)}), got {paper_number}")
    return paper_number - 1


def query_q1() -> JoinQuery:
    """``Q1: To ≍ City`` — flight destination equals hotel city."""
    return JoinQuery.of(("To", "City"))


def query_q2() -> JoinQuery:
    """``Q2: To ≍ City ∧ Airline ≍ Discount`` — additionally the discount matches."""
    return JoinQuery.of(("To", "City"), ("Airline", "Discount"))


def qualified_query_q1() -> JoinQuery:
    """``Q1`` phrased over the qualified (cross-product) column names."""
    return JoinQuery.of(("Flights.To", "Hotels.City"))


def qualified_query_q2() -> JoinQuery:
    """``Q2`` phrased over the qualified (cross-product) column names."""
    return JoinQuery.of(("Flights.To", "Hotels.City"), ("Flights.Airline", "Hotels.Discount"))
