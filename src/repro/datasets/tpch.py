"""A self-contained TPC-H-like data generator.

The experiments of the underlying research paper use the TPC-H benchmark as a
realistic multi-relation database on which PK/FK equi-joins are inferred.  The
official ``dbgen`` tool and its data are not available offline, so this module
generates a structurally faithful miniature: the same relations and key/foreign
key relationships (region ← nation ← customer/supplier, customer ← orders ←
lineitem → part/supplier), with sizes scaled down to what an interactive
membership-query session can realistically cover.  The join *structure* — which
attribute pairs form meaningful equi-joins — is what the inference experiments
exercise, and it is preserved exactly.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass

from ..core.queries import JoinQuery
from ..exceptions import ExperimentError
from ..relational.candidate import CandidateTable
from ..relational.instance import DatabaseInstance
from ..relational.relation import Relation

#: The classic PK/FK joins of the TPC-H schema, as qualified attribute pairs.
TPCH_FK_JOINS: dict[str, tuple[tuple[str, str], ...]] = {
    "nation-region": (("nation.n_regionkey", "region.r_regionkey"),),
    "customer-nation": (("customer.c_nationkey", "nation.n_nationkey"),),
    "supplier-nation": (("supplier.s_nationkey", "nation.n_nationkey"),),
    "orders-customer": (("orders.o_custkey", "customer.c_custkey"),),
    "lineitem-orders": (("lineitem.l_orderkey", "orders.o_orderkey"),),
    "lineitem-part": (("lineitem.l_partkey", "part.p_partkey"),),
    "lineitem-supplier": (("lineitem.l_suppkey", "supplier.s_suppkey"),),
    "customer-orders-lineitem": (
        ("orders.o_custkey", "customer.c_custkey"),
        ("lineitem.l_orderkey", "orders.o_orderkey"),
    ),
}


@dataclass(frozen=True)
class TPCHConfig:
    """Row counts of the miniature TPC-H instance (all reproducible via ``seed``)."""

    regions: int = 3
    nations: int = 6
    customers: int = 12
    suppliers: int = 6
    parts: int = 12
    orders_per_customer: int = 2
    lineitems_per_order: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("regions", "nations", "customers", "suppliers", "parts"):
            if getattr(self, name) < 1:
                raise ExperimentError(f"{name} must be at least 1")
        if self.orders_per_customer < 1 or self.lineitems_per_order < 1:
            raise ExperimentError("orders_per_customer and lineitems_per_order must be at least 1")

    @property
    def num_orders(self) -> int:
        """Total number of orders."""
        return self.customers * self.orders_per_customer

    @property
    def num_lineitems(self) -> int:
        """Total number of lineitems."""
        return self.num_orders * self.lineitems_per_order


def generate_tpch(config: TPCHConfig | None = None) -> DatabaseInstance:
    """Generate the miniature TPC-H database instance."""
    config = config or TPCHConfig()
    rng = random.Random(config.seed)

    region_names = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
    region_rows = [
        (key, region_names[key % len(region_names)]) for key in range(config.regions)
    ]
    region = Relation.build("region", ["r_regionkey", "r_name"], region_rows)

    nation_rows = [
        (key, f"Nation#{key}", rng.randrange(config.regions)) for key in range(config.nations)
    ]
    nation = Relation.build("nation", ["n_nationkey", "n_name", "n_regionkey"], nation_rows)

    customer_rows = [
        (
            key,
            f"Customer#{key:03d}",
            rng.randrange(config.nations),
            round(rng.uniform(-999.0, 9999.0), 2),
        )
        for key in range(config.customers)
    ]
    customer = Relation.build(
        "customer", ["c_custkey", "c_name", "c_nationkey", "c_acctbal"], customer_rows
    )

    supplier_rows = [
        (key, f"Supplier#{key:03d}", rng.randrange(config.nations))
        for key in range(config.suppliers)
    ]
    supplier = Relation.build("supplier", ["s_suppkey", "s_name", "s_nationkey"], supplier_rows)

    part_rows = [
        (key, f"Part#{key:03d}", round(rng.uniform(900.0, 2000.0), 2))
        for key in range(config.parts)
    ]
    part = Relation.build("part", ["p_partkey", "p_name", "p_retailprice"], part_rows)

    statuses = ("O", "F", "P")
    order_rows = []
    for order_key in range(config.num_orders):
        order_rows.append(
            (
                order_key,
                order_key % config.customers,
                round(rng.uniform(1000.0, 100000.0), 2),
                statuses[rng.randrange(len(statuses))],
            )
        )
    orders = Relation.build(
        "orders", ["o_orderkey", "o_custkey", "o_totalprice", "o_orderstatus"], order_rows
    )

    lineitem_rows = []
    for line_key in range(config.num_lineitems):
        lineitem_rows.append(
            (
                line_key % config.num_orders,
                line_key,
                rng.randrange(config.parts),
                rng.randrange(config.suppliers),
                rng.randrange(1, 50),
            )
        )
    lineitem = Relation.build(
        "lineitem",
        ["l_orderkey", "l_linenumber", "l_partkey", "l_suppkey", "l_quantity"],
        lineitem_rows,
    )

    return DatabaseInstance(
        "tpch", [region, nation, customer, supplier, part, orders, lineitem]
    )


def fk_join_goal(name: str) -> JoinQuery:
    """One of the canonical TPC-H PK/FK joins, by name (see :data:`TPCH_FK_JOINS`)."""
    try:
        pairs = TPCH_FK_JOINS[name]
    except KeyError as exc:
        known = ", ".join(sorted(TPCH_FK_JOINS))
        raise ExperimentError(f"unknown TPC-H join {name!r}; known joins: {known}") from exc
    return JoinQuery.of(*pairs)


def relations_of_join(name: str) -> tuple[str, ...]:
    """The base relations involved in one of the canonical joins."""
    pairs = TPCH_FK_JOINS.get(name)
    if pairs is None:
        known = ", ".join(sorted(TPCH_FK_JOINS))
        raise ExperimentError(f"unknown TPC-H join {name!r}; known joins: {known}")
    relations: list[str] = []
    for left, right in pairs:
        for qualified in (left, right):
            relation = qualified.split(".", 1)[0]
            if relation not in relations:
                relations.append(relation)
    return tuple(relations)


def tpch_candidate_table(
    join_name: str,
    config: TPCHConfig | None = None,
    max_rows: int | None = 2000,
    instance: DatabaseInstance | None = None,
) -> CandidateTable:
    """The candidate table (cross product) for one of the canonical joins.

    ``max_rows`` caps the materialised cross product; the default keeps even
    the three-way customer–orders–lineitem space at an interactive size.
    """
    instance = instance if instance is not None else generate_tpch(config)
    relations: Sequence[str] = relations_of_join(join_name)
    return CandidateTable.cross_product(
        instance,
        relation_names=relations,
        name=f"tpch_{join_name}",
        max_rows=max_rows,
        rng=random.Random((config.seed if config else 0) + 7),
    )
