"""Datasets and workloads: the paper's examples plus synthetic/TPC-H-like data.

* :mod:`repro.datasets.flights_hotels` — the Figure 1 motivating example;
* :mod:`repro.datasets.setgame` — the Set-card picture joins of Figure 5;
* :mod:`repro.datasets.synthetic` — the controllable synthetic generator used
  by the strategy-comparison and scalability experiments;
* :mod:`repro.datasets.tpch` — a miniature TPC-H-like database for PK/FK join
  inference;
* :mod:`repro.datasets.workloads` — named (table, goal query) bundles.
"""

from . import flights_hotels, setgame, synthetic, tpch, workloads
from .synthetic import SyntheticConfig
from .tpch import TPCHConfig
from .workloads import (
    Workload,
    default_workload_suite,
    figure1_workload,
    setgame_workload,
    synthetic_workload,
    tpch_workload,
)

__all__ = [
    "SyntheticConfig",
    "TPCHConfig",
    "Workload",
    "default_workload_suite",
    "figure1_workload",
    "flights_hotels",
    "setgame",
    "setgame_workload",
    "synthetic",
    "synthetic_workload",
    "tpch",
    "tpch_workload",
    "workloads",
]
