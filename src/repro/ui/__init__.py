"""Textual user interface: table rendering, progress reports, console demo."""

from .console import run_console_demo, run_scripted_demo
from .renderer import STATUS_MARKERS, render_bar_chart, render_state, render_table
from .report import render_benefit_report, render_strategy_comparison

__all__ = [
    "STATUS_MARKERS",
    "render_bar_chart",
    "render_benefit_report",
    "render_state",
    "render_strategy_comparison",
    "render_table",
    "run_console_demo",
    "run_scripted_demo",
]
