"""Textual reports: the Figure 4 comparison and strategy comparison charts.

The demo shows the attendee, after each inference, bar charts comparing the
number of interactions she performed against what the strategies would have
needed.  These helpers produce the same comparisons as text, both for a single
:class:`~repro.sessions.benefit.BenefitReport` and for multi-strategy
comparisons coming out of the experiments package.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..sessions.benefit import BenefitReport
from .renderer import render_bar_chart


def render_benefit_report(report: BenefitReport, width: int = 40) -> str:
    """Render a Figure 4 style "benefit of using a strategy" chart."""
    chart = render_bar_chart(
        {
            "your interactions": float(report.user_interactions),
            f"with {report.strategy_name}": float(report.strategy_interactions),
        },
        width=width,
        unit=" labels",
    )
    return "\n".join(
        [
            f"Inferred query: {report.inferred_query.describe()}",
            chart,
            report.summary(),
        ]
    )


def render_strategy_comparison(
    interactions_by_strategy: Mapping[str, float],
    title: str = "Interactions to convergence by strategy",
    width: int = 40,
) -> str:
    """Render the strategy-comparison chart of the second demo part."""
    chart = render_bar_chart(dict(interactions_by_strategy), width=width, unit=" labels")
    return f"{title}\n{chart}"
